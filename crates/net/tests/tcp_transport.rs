//! In-process exercise of the socket transport: real loopback TCP
//! listeners, one serve loop per "node" on its own thread, and a
//! coordinator-side [`TcpNet`] driving traffic through the
//! route → forward → deliver mesh. The process-per-node launcher runs
//! exactly this machinery with the threads replaced by `dla-node`
//! processes.

use bytes::Bytes;
use dla_net::adversary::{scenario_rng, AdversaryNet, ScriptedAdversary, Tamper, TamperRule};
use dla_net::tcp::{read_frame, serve, write_frame, NodeConfig, TcpConfig, TcpNet};
use dla_net::time::SimTime;
use dla_net::{ChannelNet, NetError, NodeId, Session, SessionId, Transport};
use rand::Rng;
use std::collections::BTreeSet;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Binds `remote` loopback listeners and serves each on a thread; ids
/// `remote..remote + local` (if any) stay coordinator-hosted.
fn spawn_mesh(
    remote: usize,
    local: usize,
) -> (
    Vec<Option<SocketAddr>>,
    Vec<thread::JoinHandle<std::io::Result<dla_net::NodeReport>>>,
) {
    let listeners: Vec<TcpListener> = (0..remote)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let mut peers: Vec<Option<SocketAddr>> = listeners
        .iter()
        .map(|l| Some(l.local_addr().expect("local addr")))
        .collect();
    peers.extend(std::iter::repeat_n(None, local));
    let handles = listeners
        .into_iter()
        .enumerate()
        .map(|(id, listener)| {
            let config = NodeConfig {
                id,
                peers: peers.clone(),
                role: "ttp".to_string(),
                key: 1000 + id as u64,
            };
            thread::spawn(move || serve(listener, config))
        })
        .collect();
    (peers, handles)
}

fn quick_config() -> TcpConfig {
    TcpConfig {
        timeout: SimTime::from_millis(2_000),
        ..TcpConfig::default()
    }
}

#[test]
fn mesh_routes_every_hop_through_node_processes() {
    let (peers, handles) = spawn_mesh(3, 0);
    let net = TcpNet::connect(&peers, BTreeSet::new(), quick_config()).expect("connect");

    // Two interleaved sessions; every hop is remote → remote, so each
    // message crosses three TCP legs (route, forward, deliver).
    let s1 = Session::new(&net, SessionId(1));
    let s2 = Session::new(&net, SessionId(2));
    s1.send(NodeId(0), NodeId(1), Bytes::from_static(b"a1"));
    s2.send(NodeId(0), NodeId(1), Bytes::from_static(b"b1"));
    s1.send(NodeId(1), NodeId(2), Bytes::from_static(b"a2"));

    // Session demux: node 1 sees only its own session's traffic even
    // though both arrived on the same inbox.
    let m = s2.recv(NodeId(1)).expect("session 2 delivery");
    assert_eq!((&m.payload[..], m.from), (&b"b1"[..], NodeId(0)));
    let m = s1
        .recv_from(NodeId(1), NodeId(0))
        .expect("session 1 delivery");
    assert_eq!(&m.payload[..], b"a1");
    let m = s1.recv(NodeId(2)).expect("second hop");
    assert_eq!((&m.payload[..], m.from), (&b"a2"[..], NodeId(1)));

    assert_eq!(s1.counters(), (2, 4));
    assert_eq!(s2.counters(), (1, 2));

    let reports = net.shutdown();
    assert_eq!(reports.len(), 3);
    // Each message was originated by its `from` process (routed) and
    // handed up by its `to` process (forwarded).
    let routed: u64 = reports.iter().map(|r| r.routed).sum();
    let forwarded: u64 = reports.iter().map(|r| r.forwarded).sum();
    assert_eq!((routed, forwarded), (3, 3));
    for handle in handles {
        let report = handle.join().expect("join").expect("serve");
        assert!(report.id < 3);
    }
}

#[test]
fn coordinator_hosted_ids_short_circuit() {
    // Nodes 0-1 are remote processes; ids 2-3 live in the coordinator
    // (the auditor / blind-TTP roles of the deployment).
    let (peers, handles) = spawn_mesh(2, 2);
    let local: BTreeSet<usize> = [2, 3].into_iter().collect();
    let net = TcpNet::connect(&peers, local, quick_config()).expect("connect");
    let s = Session::new(&net, SessionId(9));

    // local → local never touches a socket.
    s.send(NodeId(2), NodeId(3), Bytes::from_static(b"loop"));
    assert_eq!(&s.recv(NodeId(3)).expect("loopback").payload[..], b"loop");

    // local → remote is forwarded directly; remote → local is routed to
    // the origin process, whose peer table points the local id back at
    // the coordinator connection.
    s.send(NodeId(3), NodeId(0), Bytes::from_static(b"down"));
    assert_eq!(&s.recv(NodeId(0)).expect("downlink").payload[..], b"down");
    s.send(NodeId(0), NodeId(2), Bytes::from_static(b"up"));
    let m = s.recv_from(NodeId(2), NodeId(0)).expect("uplink");
    assert_eq!(&m.payload[..], b"up");

    let reports = net.shutdown();
    assert_eq!(reports.len(), 2);
    for handle in handles {
        handle.join().expect("join").expect("serve");
    }
}

#[test]
fn deposits_are_stored_remotely_and_acknowledged() {
    let (peers, handles) = spawn_mesh(1, 0);
    let net = TcpNet::connect(&peers, BTreeSet::new(), quick_config()).expect("connect");

    let (count1, digest1) = net.deposit(NodeId(0), 41, b"fragment-a").expect("ack 1");
    let (count2, digest2) = net.deposit(NodeId(0), 42, b"fragment-b").expect("ack 2");
    assert_eq!((count1, count2), (1, 2));
    assert_ne!(digest1, digest2, "digest chains over payloads");

    let (count3, _) = net.deposit(NodeId(0), 43, b"f").expect("ack 3");
    assert_eq!(count3, 3);

    // Depositing to an id with no process behind it fails fast.
    assert_eq!(
        net.deposit(NodeId(5), 44, b"x"),
        Err(NetError::Timeout(NodeId(5)))
    );

    let reports = net.shutdown();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].stored, 3);
    assert_eq!(reports[0].stored_bytes, 21);
    for handle in handles {
        let report = handle.join().expect("join").expect("serve");
        assert_eq!(report.digest, reports[0].digest);
    }
}

#[test]
fn recv_deadline_fires_on_the_wall_clock() {
    let (peers, handles) = spawn_mesh(1, 0);
    let config = TcpConfig {
        timeout: SimTime::from_millis(100),
        ..TcpConfig::default()
    };
    let net = TcpNet::connect(&peers, BTreeSet::new(), config).expect("connect");
    let s = Session::root(&net);
    let started = std::time::Instant::now();
    assert_eq!(s.recv(NodeId(0)).unwrap_err(), NetError::Timeout(NodeId(0)));
    let waited = started.elapsed();
    assert!(waited >= Duration::from_millis(90), "deadline honored");
    assert!(waited < Duration::from_secs(5), "deadline not unbounded");
    // elapsed() on a wall transport reads the shared clock, so spans
    // and joins see real time.
    assert!(net.elapsed(SessionId::ROOT) > SimTime::ZERO);
    let _ = net.shutdown();
    for handle in handles {
        handle.join().expect("join").expect("serve");
    }
}

#[test]
fn connect_retries_with_backoff_until_the_node_is_up() {
    // Reserve a port, release it, and only re-bind the real listener
    // after the coordinator has already started dialing: the
    // reconnect-with-backoff loop must bridge the gap.
    let probe = TcpListener::bind("127.0.0.1:0").expect("probe bind");
    let addr = probe.local_addr().expect("probe addr");
    drop(probe);
    let peers = vec![Some(addr)];
    let peers_for_node = peers.clone();
    let server = thread::spawn(move || {
        thread::sleep(Duration::from_millis(300));
        let listener = TcpListener::bind(addr).expect("late bind");
        serve(
            listener,
            NodeConfig {
                id: 0,
                peers: peers_for_node,
                role: "app".to_string(),
                key: 7,
            },
        )
    });
    let net = TcpNet::connect(&peers, BTreeSet::new(), quick_config())
        .expect("connect survives a late-starting node");
    let (count, _) = net.deposit(NodeId(0), 1, b"late").expect("ack");
    assert_eq!(count, 1);
    let _ = net.shutdown();
    server.join().expect("join").expect("serve");
}

#[test]
fn hello_spoofing_cannot_hijack_a_live_session() {
    let (peers, handles) = spawn_mesh(1, 0);
    let net = TcpNet::connect(&peers, BTreeSet::new(), quick_config()).expect("connect");
    let (count, _) = net.deposit(NodeId(0), 1, b"before").expect("ack");
    assert_eq!(count, 1);

    // An attacker dials the node's listener and completes the HELLO
    // exchange announcing the coordinator's reserved id. Before the
    // hardening, register() replaced the live COORD writer ("newest
    // connection wins"), re-pointing STORED acks at the attacker.
    let spoof = |announced: u64| {
        let mut attacker = TcpStream::connect(peers[0].expect("node addr")).expect("attacker dial");
        attacker
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("read timeout");
        let mut hello = dla_net::wire::Writer::new();
        hello
            .put_u8(0x01) // FRAME_HELLO
            .put_u64(0x444C_4131_5443_5031) // protocol MAGIC ("DLA1TCP1")
            .put_u64(announced)
            .put_u64(peers.len() as u64);
        write_frame(&mut attacker, &hello.finish()).expect("send spoofed hello");
        // The node answers with its own hello before validating ours...
        let body = read_frame(&mut attacker).expect("node's hello");
        assert_eq!(body.first(), Some(&0x01));
        // ...then drops the connection: the attacker never receives
        // another frame (in particular, no stolen STORED ack).
        assert!(
            read_frame(&mut attacker).is_err(),
            "spoofed session (announced id {announced}) must be closed"
        );
    };
    spoof(u64::MAX); // impersonate the coordinator
    spoof(0); // impersonate the node itself

    // The genuine coordinator connection still owns the COORD writer:
    // deposits keep flowing and their acks still arrive here.
    let (count, _) = net
        .deposit(NodeId(0), 2, b"after")
        .expect("ack after spoof");
    assert_eq!(count, 2);

    let reports = net.shutdown();
    assert_eq!(reports[0].stored, 2);
    for handle in handles {
        handle.join().expect("join").expect("serve");
    }
}

/// Same seeded schedule, two transports: the adversary's forgeries and
/// the bytes the victim receives must be identical under [`ChannelNet`]
/// and [`TcpNet`] — the determinism contract scenario replays rely on.
#[test]
fn scripted_attacks_replay_identically_on_channel_and_tcp() {
    let schedule = || {
        let mut rng = scenario_rng(5, 11);
        let mask = rng.gen_range(1..=255u8);
        Arc::new(ScriptedAdversary::new().compromise(0).rule(TamperRule {
            from: Some(0),
            to: Some(1),
            tag: Some(0x40),
            skip: 1,
            fires: 1,
            action: Tamper::Flip {
                offset_from_end: 0,
                mask,
            },
        }))
    };
    fn drive<T: Transport>(net: &AdversaryNet<T>) -> Vec<Vec<u8>> {
        let session = Session::new(net, SessionId(4));
        (0..3u8)
            .map(|i| {
                session.send(NodeId(0), NodeId(1), Bytes::from(vec![0x40, b'm', i]));
                let envelope = session.recv_from(NodeId(1), NodeId(0)).expect("delivery");
                assert!(
                    envelope.is_intact(),
                    "forgeries are re-stamped, not corrupt"
                );
                envelope.payload.to_vec()
            })
            .collect()
    }

    let channel_adversary = schedule();
    let channel_net = AdversaryNet::new(ChannelNet::new(2), Arc::clone(&channel_adversary) as _);
    let channel_seen = drive(&channel_net);

    let (peers, handles) = spawn_mesh(2, 0);
    let tcp_adversary = schedule();
    let tcp_net = AdversaryNet::new(
        TcpNet::connect(&peers, BTreeSet::new(), quick_config()).expect("connect"),
        Arc::clone(&tcp_adversary) as _,
    );
    let tcp_seen = drive(&tcp_net);
    let _ = tcp_net.into_inner().shutdown();
    for handle in handles {
        handle.join().expect("join").expect("serve");
    }

    assert_eq!(channel_seen, tcp_seen);
    assert_ne!(channel_seen[0], channel_seen[1], "second message is forged");
    assert_eq!(channel_adversary.report(), tcp_adversary.report());
}
