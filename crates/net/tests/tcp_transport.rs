//! In-process exercise of the socket transport: real loopback TCP
//! listeners, one serve loop per "node" on its own thread, and a
//! coordinator-side [`TcpNet`] driving traffic through the
//! route → forward → deliver mesh. The process-per-node launcher runs
//! exactly this machinery with the threads replaced by `dla-node`
//! processes.

use bytes::Bytes;
use dla_net::tcp::{serve, NodeConfig, TcpConfig, TcpNet};
use dla_net::time::SimTime;
use dla_net::{NetError, NodeId, Session, SessionId, Transport};
use std::collections::BTreeSet;
use std::net::{SocketAddr, TcpListener};
use std::thread;
use std::time::Duration;

/// Binds `remote` loopback listeners and serves each on a thread; ids
/// `remote..remote + local` (if any) stay coordinator-hosted.
fn spawn_mesh(
    remote: usize,
    local: usize,
) -> (
    Vec<Option<SocketAddr>>,
    Vec<thread::JoinHandle<std::io::Result<dla_net::NodeReport>>>,
) {
    let listeners: Vec<TcpListener> = (0..remote)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let mut peers: Vec<Option<SocketAddr>> = listeners
        .iter()
        .map(|l| Some(l.local_addr().expect("local addr")))
        .collect();
    peers.extend(std::iter::repeat_n(None, local));
    let handles = listeners
        .into_iter()
        .enumerate()
        .map(|(id, listener)| {
            let config = NodeConfig {
                id,
                peers: peers.clone(),
                role: "ttp".to_string(),
                key: 1000 + id as u64,
            };
            thread::spawn(move || serve(listener, config))
        })
        .collect();
    (peers, handles)
}

fn quick_config() -> TcpConfig {
    TcpConfig {
        timeout: SimTime::from_millis(2_000),
        ..TcpConfig::default()
    }
}

#[test]
fn mesh_routes_every_hop_through_node_processes() {
    let (peers, handles) = spawn_mesh(3, 0);
    let net = TcpNet::connect(&peers, BTreeSet::new(), quick_config()).expect("connect");

    // Two interleaved sessions; every hop is remote → remote, so each
    // message crosses three TCP legs (route, forward, deliver).
    let s1 = Session::new(&net, SessionId(1));
    let s2 = Session::new(&net, SessionId(2));
    s1.send(NodeId(0), NodeId(1), Bytes::from_static(b"a1"));
    s2.send(NodeId(0), NodeId(1), Bytes::from_static(b"b1"));
    s1.send(NodeId(1), NodeId(2), Bytes::from_static(b"a2"));

    // Session demux: node 1 sees only its own session's traffic even
    // though both arrived on the same inbox.
    let m = s2.recv(NodeId(1)).expect("session 2 delivery");
    assert_eq!((&m.payload[..], m.from), (&b"b1"[..], NodeId(0)));
    let m = s1
        .recv_from(NodeId(1), NodeId(0))
        .expect("session 1 delivery");
    assert_eq!(&m.payload[..], b"a1");
    let m = s1.recv(NodeId(2)).expect("second hop");
    assert_eq!((&m.payload[..], m.from), (&b"a2"[..], NodeId(1)));

    assert_eq!(s1.counters(), (2, 4));
    assert_eq!(s2.counters(), (1, 2));

    let reports = net.shutdown();
    assert_eq!(reports.len(), 3);
    // Each message was originated by its `from` process (routed) and
    // handed up by its `to` process (forwarded).
    let routed: u64 = reports.iter().map(|r| r.routed).sum();
    let forwarded: u64 = reports.iter().map(|r| r.forwarded).sum();
    assert_eq!((routed, forwarded), (3, 3));
    for handle in handles {
        let report = handle.join().expect("join").expect("serve");
        assert!(report.id < 3);
    }
}

#[test]
fn coordinator_hosted_ids_short_circuit() {
    // Nodes 0-1 are remote processes; ids 2-3 live in the coordinator
    // (the auditor / blind-TTP roles of the deployment).
    let (peers, handles) = spawn_mesh(2, 2);
    let local: BTreeSet<usize> = [2, 3].into_iter().collect();
    let net = TcpNet::connect(&peers, local, quick_config()).expect("connect");
    let s = Session::new(&net, SessionId(9));

    // local → local never touches a socket.
    s.send(NodeId(2), NodeId(3), Bytes::from_static(b"loop"));
    assert_eq!(&s.recv(NodeId(3)).expect("loopback").payload[..], b"loop");

    // local → remote is forwarded directly; remote → local is routed to
    // the origin process, whose peer table points the local id back at
    // the coordinator connection.
    s.send(NodeId(3), NodeId(0), Bytes::from_static(b"down"));
    assert_eq!(&s.recv(NodeId(0)).expect("downlink").payload[..], b"down");
    s.send(NodeId(0), NodeId(2), Bytes::from_static(b"up"));
    let m = s.recv_from(NodeId(2), NodeId(0)).expect("uplink");
    assert_eq!(&m.payload[..], b"up");

    let reports = net.shutdown();
    assert_eq!(reports.len(), 2);
    for handle in handles {
        handle.join().expect("join").expect("serve");
    }
}

#[test]
fn deposits_are_stored_remotely_and_acknowledged() {
    let (peers, handles) = spawn_mesh(1, 0);
    let net = TcpNet::connect(&peers, BTreeSet::new(), quick_config()).expect("connect");

    let (count1, digest1) = net.deposit(NodeId(0), 41, b"fragment-a").expect("ack 1");
    let (count2, digest2) = net.deposit(NodeId(0), 42, b"fragment-b").expect("ack 2");
    assert_eq!((count1, count2), (1, 2));
    assert_ne!(digest1, digest2, "digest chains over payloads");

    let (count3, _) = net.deposit(NodeId(0), 43, b"f").expect("ack 3");
    assert_eq!(count3, 3);

    // Depositing to an id with no process behind it fails fast.
    assert_eq!(
        net.deposit(NodeId(5), 44, b"x"),
        Err(NetError::Timeout(NodeId(5)))
    );

    let reports = net.shutdown();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].stored, 3);
    assert_eq!(reports[0].stored_bytes, 21);
    for handle in handles {
        let report = handle.join().expect("join").expect("serve");
        assert_eq!(report.digest, reports[0].digest);
    }
}

#[test]
fn recv_deadline_fires_on_the_wall_clock() {
    let (peers, handles) = spawn_mesh(1, 0);
    let config = TcpConfig {
        timeout: SimTime::from_millis(100),
        ..TcpConfig::default()
    };
    let net = TcpNet::connect(&peers, BTreeSet::new(), config).expect("connect");
    let s = Session::root(&net);
    let started = std::time::Instant::now();
    assert_eq!(s.recv(NodeId(0)).unwrap_err(), NetError::Timeout(NodeId(0)));
    let waited = started.elapsed();
    assert!(waited >= Duration::from_millis(90), "deadline honored");
    assert!(waited < Duration::from_secs(5), "deadline not unbounded");
    // elapsed() on a wall transport reads the shared clock, so spans
    // and joins see real time.
    assert!(net.elapsed(SessionId::ROOT) > SimTime::ZERO);
    let _ = net.shutdown();
    for handle in handles {
        handle.join().expect("join").expect("serve");
    }
}

#[test]
fn connect_retries_with_backoff_until_the_node_is_up() {
    // Reserve a port, release it, and only re-bind the real listener
    // after the coordinator has already started dialing: the
    // reconnect-with-backoff loop must bridge the gap.
    let probe = TcpListener::bind("127.0.0.1:0").expect("probe bind");
    let addr = probe.local_addr().expect("probe addr");
    drop(probe);
    let peers = vec![Some(addr)];
    let peers_for_node = peers.clone();
    let server = thread::spawn(move || {
        thread::sleep(Duration::from_millis(300));
        let listener = TcpListener::bind(addr).expect("late bind");
        serve(
            listener,
            NodeConfig {
                id: 0,
                peers: peers_for_node,
                role: "app".to_string(),
                key: 7,
            },
        )
    });
    let net = TcpNet::connect(&peers, BTreeSet::new(), quick_config())
        .expect("connect survives a late-starting node");
    let (count, _) = net.deposit(NodeId(0), 1, b"late").expect("ack");
    assert_eq!(count, 1);
    let _ = net.shutdown();
    server.join().expect("join").expect("serve");
}
