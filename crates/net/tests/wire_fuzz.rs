//! Robustness property tests for the wire format: decoding arbitrary
//! bytes must never panic — malformed input always surfaces as
//! `WireError`.

use dla_net::wire::{Reader, Writer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn reader_never_panics_on_arbitrary_bytes(
        data in prop::collection::vec(any::<u8>(), 0..256),
        script in prop::collection::vec(0u8..6, 1..8),
    ) {
        let mut r = Reader::new(&data);
        for step in script {
            // Each accessor either succeeds or returns an error; none
            // may panic or read out of bounds.
            let result: Result<(), _> = match step {
                0 => r.get_u8().map(|_| ()),
                1 => r.get_u64().map(|_| ()),
                2 => r.get_u128().map(|_| ()),
                3 => r.get_bytes().map(|_| ()),
                4 => r.get_str().map(|_| ()),
                _ => r.get_list(|r| r.get_u64()).map(|_| ()),
            };
            if result.is_err() {
                break;
            }
        }
    }

    #[test]
    fn truncating_a_valid_message_errors_cleanly(
        strings in prop::collection::vec("[a-z]{0,12}", 0..5),
        numbers in prop::collection::vec(any::<u64>(), 0..5),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut w = Writer::new();
        w.put_list(&numbers, |w, &n| {
            w.put_u64(n);
        });
        w.put_list(&strings, |w, s| {
            w.put_str(s);
        });
        let msg = w.finish();
        let len = cut.index(msg.len().max(1)).min(msg.len());
        let truncated = &msg[..len];

        let mut r = Reader::new(truncated);
        let nums = r.get_list(|r| r.get_u64());
        if len == msg.len() {
            // Whole message: everything decodes.
            prop_assert_eq!(nums.unwrap(), numbers);
            let strs: Vec<String> = r
                .get_list(|r| r.get_str().map(str::to_owned))
                .unwrap();
            prop_assert_eq!(strs, strings);
            prop_assert!(r.finish().is_ok());
        } else if let Ok(nums) = nums {
            // Truncation may land after the number section; then the
            // string section must fail or the reader must report
            // trailing/short data.
            prop_assert_eq!(nums, numbers);
            let strs = r.get_list(|r| r.get_str().map(str::to_owned));
            let remaining = r.remaining();
            prop_assert!(strs.is_err() || remaining == 0 || r.finish().is_err());
        }
    }

    #[test]
    fn single_bit_flips_never_panic_protocol_decoders(
        numbers in prop::collection::vec(any::<u64>(), 1..6),
        flip_byte in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        let mut w = Writer::new();
        w.put_u8(0x03);
        w.put_list(&numbers, |w, &n| {
            w.put_u64(n);
        });
        let msg = w.finish();
        let mut corrupted = msg.to_vec();
        let idx = flip_byte.index(corrupted.len());
        corrupted[idx] ^= 1 << flip_bit;

        // Decoding the corrupted message must yield Ok(different data)
        // or Err — never a panic.
        let mut r = Reader::new(&corrupted);
        let _ = r.get_u8();
        let _ = r.get_list(|r| r.get_u64());
        let _ = r.finish();
    }
}
