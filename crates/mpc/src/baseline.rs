//! Classical comparison baselines for the paper's efficiency claims.
//!
//! §3 argues that classical zero-disclosure multiparty computation
//! "\[has\] excessive computing and communication overheads" and that a
//! blind TTP plus relaxation makes auditing practical. To *measure*
//! that claim (the paper itself never does), this module implements:
//!
//! * [`plaintext_sum`] — the insecure lower bound: everyone mails its
//!   value to a collector.
//! * [`vss_sum`] — a classical-style verified secret-sharing sum:
//!   Feldman commitments to every polynomial coefficient, per-share
//!   verification by every receiver, and a full result broadcast so
//!   *every* participant learns `w` (the classical requirement the
//!   relaxed model drops). Communication O(n²·k) group elements and
//!   O(n²·k) modexps of verification compute.
//! * [`secure_compare_gt`] / [`baseline_ranking`] — two-party secure
//!   comparison via the Lin–Tzeng 0/1-encoding reduction to set
//!   intersection, and the n-party ranking built from `n(n−1)/2`
//!   pairwise comparisons — the classical alternative to the blind-TTP
//!   `Rank_s` of §3.3.

use crate::report::{Meter, ProtocolReport};
use crate::set_intersection::secure_set_intersection;
use crate::MpcError;
use dla_bigint::modular::{modexp, modmul};
use dla_bigint::Ubig;
use dla_crypto::pohlig_hellman::CommutativeDomain;
use dla_crypto::schnorr::SchnorrGroup;
use dla_crypto::shamir_big::{self, BigPolynomial, BigShare};
use dla_net::topology::Ring;
use dla_net::wire::{Reader, Writer};
use dla_net::{NodeId, SimNet};
use rand::Rng;

/// Result of a baseline sum run.
#[derive(Debug, Clone)]
pub struct BaselineSumOutcome {
    /// The aggregate.
    pub total: Ubig,
    /// Cost accounting.
    pub report: ProtocolReport,
}

/// The insecure reference: plaintext values to a collector, result
/// broadcast back.
///
/// # Errors
///
/// Returns [`MpcError`] on network failure.
///
/// # Panics
///
/// Panics if `parties` is empty or inputs mismatch.
pub fn plaintext_sum(
    net: &mut SimNet,
    parties: &[NodeId],
    inputs: &[u64],
    collector: NodeId,
) -> Result<BaselineSumOutcome, MpcError> {
    let n = parties.len();
    assert!(n >= 1, "need at least one party");
    assert_eq!(inputs.len(), n, "one input per party");
    let meter = Meter::start(net);

    for (i, &party) in parties.iter().enumerate() {
        let mut w = Writer::new();
        w.put_u8(0x10).put_u64(inputs[i]);
        net.send(party, collector, w.finish());
    }
    let mut total = 0u64;
    for &party in parties {
        let envelope = net.recv_from(collector, party)?;
        let mut r = Reader::new(&envelope.payload);
        if r.get_u8()? != 0x10 {
            return Err(MpcError::Wire("unexpected tag".into()));
        }
        total += r.get_u64()?;
        r.finish()?;
    }
    for &party in parties {
        let mut w = Writer::new();
        w.put_u8(0x11).put_u64(total);
        net.send(collector, party, w.finish());
        let _ = net.recv_from(party, collector)?;
    }

    let report = meter.finish(net, "plaintext-sum", n, 2);
    Ok(BaselineSumOutcome {
        total: Ubig::from_u64(total),
        report,
    })
}

/// Classical verified secret-sharing sum (Feldman VSS + broadcast).
///
/// Every receiver verifies every incoming share against the dealer's
/// coefficient commitments; every party receives every summed share
/// and reconstructs locally, so all n parties learn the result — the
/// zero-disclosure model's requirement.
///
/// # Errors
///
/// Returns [`MpcError`] on network failure, malformed messages, or a
/// share failing Feldman verification.
///
/// # Panics
///
/// Panics unless `1 ≤ k ≤ n` and inputs match parties.
pub fn vss_sum<R: Rng + ?Sized>(
    net: &mut SimNet,
    group: &SchnorrGroup,
    parties: &[NodeId],
    inputs: &[Ubig],
    k: usize,
    rng: &mut R,
) -> Result<BaselineSumOutcome, MpcError> {
    let n = parties.len();
    assert!(n >= 1, "need at least one party");
    assert_eq!(inputs.len(), n, "one input per party");
    assert!(k >= 1 && k <= n, "threshold must satisfy 1 <= k <= n");
    let meter = Meter::start(net);
    let (p, q) = (group.modulus(), group.order());

    // Deal: polynomials and Feldman coefficient commitments.
    let polys: Vec<BigPolynomial> = inputs
        .iter()
        .map(|a| BigPolynomial::random(a, k, q, rng))
        .collect();
    let commitments: Vec<Vec<Ubig>> = polys
        .iter()
        .map(|poly| poly.coefficients().iter().map(|c| group.pow_g(c)).collect())
        .collect();

    // Broadcast commitments + deliver shares; receivers verify.
    // received[j][i] = share of dealer i held by party j.
    let mut received: Vec<Vec<Ubig>> = vec![vec![Ubig::zero(); n]; n];
    for i in 0..n {
        for j in 0..n {
            let x_j = Ubig::from_u64(j as u64 + 1);
            let share = polys[i].eval(&x_j);
            if i != j {
                let mut w = Writer::new();
                w.put_u8(0x12)
                    .put_u64(i as u64)
                    .put_bytes(&share.to_bytes_be())
                    .put_list(&commitments[i], |w, c| {
                        w.put_bytes(&c.to_bytes_be());
                    });
                net.send(parties[i], parties[j], w.finish());
                let envelope = net.recv_from(parties[j], parties[i])?;
                let mut r = Reader::new(&envelope.payload);
                if r.get_u8()? != 0x12 {
                    return Err(MpcError::Wire("unexpected tag".into()));
                }
                let dealer = r.get_u64()? as usize;
                let y = Ubig::from_bytes_be(r.get_bytes()?);
                let comms = r.get_list(|r| r.get_bytes().map(Ubig::from_bytes_be))?;
                r.finish()?;

                // Feldman check: g^y = Π_t A_t^{x^t} (mod p).
                let mut rhs = Ubig::one();
                let mut x_pow = Ubig::one();
                for a_t in &comms {
                    rhs = modmul(&rhs, &modexp(a_t, &x_pow, p), p);
                    x_pow = modmul(&x_pow, &x_j, q);
                }
                if group.pow_g(&y) != rhs {
                    return Err(MpcError::Protocol(format!(
                        "Feldman verification failed for dealer {dealer}"
                    )));
                }
                received[j][dealer] = y;
            } else {
                received[j][i] = share;
            }
        }
    }

    // Sum shares and broadcast to everyone (all parties learn w).
    let summed: Vec<Ubig> = (0..n)
        .map(|j| {
            received[j]
                .iter()
                .fold(Ubig::zero(), |acc, y| (&acc + y) % q)
        })
        .collect();
    let mut all_shares: Vec<Vec<BigShare>> = vec![Vec::with_capacity(n); n];
    for j in 0..n {
        for l in 0..n {
            if l == j {
                all_shares[j].push(BigShare {
                    x: Ubig::from_u64(j as u64 + 1),
                    y: summed[j].clone(),
                });
                continue;
            }
            let mut w = Writer::new();
            w.put_u8(0x13)
                .put_u64(j as u64)
                .put_bytes(&summed[j].to_bytes_be());
            net.send(parties[j], parties[l], w.finish());
            let envelope = net.recv_from(parties[l], parties[j])?;
            let mut r = Reader::new(&envelope.payload);
            if r.get_u8()? != 0x13 {
                return Err(MpcError::Wire("unexpected tag".into()));
            }
            let idx = r.get_u64()?;
            let y = Ubig::from_bytes_be(r.get_bytes()?);
            r.finish()?;
            all_shares[l].push(BigShare {
                x: Ubig::from_u64(idx + 1),
                y,
            });
        }
    }

    // Every party reconstructs; all must agree.
    let mut totals: Vec<Ubig> = Vec::with_capacity(n);
    for shares in &all_shares {
        totals.push(shamir_big::reconstruct(&shares[..k], q)?);
    }
    let total = totals[0].clone();
    if totals.iter().any(|t| t != &total) {
        return Err(MpcError::Protocol(
            "parties reconstructed different totals".into(),
        ));
    }

    let report = meter.finish(net, "vss-sum", n, 3);
    Ok(BaselineSumOutcome { total, report })
}

/// Bit width of the comparison domain for
/// [`secure_compare_gt`]/[`baseline_ranking`].
pub const COMPARE_BITS: u32 = 32;

/// The Lin–Tzeng 1-encoding of `x`: for each 1-bit, the prefix ending
/// at that bit.
fn one_encoding(x: u64) -> Vec<Vec<u8>> {
    prefix_encoding(x, true)
}

/// The 0-encoding of `y`: for each 0-bit, the prefix with that bit
/// flipped to 1.
fn zero_encoding(y: u64) -> Vec<Vec<u8>> {
    prefix_encoding(y, false)
}

fn prefix_encoding(v: u64, ones: bool) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for i in (0..COMPARE_BITS).rev() {
        let bit = (v >> i) & 1;
        if (bit == 1) == ones {
            // Prefix of length (COMPARE_BITS - i), with the last bit
            // forced to 1 (it already is 1 for the 1-encoding; flipped
            // for the 0-encoding).
            let len = COMPARE_BITS - i;
            let prefix = (v >> i) | 1;
            let mut item = Vec::with_capacity(5);
            item.push(len as u8);
            item.extend_from_slice(&(prefix as u32).to_be_bytes());
            out.push(item);
        }
    }
    out
}

/// Two-party secure greater-than: decides `x_a > x_b` via
/// `T¹(x_a) ∩ T⁰(x_b) ≠ ∅` computed with commutative-cipher set
/// intersection. Only the cardinality (0 or ≥1) is revealed, to the
/// collector `party_a`.
///
/// # Errors
///
/// Returns [`MpcError`] on network or protocol failure.
///
/// # Panics
///
/// Panics if values exceed the [`COMPARE_BITS`]-bit domain.
pub fn secure_compare_gt<R: Rng + ?Sized>(
    net: &mut SimNet,
    domain: &CommutativeDomain,
    party_a: NodeId,
    party_b: NodeId,
    x_a: u64,
    x_b: u64,
    rng: &mut R,
) -> Result<(bool, ProtocolReport), MpcError> {
    assert!(x_a < 1 << COMPARE_BITS, "x_a exceeds the comparison domain");
    assert!(x_b < 1 << COMPARE_BITS, "x_b exceeds the comparison domain");
    let ring = Ring::new(vec![party_a, party_b]);
    let inputs = vec![one_encoding(x_a), zero_encoding(x_b)];
    let outcome = secure_set_intersection(net, &ring, domain, &inputs, party_a, false, rng)?;
    Ok((outcome.cardinality() > 0, outcome.report))
}

/// Result of the pairwise-comparison ranking baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineRankOutcome {
    /// Party indices sorted ascending by value (ties by party index).
    pub ascending: Vec<usize>,
    /// Index of the maximum holder.
    pub max_party: usize,
    /// Index of the minimum holder.
    pub min_party: usize,
    /// Aggregated cost over all pairwise comparisons.
    pub report: ProtocolReport,
}

/// Classical ranking: `n(n−1)/2` pairwise secure comparisons (each one
/// a full two-party set-intersection protocol). Contrast with the
/// 3-round, `3n−1`-message blind-TTP [`crate::ranking::secure_ranking`].
///
/// # Errors
///
/// Returns [`MpcError`] on any pairwise-comparison failure.
///
/// # Panics
///
/// Panics if `parties` is empty or inputs mismatch.
pub fn baseline_ranking<R: Rng + ?Sized>(
    net: &mut SimNet,
    domain: &CommutativeDomain,
    parties: &[NodeId],
    values: &[u64],
    rng: &mut R,
) -> Result<BaselineRankOutcome, MpcError> {
    let n = parties.len();
    assert!(n >= 1, "need at least one party");
    assert_eq!(values.len(), n, "one value per party");
    let meter = Meter::start(net);

    // wins[i] = number of parties j with values[j] < values[i]
    // (ties contribute to neither side; break by index afterwards).
    let mut greater = vec![vec![false; n]; n];
    let mut comparisons = 0usize;
    for i in 0..n {
        for j in i + 1..n {
            let (gt_ij, _) = secure_compare_gt(
                net, domain, parties[i], parties[j], values[i], values[j], rng,
            )?;
            let (gt_ji, _) = secure_compare_gt(
                net, domain, parties[j], parties[i], values[j], values[i], rng,
            )?;
            greater[i][j] = gt_ij;
            greater[j][i] = gt_ji;
            comparisons += 2;
        }
    }
    let mut ascending: Vec<usize> = (0..n).collect();
    ascending.sort_by_key(|&i| (greater[i].iter().filter(|&&g| g).count(), i));

    let report = meter.finish(net, "baseline-pairwise-ranking", n, comparisons);
    Ok(BaselineRankOutcome {
        max_party: *ascending.last().expect("nonempty"),
        min_party: ascending[0],
        ascending,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_net::NetConfig;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(6000)
    }

    #[test]
    fn plaintext_sum_works() {
        let mut net = SimNet::new(4, NetConfig::ideal());
        let parties: Vec<NodeId> = (0..3).map(NodeId).collect();
        let outcome = plaintext_sum(&mut net, &parties, &[1, 2, 3], NodeId(3)).unwrap();
        assert_eq!(outcome.total, Ubig::from_u64(6));
        assert_eq!(outcome.report.messages, 6);
    }

    #[test]
    fn vss_sum_matches_plain_total() {
        let group = SchnorrGroup::fixed_256();
        let mut net = SimNet::new(4, NetConfig::ideal());
        let parties: Vec<NodeId> = (0..4).map(NodeId).collect();
        let inputs: Vec<Ubig> = [100u64, 200, 300, 400].map(Ubig::from_u64).to_vec();
        let mut rng = rng();
        let outcome = vss_sum(&mut net, &group, &parties, &inputs, 2, &mut rng).unwrap();
        assert_eq!(outcome.total, Ubig::from_u64(1000));
    }

    #[test]
    fn vss_sum_costs_more_than_relaxed_sum() {
        let group = SchnorrGroup::fixed_256();
        let n = 4;
        let mut rng = rng();

        let mut net = SimNet::new(n + 1, NetConfig::ideal());
        let parties: Vec<NodeId> = (0..n).map(NodeId).collect();
        let inputs_big: Vec<Ubig> = (1..=n as u64).map(Ubig::from_u64).collect();
        let vss = vss_sum(&mut net, &group, &parties, &inputs_big, 3, &mut rng).unwrap();

        let mut net2 = SimNet::new(n + 1, NetConfig::ideal());
        let inputs_f: Vec<dla_bigint::F61> = (1..=n as u64).map(dla_bigint::F61::new).collect();
        let relaxed =
            crate::sum::secure_sum(&mut net2, &parties, &inputs_f, 3, NodeId(n), &mut rng).unwrap();

        assert!(vss.report.bytes > relaxed.report.bytes * 5);
        assert!(vss.report.messages > relaxed.report.messages);
        assert_eq!(vss.total, Ubig::from_u64(10));
        assert_eq!(relaxed.total, dla_bigint::F61::new(10));
    }

    #[test]
    fn vss_detects_corrupted_share() {
        let group = SchnorrGroup::fixed_256();
        let mut net = SimNet::new(3, NetConfig::ideal());
        net.faults_mut()
            .inject_once(0, 1, dla_net::fault::FaultOutcome::Corrupt);
        let parties: Vec<NodeId> = (0..3).map(NodeId).collect();
        let inputs: Vec<Ubig> = [5u64, 6, 7].map(Ubig::from_u64).to_vec();
        let mut rng = rng();
        let err = vss_sum(&mut net, &group, &parties, &inputs, 2, &mut rng).unwrap_err();
        match err {
            MpcError::Protocol(msg) => assert!(msg.contains("Feldman")),
            MpcError::Wire(_) => {} // corruption broke framing first
            other => panic!("expected detection, got {other:?}"),
        }
    }

    #[test]
    fn encodings_intersect_iff_greater() {
        // Pure Lin–Tzeng property, checked directly.
        let cases = [(5u64, 3u64), (3, 5), (7, 7), (0, 1), (1, 0), (100, 99)];
        for (x, y) in cases {
            let t1: std::collections::HashSet<Vec<u8>> = one_encoding(x).into_iter().collect();
            let t0: std::collections::HashSet<Vec<u8>> = zero_encoding(y).into_iter().collect();
            let intersects = t1.intersection(&t0).count() > 0;
            assert_eq!(intersects, x > y, "({x}, {y})");
        }
    }

    #[test]
    fn secure_compare_gt_agrees_with_plain_gt() {
        let domain = CommutativeDomain::fixed_256();
        let mut rng = rng();
        for (a, b) in [
            (10u64, 3u64),
            (3, 10),
            (4, 4),
            (0, 0),
            (1 << 31, (1 << 31) - 1),
        ] {
            let mut net = SimNet::new(2, NetConfig::ideal());
            let (gt, _) =
                secure_compare_gt(&mut net, &domain, NodeId(0), NodeId(1), a, b, &mut rng).unwrap();
            assert_eq!(gt, a > b, "({a}, {b})");
        }
    }

    #[test]
    fn baseline_ranking_matches_plain_sort() {
        let domain = CommutativeDomain::fixed_256();
        let mut net = SimNet::new(4, NetConfig::ideal());
        let parties: Vec<NodeId> = (0..4).map(NodeId).collect();
        let values = [300u64, 100, 400, 200];
        let mut rng = rng();
        let outcome = baseline_ranking(&mut net, &domain, &parties, &values, &mut rng).unwrap();
        assert_eq!(outcome.ascending, vec![1, 3, 0, 2]);
        assert_eq!(outcome.max_party, 2);
        assert_eq!(outcome.min_party, 1);
    }

    #[test]
    fn baseline_ranking_handles_ties_by_index() {
        let domain = CommutativeDomain::fixed_256();
        let mut net = SimNet::new(3, NetConfig::ideal());
        let parties: Vec<NodeId> = (0..3).map(NodeId).collect();
        let mut rng = rng();
        let outcome = baseline_ranking(&mut net, &domain, &parties, &[5, 5, 1], &mut rng).unwrap();
        assert_eq!(outcome.ascending, vec![2, 0, 1]);
    }

    #[test]
    fn baseline_ranking_costs_more_messages_than_blind_ttp() {
        let domain = CommutativeDomain::fixed_256();
        let n = 4;
        let values = [7u64, 3, 9, 1];
        let mut rng = rng();

        let mut net = SimNet::new(n, NetConfig::ideal());
        let parties: Vec<NodeId> = (0..n).map(NodeId).collect();
        let classical = baseline_ranking(&mut net, &domain, &parties, &values, &mut rng).unwrap();

        let mut net2 = SimNet::new(n + 1, NetConfig::ideal());
        let relaxed =
            crate::ranking::secure_ranking(&mut net2, &parties, NodeId(n), &values, &mut rng)
                .unwrap();

        assert_eq!(classical.ascending, relaxed.ascending);
        assert!(classical.report.messages > relaxed.report.messages * 2);
        assert!(classical.report.bytes > relaxed.report.bytes);
    }
}
