//! Secure set intersection `∩_s` (paper §3.1, Figure 4).
//!
//! Each DLA node holds a private set. Every set is encrypted by its
//! owner and relayed around the ring, each hop adding that node's
//! commutative-encryption layer; after `n−1` hops every set carries all
//! `n` layers. Because the cipher commutes, equal plaintexts — and only
//! equal plaintexts — produce equal fully-encrypted values
//! (`E132(e) = E321(e) = E213(e)` in Figure 4), so the collector can
//! intersect ciphertexts. Plaintexts of the intersection are recovered
//! by one decryption pass around the ring.
//!
//! What leaks (allowed "secondary information", Definition 1): set
//! sizes, and to the collector the intersection cardinality; plaintext
//! values of *common* elements leak only to the parties the reveal pass
//! visits, which is the paper's "matter of choice to decide which
//! node(s) would receive" the result.

use crate::report::{Meter, ProtocolReport};
use crate::MpcError;
use dla_bigint::Ubig;
use dla_crypto::pohlig_hellman::{BatchMode, CommutativeDomain, PhKey};
use dla_net::topology::Ring;
use dla_net::wire::{Reader, Writer};
use dla_net::{NodeId, Session, SimLink, SimNet};
use rand::Rng;
use std::collections::BTreeSet;

/// Result of a secure set intersection run.
#[derive(Debug, Clone)]
pub struct SsiOutcome {
    /// Fully-encrypted common elements (sorted, deduplicated).
    pub common_encrypted: Vec<Ubig>,
    /// Decrypted common items (present only when `reveal` was
    /// requested).
    pub common_items: Option<Vec<Vec<u8>>>,
    /// Cost accounting.
    pub report: ProtocolReport,
}

impl SsiOutcome {
    /// The intersection cardinality (available without reveal).
    #[must_use]
    pub fn cardinality(&self) -> usize {
        self.common_encrypted.len()
    }
}

/// One step of the Figure 4 trace: which set sits where, wearing which
/// encryption layers.
#[derive(Debug, Clone)]
pub struct TraceHop {
    /// Ring position whose input set this is.
    pub origin: usize,
    /// Ring position currently holding the set.
    pub holder: usize,
    /// Ring positions whose keys have been applied, outermost last.
    pub layers: Vec<usize>,
    /// The encrypted elements, in the owner's canonical order.
    pub elements: Vec<Ubig>,
}

/// Runs `∩_s` over the ring; see the module docs for the protocol.
///
/// `inputs[i]` is the private set of the node at ring position `i`
/// (byte items; duplicates are removed). When `reveal` is true, the
/// intersection's plaintexts are recovered with a decryption pass and
/// returned.
///
/// # Errors
///
/// Returns [`MpcError`] on network failures (dropped messages),
/// malformed payloads, or items longer than the domain's
/// encodable width.
///
/// # Panics
///
/// Panics if `inputs.len() != ring.len()`.
pub fn secure_set_intersection<R: Rng + ?Sized>(
    net: &mut SimNet,
    ring: &Ring,
    domain: &CommutativeDomain,
    inputs: &[Vec<Vec<u8>>],
    collector: NodeId,
    reveal: bool,
    rng: &mut R,
) -> Result<SsiOutcome, MpcError> {
    let link = SimLink::new(net);
    let session = Session::root(&link);
    run(
        &session,
        ring,
        domain,
        inputs,
        collector,
        reveal,
        BatchMode::Serial,
        rng,
        None,
    )
}

/// The session-parameterized form of `∩_s`: bind the protocol to any
/// [`Session`] so several rings can be in flight over one transport at
/// once.
///
/// ```
/// use dla_mpc::set_intersection::SsiSession;
/// use dla_net::topology::Ring;
/// use dla_net::{NetConfig, NodeId, Session, SimLink, SimNet};
/// use dla_crypto::pohlig_hellman::CommutativeDomain;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut net = SimNet::new(3, NetConfig::ideal());
/// let session_id = net.open_session();
/// let link = SimLink::new(&mut net);
/// let ring = Ring::canonical(3);
/// let domain = CommutativeDomain::fixed_256();
/// let mut rng = StdRng::seed_from_u64(7);
/// let inputs = vec![vec![b"e".to_vec()], vec![b"e".to_vec()], vec![b"e".to_vec()]];
/// let outcome = SsiSession::new(Session::new(&link, session_id), &ring, &domain, NodeId(0))
///     .run(&inputs, &mut rng)
///     .unwrap();
/// assert_eq!(outcome.cardinality(), 1);
/// ```
#[derive(Debug)]
pub struct SsiSession<'a> {
    session: Session<'a>,
    ring: &'a Ring,
    domain: &'a CommutativeDomain,
    collector: NodeId,
    reveal: bool,
    batch: BatchMode,
}

impl<'a> SsiSession<'a> {
    /// Binds `∩_s` to `session`; the intersection is collected (without
    /// reveal) at `collector`.
    #[must_use]
    pub fn new(
        session: Session<'a>,
        ring: &'a Ring,
        domain: &'a CommutativeDomain,
        collector: NodeId,
    ) -> Self {
        SsiSession {
            session,
            ring,
            domain,
            collector,
            reveal: false,
            batch: BatchMode::Serial,
        }
    }

    /// Requests the plaintext reveal pass.
    #[must_use]
    pub fn reveal(mut self, reveal: bool) -> Self {
        self.reveal = reveal;
        self
    }

    /// Selects how each hop's element set is pushed through the cipher
    /// (default [`BatchMode::Serial`]). Transcripts and outcomes are
    /// bit-identical in every mode — `Pooled` only spreads the hop's
    /// exponentiations over worker threads.
    #[must_use]
    pub fn batch(mut self, batch: BatchMode) -> Self {
        self.batch = batch;
        self
    }

    /// Runs the protocol over this session.
    ///
    /// # Errors
    ///
    /// As [`secure_set_intersection`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != ring.len()`.
    pub fn run<R: Rng + ?Sized>(
        &self,
        inputs: &[Vec<Vec<u8>>],
        rng: &mut R,
    ) -> Result<SsiOutcome, MpcError> {
        run(
            &self.session,
            self.ring,
            self.domain,
            inputs,
            self.collector,
            self.reveal,
            self.batch,
            rng,
            None,
        )
    }
}

/// Like [`secure_set_intersection`], additionally recording every hop
/// for the Figure 4 walkthrough.
///
/// # Errors
///
/// As [`secure_set_intersection`].
pub fn secure_set_intersection_traced<R: Rng + ?Sized>(
    net: &mut SimNet,
    ring: &Ring,
    domain: &CommutativeDomain,
    inputs: &[Vec<Vec<u8>>],
    collector: NodeId,
    reveal: bool,
    rng: &mut R,
) -> Result<(SsiOutcome, Vec<TraceHop>), MpcError> {
    let mut trace = Vec::new();
    let link = SimLink::new(net);
    let session = Session::root(&link);
    let outcome = run(
        &session,
        ring,
        domain,
        inputs,
        collector,
        reveal,
        BatchMode::Serial,
        rng,
        Some(&mut trace),
    )?;
    Ok((outcome, trace))
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn run<R: Rng + ?Sized>(
    net: &Session<'_>,
    ring: &Ring,
    domain: &CommutativeDomain,
    inputs: &[Vec<Vec<u8>>],
    collector: NodeId,
    reveal: bool,
    batch: BatchMode,
    rng: &mut R,
    mut trace: Option<&mut Vec<TraceHop>>,
) -> Result<SsiOutcome, MpcError> {
    let n = ring.len();
    assert_eq!(
        inputs.len(),
        n,
        "one input set per ring position is required"
    );
    let meter = Meter::start_session(net);
    let _telemetry = crate::report::SessionTelemetry::begin(net, "secure-set-intersection");

    // Per-party key generation (local, no traffic).
    let keys: Vec<PhKey> = (0..n).map(|_| PhKey::generate(domain, rng)).collect();

    // Each party deduplicates, encodes into the QR subgroup and applies
    // its own layer.
    let mut sets: Vec<Vec<Ubig>> = Vec::with_capacity(n);
    for (i, raw) in inputs.iter().enumerate() {
        let canonical: BTreeSet<Vec<u8>> = raw.iter().cloned().collect();
        let encoded: Vec<Ubig> = canonical
            .iter()
            .map(|item| domain.encode(item).map_err(MpcError::from))
            .collect::<Result<_, MpcError>>()?;
        let encrypted = keys[i].encrypt_batch(&encoded, batch);
        if let Some(t) = trace.as_deref_mut() {
            t.push(TraceHop {
                origin: i,
                holder: i,
                layers: vec![i],
                elements: encrypted.clone(),
            });
        }
        sets.push(encrypted);
    }

    // n−1 relay rounds: set of origin i moves i → i+1 → … → i+n−1.
    let mut layer_history: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    #[allow(clippy::needless_range_loop)] // origin indexes sets/history in parallel
    for hop in 1..n {
        for origin in 0..n {
            let from = ring.at((origin + hop - 1) % n);
            let to = ring.at((origin + hop) % n);
            net.send(from, to, encode_set(origin as u64, &sets[origin]));
            let envelope = net.recv_from(to, from)?;
            if dla_telemetry::is_active() {
                dla_telemetry::event(
                    "relay-hop",
                    net.elapsed().as_nanos(),
                    &[
                        ("origin", &origin.to_string()),
                        ("from", &from.to_string()),
                        ("to", &to.to_string()),
                    ],
                );
            }
            let (origin_check, elements) = decode_set(&envelope.payload)?;
            if origin_check as usize != origin {
                return Err(MpcError::Protocol(format!(
                    "relay for set {origin} carried origin tag {origin_check}"
                )));
            }
            let holder_pos = (origin + hop) % n;
            let re_encrypted = keys[holder_pos].encrypt_batch(&elements, batch);
            layer_history[origin].push(holder_pos);
            if let Some(t) = trace.as_deref_mut() {
                t.push(TraceHop {
                    origin,
                    holder: holder_pos,
                    layers: layer_history[origin].clone(),
                    elements: re_encrypted.clone(),
                });
            }
            sets[origin] = re_encrypted;
        }
    }

    // Collection round: final holders ship the fully-encrypted sets to
    // the collector, which intersects ciphertext sets.
    let mut received: Vec<BTreeSet<Vec<u8>>> = Vec::with_capacity(n);
    #[allow(clippy::needless_range_loop)] // origin indexes sets and ring positions together
    for origin in 0..n {
        let final_holder = ring.at((origin + n - 1) % n);
        net.send(
            final_holder,
            collector,
            encode_set(origin as u64, &sets[origin]),
        );
        let envelope = net.recv_from(collector, final_holder)?;
        let (_, elements) = decode_set(&envelope.payload)?;
        received.push(elements.iter().map(Ubig::to_bytes_be).collect());
    }
    let mut common: BTreeSet<Vec<u8>> = received.first().cloned().unwrap_or_default();
    for set in &received[1..] {
        common = common.intersection(set).cloned().collect();
    }
    let common_encrypted: Vec<Ubig> = common.iter().map(|b| Ubig::from_bytes_be(b)).collect();

    // Optional reveal: one decryption pass around the ring.
    let common_items = if reveal {
        let mut current = common_encrypted.clone();
        let mut holder = collector;
        #[allow(clippy::needless_range_loop)] // pos walks the ring and the key table together
        for pos in 0..n {
            let node = ring.at(pos);
            net.send(holder, node, encode_set(u64::MAX, &current));
            let envelope = net.recv_from(node, holder)?;
            let (_, elements) = decode_set(&envelope.payload)?;
            current = keys[pos].decrypt_batch(&elements, batch);
            holder = node;
        }
        net.send(holder, collector, encode_set(u64::MAX, &current));
        let envelope = net.recv_from(collector, holder)?;
        let (_, elements) = decode_set(&envelope.payload)?;
        let mut items: Vec<Vec<u8>> = elements.iter().map(|e| domain.decode(e)).collect();
        items.sort();
        Some(items)
    } else {
        None
    };

    let rounds = (n - 1) + 1 + usize::from(reveal) * (n + 1);
    let report = meter.finish_session(net, "secure-set-intersection", n, rounds);
    Ok(SsiOutcome {
        common_encrypted,
        common_items,
        report,
    })
}

/// Wire tag of every SSI relay/collection message — the byte an
/// interposed adversary matches on to target ring ciphertext blobs
/// (see `dla_net::adversary`).
pub const SET_TAG: u8 = 0x01;

fn encode_set(origin: u64, elements: &[Ubig]) -> bytes::Bytes {
    let mut w = Writer::new();
    w.put_u8(SET_TAG)
        .put_u64(origin)
        .put_list(elements, |w, e| {
            w.put_bytes(&e.to_bytes_be());
        });
    w.finish()
}

fn decode_set(payload: &[u8]) -> Result<(u64, Vec<Ubig>), MpcError> {
    let mut r = Reader::new(payload);
    let tag = r.get_u8()?;
    if tag != SET_TAG {
        return Err(MpcError::Wire(format!("unexpected message tag {tag}")));
    }
    let origin = r.get_u64()?;
    let elements = r.get_list(|r| r.get_bytes().map(Ubig::from_bytes_be))?;
    r.finish()?;
    Ok((origin, elements))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_net::NetConfig;
    use rand::SeedableRng;

    fn items(names: &[&str]) -> Vec<Vec<u8>> {
        names.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    fn setup(n: usize) -> (SimNet, Ring, CommutativeDomain, rand::rngs::StdRng) {
        (
            SimNet::new(n, NetConfig::ideal()),
            Ring::canonical(n),
            CommutativeDomain::fixed_256(),
            rand::rngs::StdRng::seed_from_u64(1000),
        )
    }

    #[test]
    fn figure4_example_intersects_to_e() {
        // S1={c,d,e}, S2={d,e,f}, S3={e,f,g} → {e}.
        let (mut net, ring, domain, mut rng) = setup(3);
        let inputs = vec![
            items(&["c", "d", "e"]),
            items(&["d", "e", "f"]),
            items(&["e", "f", "g"]),
        ];
        let outcome =
            secure_set_intersection(&mut net, &ring, &domain, &inputs, NodeId(0), true, &mut rng)
                .unwrap();
        assert_eq!(outcome.cardinality(), 1);
        assert_eq!(outcome.common_items.unwrap(), items(&["e"]));
    }

    #[test]
    fn empty_intersection() {
        let (mut net, ring, domain, mut rng) = setup(3);
        let inputs = vec![items(&["a"]), items(&["b"]), items(&["c"])];
        let outcome =
            secure_set_intersection(&mut net, &ring, &domain, &inputs, NodeId(1), true, &mut rng)
                .unwrap();
        assert_eq!(outcome.cardinality(), 0);
        assert_eq!(outcome.common_items.unwrap(), Vec::<Vec<u8>>::new());
    }

    #[test]
    fn identical_sets_intersect_fully() {
        let (mut net, ring, domain, mut rng) = setup(4);
        let set = items(&["x", "y", "z"]);
        let inputs = vec![set.clone(), set.clone(), set.clone(), set.clone()];
        let outcome =
            secure_set_intersection(&mut net, &ring, &domain, &inputs, NodeId(0), true, &mut rng)
                .unwrap();
        let mut expect = set;
        expect.sort();
        assert_eq!(outcome.common_items.unwrap(), expect);
    }

    #[test]
    fn duplicates_in_input_are_collapsed() {
        let (mut net, ring, domain, mut rng) = setup(2);
        let inputs = vec![items(&["a", "a", "b"]), items(&["a", "b", "b"])];
        let outcome =
            secure_set_intersection(&mut net, &ring, &domain, &inputs, NodeId(0), true, &mut rng)
                .unwrap();
        assert_eq!(outcome.common_items.unwrap(), items(&["a", "b"]));
    }

    #[test]
    fn cardinality_without_reveal_keeps_items_hidden() {
        let (mut net, ring, domain, mut rng) = setup(3);
        let inputs = vec![items(&["k1", "k2"]), items(&["k2", "k3"]), items(&["k2"])];
        let outcome = secure_set_intersection(
            &mut net,
            &ring,
            &domain,
            &inputs,
            NodeId(2),
            false,
            &mut rng,
        )
        .unwrap();
        assert_eq!(outcome.cardinality(), 1);
        assert!(outcome.common_items.is_none());
    }

    #[test]
    fn message_complexity_is_n_times_n_minus_1_plus_n() {
        for n in [2usize, 3, 5] {
            let (mut net, ring, domain, mut rng) = setup(n);
            let inputs = vec![items(&["a", "b"]); n];
            let outcome = secure_set_intersection(
                &mut net,
                &ring,
                &domain,
                &inputs,
                NodeId(0),
                false,
                &mut rng,
            )
            .unwrap();
            assert_eq!(outcome.report.messages as usize, n * (n - 1) + n, "n={n}");
        }
    }

    #[test]
    fn trace_matches_figure4_structure() {
        let (mut net, ring, domain, mut rng) = setup(3);
        let inputs = vec![
            items(&["c", "d", "e"]),
            items(&["d", "e", "f"]),
            items(&["e", "f", "g"]),
        ];
        let (_, trace) = secure_set_intersection_traced(
            &mut net,
            &ring,
            &domain,
            &inputs,
            NodeId(0),
            false,
            &mut rng,
        )
        .unwrap();
        // 3 initial encryptions + 3 sets × 2 hops.
        assert_eq!(trace.len(), 9);
        // The final hop of set 0 wears all three layers.
        let final_hop = trace.iter().rfind(|h| h.origin == 0).unwrap();
        assert_eq!(final_hop.layers.len(), 3);
        assert_eq!(final_hop.holder, 2);
    }

    #[test]
    fn fully_encrypted_common_values_coincide_across_sets() {
        // The commutativity property at protocol level: the encrypted
        // representation of "e" is identical in all three received sets.
        let (mut net, ring, domain, mut rng) = setup(3);
        let inputs = vec![
            items(&["c", "d", "e"]),
            items(&["d", "e", "f"]),
            items(&["e", "f", "g"]),
        ];
        let (outcome, trace) = secure_set_intersection_traced(
            &mut net,
            &ring,
            &domain,
            &inputs,
            NodeId(0),
            false,
            &mut rng,
        )
        .unwrap();
        let finals: Vec<&TraceHop> = trace.iter().filter(|h| h.layers.len() == 3).collect();
        assert_eq!(finals.len(), 3);
        let common = &outcome.common_encrypted[0];
        for f in finals {
            assert!(
                f.elements.contains(common),
                "set {} lacks the common ciphertext",
                f.origin
            );
        }
    }

    #[test]
    fn dropped_message_surfaces_as_error() {
        let (mut net, ring, domain, mut rng) = setup(3);
        net.faults_mut()
            .inject_once(0, 1, dla_net::fault::FaultOutcome::Drop);
        let inputs = vec![items(&["a"]), items(&["a"]), items(&["a"])];
        let err = secure_set_intersection(
            &mut net,
            &ring,
            &domain,
            &inputs,
            NodeId(0),
            false,
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(err, MpcError::Net(_)));
    }

    #[test]
    fn single_party_ring_returns_own_set() {
        let (mut net, ring, domain, mut rng) = setup(1);
        let inputs = vec![items(&["only"])];
        let outcome =
            secure_set_intersection(&mut net, &ring, &domain, &inputs, NodeId(0), true, &mut rng)
                .unwrap();
        assert_eq!(outcome.common_items.unwrap(), items(&["only"]));
    }

    #[test]
    fn oversized_item_is_rejected() {
        let (mut net, ring, domain, mut rng) = setup(2);
        let inputs = vec![vec![vec![7u8; 40]], vec![vec![7u8; 40]]];
        assert!(secure_set_intersection(
            &mut net,
            &ring,
            &domain,
            &inputs,
            NodeId(0),
            false,
            &mut rng,
        )
        .is_err());
    }
}
