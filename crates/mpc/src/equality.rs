//! Secure equality checking `=_s` (paper §3.2).
//!
//! Two parties holding `X_R` and `X_M` agree on a random affine map
//! `W = (aY + b) mod p` (with `a ≠ 0`) and each sends only its masked
//! value to a blind TTP. The TTP "can compare the equality of W_R, W_M
//! without knowing the real information (X_R, X_M) and send the result
//! back to the two nodes".
//!
//! The shared-mask agreement is modelled as one sealed message from the
//! initiator to the responder; in a deployment this would ride an
//! authenticated Diffie–Hellman channel between the two DLA nodes (the
//! TTP never sees it).

use crate::report::{Meter, ProtocolReport};
use crate::MpcError;
use dla_bigint::F61;
use dla_crypto::affine::AffineMasker;
use dla_net::wire::{Reader, Writer};
use dla_net::{NodeId, Session, SimLink, SimNet};
use rand::Rng;

/// Result of a secure equality run.
#[derive(Debug, Clone)]
pub struct EqualityOutcome {
    /// Whether the two private values are equal.
    pub equal: bool,
    /// Cost accounting.
    pub report: ProtocolReport,
}

/// Runs `=_s` between `party_a` (holding `value_a`) and `party_b`
/// (holding `value_b`) with `ttp` as the blind comparator.
///
/// # Errors
///
/// Returns [`MpcError`] on network failure or malformed messages.
///
/// # Panics
///
/// Panics if the three node ids are not pairwise distinct.
pub fn secure_equality<R: Rng + ?Sized>(
    net: &mut SimNet,
    party_a: NodeId,
    party_b: NodeId,
    ttp: NodeId,
    value_a: F61,
    value_b: F61,
    rng: &mut R,
) -> Result<EqualityOutcome, MpcError> {
    let link = SimLink::new(net);
    let session = Session::root(&link);
    run(&session, party_a, party_b, ttp, value_a, value_b, rng)
}

/// An `=_s` protocol instance bound to one transport session, so several
/// equality checks can be in flight over the same network at once.
#[derive(Clone, Copy, Debug)]
pub struct EqualitySession<'a> {
    session: Session<'a>,
    party_a: NodeId,
    party_b: NodeId,
    ttp: NodeId,
}

impl<'a> EqualitySession<'a> {
    /// Binds an equality instance to `session`.
    #[must_use]
    pub fn new(session: Session<'a>, party_a: NodeId, party_b: NodeId, ttp: NodeId) -> Self {
        EqualitySession {
            session,
            party_a,
            party_b,
            ttp,
        }
    }

    /// Runs the comparison over this instance's session.
    ///
    /// # Errors
    ///
    /// Returns [`MpcError`] on network failure or malformed messages.
    ///
    /// # Panics
    ///
    /// Panics if the three node ids are not pairwise distinct.
    pub fn run<R: Rng + ?Sized>(
        &self,
        value_a: F61,
        value_b: F61,
        rng: &mut R,
    ) -> Result<EqualityOutcome, MpcError> {
        run(
            &self.session,
            self.party_a,
            self.party_b,
            self.ttp,
            value_a,
            value_b,
            rng,
        )
    }
}

fn run<R: Rng + ?Sized>(
    net: &Session<'_>,
    party_a: NodeId,
    party_b: NodeId,
    ttp: NodeId,
    value_a: F61,
    value_b: F61,
    rng: &mut R,
) -> Result<EqualityOutcome, MpcError> {
    assert!(
        party_a != party_b && party_a != ttp && party_b != ttp,
        "parties and TTP must be distinct"
    );
    let meter = Meter::start_session(net);
    let _telemetry = crate::report::SessionTelemetry::begin(net, "secure-equality");

    // Mask agreement (A samples, seals to B).
    let mask = AffineMasker::random(rng);
    let mut w = Writer::new();
    w.put_u8(0x04)
        .put_u64(mask.apply(F61::ONE).value()) // a + b
        .put_u64(mask.apply(F61::ZERO).value()); // b
    net.send(party_a, party_b, w.finish());
    let envelope = net.recv_from(party_b, party_a)?;
    let mut r = Reader::new(&envelope.payload);
    let tag = r.get_u8()?;
    if tag != 0x04 {
        return Err(MpcError::Wire(format!("unexpected message tag {tag}")));
    }
    let a_plus_b = F61::new(r.get_u64()?);
    let b_const = F61::new(r.get_u64()?);
    r.finish()?;
    let mask_b = AffineMasker::new(a_plus_b - b_const, b_const)?;

    // Both send masked values to the TTP.
    let send_masked = |net: &Session<'_>, from: NodeId, masked: F61| {
        let mut w = Writer::new();
        w.put_u8(0x05).put_u64(masked.value());
        net.send(from, ttp, w.finish());
    };
    send_masked(net, party_a, mask.apply(value_a));
    send_masked(net, party_b, mask_b.apply(value_b));

    let mut masked = Vec::with_capacity(2);
    for from in [party_a, party_b] {
        let envelope = net.recv_from(ttp, from)?;
        let mut r = Reader::new(&envelope.payload);
        let tag = r.get_u8()?;
        if tag != 0x05 {
            return Err(MpcError::Wire(format!("unexpected message tag {tag}")));
        }
        masked.push(F61::new(r.get_u64()?));
        r.finish()?;
    }
    let equal = masked[0] == masked[1];

    // TTP reports the boolean to both parties.
    for to in [party_a, party_b] {
        let mut w = Writer::new();
        w.put_u8(0x06).put_u8(u8::from(equal));
        net.send(ttp, to, w.finish());
        let envelope = net.recv_from(to, ttp)?;
        let mut r = Reader::new(&envelope.payload);
        if r.get_u8()? != 0x06 {
            return Err(MpcError::Wire("unexpected result tag".into()));
        }
        let reported = r.get_u8()? == 1;
        r.finish()?;
        if reported != equal {
            return Err(MpcError::Protocol("result relay mismatch".into()));
        }
    }

    let report = meter.finish_session(net, "secure-equality", 2, 3);
    Ok(EqualityOutcome { equal, report })
}

/// The paper's *first* equality method (§3.2): "when the set size of
/// S_i = 1, the secure set intersection … could be used for secure
/// equality comparison" — no TTP at all, just the two-party
/// commutative-cipher protocol on singleton sets.
///
/// # Errors
///
/// Returns [`MpcError`] on protocol failure or unencodable values.
///
/// # Panics
///
/// Panics if the party ids coincide.
pub fn secure_equality_via_ssi<R: Rng + ?Sized>(
    net: &mut SimNet,
    domain: &dla_crypto::pohlig_hellman::CommutativeDomain,
    party_a: NodeId,
    party_b: NodeId,
    value_a: &[u8],
    value_b: &[u8],
    rng: &mut R,
) -> Result<EqualityOutcome, MpcError> {
    let link = SimLink::new(net);
    let session = Session::root(&link);
    run_via_ssi(&session, domain, party_a, party_b, value_a, value_b, rng)
}

fn run_via_ssi<R: Rng + ?Sized>(
    net: &Session<'_>,
    domain: &dla_crypto::pohlig_hellman::CommutativeDomain,
    party_a: NodeId,
    party_b: NodeId,
    value_a: &[u8],
    value_b: &[u8],
    rng: &mut R,
) -> Result<EqualityOutcome, MpcError> {
    assert_ne!(party_a, party_b, "parties must be distinct");
    let meter = crate::report::Meter::start_session(net);
    let _telemetry = crate::report::SessionTelemetry::begin(net, "secure-equality-ssi");
    let ring = dla_net::topology::Ring::new(vec![party_a, party_b]);
    let inputs = vec![vec![value_a.to_vec()], vec![value_b.to_vec()]];
    let outcome = crate::set_intersection::run(
        net,
        &ring,
        domain,
        &inputs,
        party_a,
        false,
        dla_crypto::pohlig_hellman::BatchMode::Serial,
        rng,
        None,
    )?;
    let equal = outcome.cardinality() == 1;
    let report = meter.finish_session(net, "secure-equality-ssi", 2, outcome.report.rounds);
    Ok(EqualityOutcome { equal, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_net::NetConfig;
    use rand::SeedableRng;

    fn setup() -> (SimNet, rand::rngs::StdRng) {
        (
            SimNet::new(3, NetConfig::ideal()),
            rand::rngs::StdRng::seed_from_u64(4000),
        )
    }

    #[test]
    fn equal_values_compare_equal() {
        let (mut net, mut rng) = setup();
        let outcome = secure_equality(
            &mut net,
            NodeId(0),
            NodeId(1),
            NodeId(2),
            F61::new(5000),
            F61::new(5000),
            &mut rng,
        )
        .unwrap();
        assert!(outcome.equal);
    }

    #[test]
    fn unequal_values_compare_unequal() {
        let (mut net, mut rng) = setup();
        let outcome = secure_equality(
            &mut net,
            NodeId(0),
            NodeId(1),
            NodeId(2),
            F61::new(5000),
            F61::new(5001),
            &mut rng,
        )
        .unwrap();
        assert!(!outcome.equal);
    }

    #[test]
    fn exhaustive_small_matrix() {
        for va in 0..4u64 {
            for vb in 0..4u64 {
                let (mut net, mut rng) = setup();
                let outcome = secure_equality(
                    &mut net,
                    NodeId(0),
                    NodeId(1),
                    NodeId(2),
                    F61::new(va),
                    F61::new(vb),
                    &mut rng,
                )
                .unwrap();
                assert_eq!(outcome.equal, va == vb, "({va}, {vb})");
            }
        }
    }

    #[test]
    fn ttp_never_sees_plaintext() {
        // The masked value arriving at the TTP differs from the input
        // (w.h.p.): verify by inspecting the wire traffic.
        let (mut net, mut rng) = setup();
        let secret = F61::new(123_456);
        let outcome = secure_equality(
            &mut net,
            NodeId(0),
            NodeId(1),
            NodeId(2),
            secret,
            secret,
            &mut rng,
        )
        .unwrap();
        assert!(outcome.equal);
        // 1 agreement + 2 masked + 2 results.
        assert_eq!(outcome.report.messages, 5);
    }

    #[test]
    fn distinct_runs_use_distinct_masks() {
        // Same inputs, two runs: the protocol is randomized, so the
        // traffic (bytes of masked values) differs between runs w.h.p.
        // We simply check both runs still agree on the answer.
        let (mut net, mut rng) = setup();
        let a = secure_equality(
            &mut net,
            NodeId(0),
            NodeId(1),
            NodeId(2),
            F61::new(9),
            F61::new(9),
            &mut rng,
        )
        .unwrap();
        let b = secure_equality(
            &mut net,
            NodeId(0),
            NodeId(1),
            NodeId(2),
            F61::new(9),
            F61::new(9),
            &mut rng,
        )
        .unwrap();
        assert!(a.equal && b.equal);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn overlapping_roles_panic() {
        let (mut net, mut rng) = setup();
        let _ = secure_equality(
            &mut net,
            NodeId(0),
            NodeId(0),
            NodeId(2),
            F61::ZERO,
            F61::ZERO,
            &mut rng,
        );
    }

    #[test]
    fn ssi_variant_agrees_with_ttp_variant() {
        let domain = dla_crypto::pohlig_hellman::CommutativeDomain::fixed_256();
        for (a, b) in [("same", "same"), ("same", "other"), ("", "")] {
            let mut net = SimNet::new(2, NetConfig::ideal());
            let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
            let outcome = secure_equality_via_ssi(
                &mut net,
                &domain,
                NodeId(0),
                NodeId(1),
                a.as_bytes(),
                b.as_bytes(),
                &mut rng,
            )
            .unwrap();
            assert_eq!(outcome.equal, a == b, "({a:?}, {b:?})");
        }
    }

    #[test]
    fn ssi_variant_needs_no_ttp() {
        // Two nodes only — no third party in the network at all.
        let domain = dla_crypto::pohlig_hellman::CommutativeDomain::fixed_256();
        let mut net = SimNet::new(2, NetConfig::ideal());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let outcome = secure_equality_via_ssi(
            &mut net,
            &domain,
            NodeId(0),
            NodeId(1),
            b"x",
            b"x",
            &mut rng,
        )
        .unwrap();
        assert!(outcome.equal);
        assert_eq!(outcome.report.protocol, "secure-equality-ssi");
    }

    #[test]
    fn robust_under_link_latency() {
        use dla_net::latency::LatencyModel;
        for seed in 0..5u64 {
            let cfg = NetConfig::ideal()
                .with_latency(LatencyModel::wan())
                .with_seed(seed);
            let mut net = SimNet::new(3, cfg);
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let outcome = secure_equality(
                &mut net,
                NodeId(0),
                NodeId(1),
                NodeId(2),
                F61::new(77),
                F61::new(77),
                &mut rng,
            )
            .unwrap();
            assert!(outcome.equal, "seed {seed}");
        }
    }

    #[test]
    fn dropped_message_detected() {
        let (mut net, mut rng) = setup();
        net.faults_mut()
            .inject_once(0, 2, dla_net::fault::FaultOutcome::Drop);
        assert!(secure_equality(
            &mut net,
            NodeId(0),
            NodeId(1),
            NodeId(2),
            F61::ONE,
            F61::ONE,
            &mut rng,
        )
        .is_err());
    }
}
