#![deny(rust_2018_idioms)]

//! Relaxed secure multiparty computation (paper §3).
//!
//! The paper's Definition 1 *relaxes* classical zero-disclosure MPC:
//! only selected observers receive the result `w`, a (blind) TTP may
//! coordinate, and *secondary* information about the inputs (set sizes,
//! packet counts) may leak — the data itself may not. Under that
//! relaxation, every auditing operator the DLA cluster needs becomes a
//! handful of ring relays or a single TTP round:
//!
//! | Operator | Module | Mechanism |
//! |---|---|---|
//! | `∩_s` secure set intersection | [`set_intersection`] | commutative-cipher ring relay (Fig. 4) |
//! | `∪_s` secure set union | [`set_union`] | commutative-cipher relay + dedup + ring decrypt |
//! | `Σ_s` secure (weighted) sum | [`sum`] | additive Shamir shares (§3.5) |
//! | `=_s` secure equality | [`equality`] | randomized affine mapping + blind TTP (§3.2) |
//! | `Max_s`/`Min_s`/`Rank_s` | [`ranking`] | order-preserving masking + blind TTP (§3.3) |
//!
//! [`baseline`] implements the **classical** comparators the paper
//! argues against (Feldman-VSS verified sharing with result broadcast;
//! pairwise two-party comparison tournaments built on the Lin–Tzeng
//! reduction) plus an insecure plaintext reference, so the cost gap the
//! paper claims is measurable — see `dla-bench`.
//!
//! All protocols run over a [`dla_net::SimNet`], so every message and
//! byte is accounted and a simulated network latency is attributed; see
//! [`report::ProtocolReport`].

use std::fmt;

pub mod baseline;
pub mod equality;
pub mod ranking;
pub mod report;
pub mod set_intersection;
pub mod set_union;
pub mod sum;

pub use equality::EqualitySession;
pub use ranking::RankingSession;
pub use report::ProtocolReport;
pub use set_intersection::SsiSession;
pub use set_union::UnionSession;
pub use sum::SumSession;

/// Errors surfaced by MPC protocol runs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MpcError {
    /// Network failure (usually a dropped message in a deterministic
    /// protocol script).
    Net(dla_net::NetError),
    /// Cryptographic parameter/verification failure.
    Crypto(dla_crypto::CryptoError),
    /// A malformed protocol message.
    Wire(String),
    /// A protocol invariant was violated (wrong sender, inconsistent
    /// shares, failed verification…).
    Protocol(String),
}

impl fmt::Display for MpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpcError::Net(e) => write!(f, "network error: {e}"),
            MpcError::Crypto(e) => write!(f, "crypto error: {e}"),
            MpcError::Wire(msg) => write!(f, "wire error: {msg}"),
            MpcError::Protocol(msg) => write!(f, "protocol error: {msg}"),
        }
    }
}

impl std::error::Error for MpcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MpcError::Net(e) => Some(e),
            MpcError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dla_net::NetError> for MpcError {
    fn from(e: dla_net::NetError) -> Self {
        MpcError::Net(e)
    }
}

impl From<dla_crypto::CryptoError> for MpcError {
    fn from(e: dla_crypto::CryptoError) -> Self {
        MpcError::Crypto(e)
    }
}

impl From<dla_net::wire::WireError> for MpcError {
    fn from(e: dla_net::wire::WireError) -> Self {
        MpcError::Wire(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_conversions_and_display() {
        let net: MpcError = dla_net::NetError::EmptyInbox(dla_net::NodeId(1)).into();
        assert!(net.to_string().contains("network error"));
        let crypto: MpcError = dla_crypto::CryptoError::InvalidParameter("x").into();
        assert!(crypto.to_string().contains("crypto error"));
        let proto = MpcError::Protocol("bad round".into());
        assert_eq!(proto.to_string(), "protocol error: bad round");
    }

    #[test]
    fn error_source_chains() {
        use std::error::Error;
        let e: MpcError = dla_net::NetError::EmptyInbox(dla_net::NodeId(0)).into();
        assert!(e.source().is_some());
        assert!(MpcError::Wire("w".into()).source().is_none());
    }
}
