//! Secure distributed sorting: `Max_s`, `Min_s`, `Rank_s` (paper §3.3).
//!
//! "If all n parties negotiate for a transformation, and let a blind
//! TTP process these transformed numbers, the cost of the three
//! operations will be significantly reduced."
//!
//! Protocol: the initiating party samples an order-preserving mask
//! (slope + offset + keyed jitter, see
//! [`dla_crypto::affine::MonotoneMasker`]) and seals it to the other
//! parties; every party sends only its *masked* value to the TTP; the
//! TTP sorts masked values — which sorts the plaintext values — and
//! broadcasts the ranking of party indices. Nobody (TTP included)
//! learns any plaintext; the TTP additionally cannot learn value *gaps*
//! thanks to the jitter. Ties are visible to the TTP (equal plaintexts
//! mask equally) — a permitted secondary-information leak under
//! Definition 1, and what makes `Rank_s` well-defined on ties.

use crate::report::{Meter, ProtocolReport};
use crate::MpcError;
use dla_crypto::affine::MonotoneMasker;
use dla_net::wire::{Reader, Writer};
use dla_net::{NodeId, Session, SimLink, SimNet};
use rand::Rng;

/// Result of a secure-ranking run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankOutcome {
    /// Party indices sorted by their value, ascending (ties by party
    /// index).
    pub ascending: Vec<usize>,
    /// `ranks[i]` = 0-based rank of party `i` (0 = smallest; equal
    /// values share the smaller rank).
    pub ranks: Vec<usize>,
    /// Index of the party holding the maximum.
    pub max_party: usize,
    /// Index of the party holding the minimum.
    pub min_party: usize,
    /// Cost accounting.
    pub report: ProtocolReport,
}

/// Runs `Rank_s` (and with it `Max_s`/`Min_s`) over `parties` with the
/// blind `ttp`. `values[i]` is the private value of `parties[i]`.
///
/// # Errors
///
/// Returns [`MpcError`] on network failure or malformed messages.
///
/// # Panics
///
/// Panics if parties are empty, the TTP is among the parties, or any
/// value exceeds [`dla_crypto::affine::MONOTONE_MAX_INPUT`].
pub fn secure_ranking<R: Rng + ?Sized>(
    net: &mut SimNet,
    parties: &[NodeId],
    ttp: NodeId,
    values: &[u64],
    rng: &mut R,
) -> Result<RankOutcome, MpcError> {
    let link = SimLink::new(net);
    let session = Session::root(&link);
    run(&session, parties, ttp, values, rng)
}

/// A `Rank_s` protocol instance bound to one transport session, so
/// several rankings (or a ranking and any other protocol) can be in
/// flight over the same network at once.
#[derive(Clone, Copy, Debug)]
pub struct RankingSession<'a> {
    session: Session<'a>,
    parties: &'a [NodeId],
    ttp: NodeId,
}

impl<'a> RankingSession<'a> {
    /// Binds a ranking instance to `session`.
    #[must_use]
    pub fn new(session: Session<'a>, parties: &'a [NodeId], ttp: NodeId) -> Self {
        RankingSession {
            session,
            parties,
            ttp,
        }
    }

    /// Runs `Rank_s` over this instance's session.
    ///
    /// # Errors
    ///
    /// Returns [`MpcError`] on network failure or malformed messages.
    ///
    /// # Panics
    ///
    /// As [`secure_ranking`].
    pub fn run<R: Rng + ?Sized>(
        &self,
        values: &[u64],
        rng: &mut R,
    ) -> Result<RankOutcome, MpcError> {
        run(&self.session, self.parties, self.ttp, values, rng)
    }
}

fn run<R: Rng + ?Sized>(
    net: &Session<'_>,
    parties: &[NodeId],
    ttp: NodeId,
    values: &[u64],
    rng: &mut R,
) -> Result<RankOutcome, MpcError> {
    let n = parties.len();
    assert!(n >= 1, "need at least one party");
    assert_eq!(values.len(), n, "one value per party");
    assert!(!parties.contains(&ttp), "TTP must not be a party");
    let meter = Meter::start_session(net);
    let _telemetry = crate::report::SessionTelemetry::begin(net, "secure-ranking");

    // Negotiation round: initiator seals the mask to each peer.
    let mask = MonotoneMasker::random(rng);
    for &peer in &parties[1..] {
        let mut w = Writer::new();
        w.put_u8(0x07).put_bytes(&mask.to_bytes());
        net.send(parties[0], peer, w.finish());
        let envelope = net.recv_from(peer, parties[0])?;
        let mut r = Reader::new(&envelope.payload);
        if r.get_u8()? != 0x07 {
            return Err(MpcError::Wire("unexpected negotiation tag".into()));
        }
        let _peer_mask = MonotoneMasker::from_bytes(r.get_bytes()?)?;
        r.finish()?;
    }

    // Submission round: masked values to the TTP.
    for (i, &party) in parties.iter().enumerate() {
        let mut w = Writer::new();
        w.put_u8(0x08)
            .put_u64(i as u64)
            .put_u128(mask.apply(values[i]));
        net.send(party, ttp, w.finish());
    }
    let mut masked: Vec<(u128, usize)> = Vec::with_capacity(n);
    for &party in parties {
        let envelope = net.recv_from(ttp, party)?;
        let mut r = Reader::new(&envelope.payload);
        if r.get_u8()? != 0x08 {
            return Err(MpcError::Wire("unexpected submission tag".into()));
        }
        let idx = r.get_u64()? as usize;
        let w = r.get_u128()?;
        r.finish()?;
        masked.push((w, idx));
    }

    // The blind TTP sorts masked values; order-preservation makes this
    // the plaintext ranking.
    masked.sort_unstable();
    let ascending: Vec<usize> = masked.iter().map(|&(_, i)| i).collect();
    let mut ranks = vec![0usize; n];
    for (pos, &(w, party)) in masked.iter().enumerate() {
        // Equal masked values (ties) share the smaller rank.
        if pos > 0 && masked[pos - 1].0 == w {
            ranks[party] = ranks[masked[pos - 1].1];
        } else {
            ranks[party] = pos;
        }
    }

    // Result broadcast.
    for &party in parties {
        let mut w = Writer::new();
        w.put_u8(0x09).put_list(&ascending, |w, &i| {
            w.put_u64(i as u64);
        });
        net.send(ttp, party, w.finish());
        let envelope = net.recv_from(party, ttp)?;
        let mut r = Reader::new(&envelope.payload);
        if r.get_u8()? != 0x09 {
            return Err(MpcError::Wire("unexpected result tag".into()));
        }
        let reported = r.get_list(|r| r.get_u64().map(|v| v as usize))?;
        r.finish()?;
        if reported != ascending {
            return Err(MpcError::Protocol("ranking broadcast mismatch".into()));
        }
    }

    let report = meter.finish_session(net, "secure-ranking", n, 3);
    Ok(RankOutcome {
        max_party: *ascending.last().expect("nonempty"),
        min_party: ascending[0],
        ascending,
        ranks,
        report,
    })
}

/// Result of a `Max_s`/`Min_s` run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtremumOutcome {
    /// The party holding the extremum.
    pub party: usize,
    /// Cost accounting.
    pub report: ProtocolReport,
}

/// `Max_s` (§3.3): which party holds the maximum — nobody learns any
/// value, only the winner's index.
///
/// # Errors
///
/// As [`secure_ranking`].
///
/// # Panics
///
/// As [`secure_ranking`].
pub fn secure_max<R: Rng + ?Sized>(
    net: &mut SimNet,
    parties: &[NodeId],
    ttp: NodeId,
    values: &[u64],
    rng: &mut R,
) -> Result<ExtremumOutcome, MpcError> {
    let outcome = secure_ranking(net, parties, ttp, values, rng)?;
    Ok(ExtremumOutcome {
        party: outcome.max_party,
        report: outcome.report,
    })
}

/// `Min_s` (§3.3): which party holds the minimum.
///
/// # Errors
///
/// As [`secure_ranking`].
///
/// # Panics
///
/// As [`secure_ranking`].
pub fn secure_min<R: Rng + ?Sized>(
    net: &mut SimNet,
    parties: &[NodeId],
    ttp: NodeId,
    values: &[u64],
    rng: &mut R,
) -> Result<ExtremumOutcome, MpcError> {
    let outcome = secure_ranking(net, parties, ttp, values, rng)?;
    Ok(ExtremumOutcome {
        party: outcome.min_party,
        report: outcome.report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_net::NetConfig;
    use rand::SeedableRng;

    fn setup(n: usize) -> (SimNet, Vec<NodeId>, NodeId, rand::rngs::StdRng) {
        (
            SimNet::new(n + 1, NetConfig::ideal()),
            (0..n).map(NodeId).collect(),
            NodeId(n),
            rand::rngs::StdRng::seed_from_u64(5000),
        )
    }

    #[test]
    fn ranks_distinct_values() {
        let (mut net, parties, ttp, mut rng) = setup(4);
        let values = [300u64, 100, 400, 200];
        let outcome = secure_ranking(&mut net, &parties, ttp, &values, &mut rng).unwrap();
        assert_eq!(outcome.ascending, vec![1, 3, 0, 2]);
        assert_eq!(outcome.ranks, vec![2, 0, 3, 1]);
        assert_eq!(outcome.max_party, 2);
        assert_eq!(outcome.min_party, 1);
    }

    #[test]
    fn matches_plain_sort_on_random_inputs() {
        let (_, _, _, mut rng) = setup(1);
        for n in [2usize, 5, 9] {
            let values: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1u64 << 32)).collect();
            let (mut net, parties, ttp, mut prng) = setup(n);
            let outcome = secure_ranking(&mut net, &parties, ttp, &values, &mut prng).unwrap();
            let mut expect: Vec<usize> = (0..n).collect();
            expect.sort_by_key(|&i| (values[i], i));
            assert_eq!(outcome.ascending, expect);
        }
    }

    #[test]
    fn ties_share_rank() {
        let (mut net, parties, ttp, mut rng) = setup(3);
        let values = [7u64, 7, 3];
        let outcome = secure_ranking(&mut net, &parties, ttp, &values, &mut rng).unwrap();
        assert_eq!(outcome.min_party, 2);
        assert_eq!(
            outcome.ranks[0], outcome.ranks[1],
            "equal values, equal rank"
        );
        assert_eq!(outcome.ranks[2], 0);
    }

    #[test]
    fn message_complexity_is_linear() {
        for n in [2usize, 4, 8] {
            let (mut net, parties, ttp, mut rng) = setup(n);
            let values: Vec<u64> = (0..n as u64).collect();
            let outcome = secure_ranking(&mut net, &parties, ttp, &values, &mut rng).unwrap();
            // (n−1) negotiation + n submissions + n broadcasts.
            assert_eq!(outcome.report.messages as usize, 3 * n - 1, "n={n}");
        }
    }

    #[test]
    fn single_party_trivial() {
        let (mut net, parties, ttp, mut rng) = setup(1);
        let outcome = secure_ranking(&mut net, &parties, ttp, &[42], &mut rng).unwrap();
        assert_eq!(outcome.ascending, vec![0]);
        assert_eq!(outcome.max_party, 0);
    }

    #[test]
    #[should_panic(expected = "TTP must not be a party")]
    fn ttp_overlap_panics() {
        let (mut net, parties, _, mut rng) = setup(2);
        let _ = secure_ranking(&mut net, &parties, parties[0], &[1, 2], &mut rng);
    }

    #[test]
    fn max_and_min_wrappers() {
        let (mut net, parties, ttp, mut rng) = setup(4);
        let values = [30u64, 10, 40, 20];
        let max = secure_max(&mut net, &parties, ttp, &values, &mut rng).unwrap();
        assert_eq!(max.party, 2);
        let min = secure_min(&mut net, &parties, ttp, &values, &mut rng).unwrap();
        assert_eq!(min.party, 1);
    }

    #[test]
    fn robust_under_link_latency() {
        // Submissions from different parties interleave arbitrarily
        // under random latency; selective receive must keep the
        // protocol deterministic in outcome.
        use dla_net::latency::LatencyModel;
        for seed in 0..5u64 {
            let n = 5;
            let cfg = NetConfig::ideal()
                .with_latency(LatencyModel::lan())
                .with_seed(seed);
            let mut net = SimNet::new(n + 1, cfg);
            let parties: Vec<NodeId> = (0..n).map(NodeId).collect();
            let values = [42u64, 7, 99, 7, 13];
            let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
            let outcome = secure_ranking(&mut net, &parties, NodeId(n), &values, &mut rng).unwrap();
            assert_eq!(outcome.max_party, 2, "seed {seed}");
            assert_eq!(outcome.min_party, 1, "seed {seed}");
        }
    }

    #[test]
    fn dropped_submission_detected() {
        let (mut net, parties, ttp, mut rng) = setup(3);
        net.faults_mut()
            .inject_once(1, 3, dla_net::fault::FaultOutcome::Drop);
        assert!(secure_ranking(&mut net, &parties, ttp, &[5, 6, 7], &mut rng).is_err());
    }
}
