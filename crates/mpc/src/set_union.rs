//! Secure set union `∪_s` (paper §3.4).
//!
//! Same relay skeleton as [`crate::set_intersection`]: every set
//! acquires all `n` encryption layers on its way around the ring. The
//! collector keeps **one copy of any redundant entries** among the
//! fully-encrypted elements (equal plaintexts have equal n-fold
//! ciphertexts) and recovers the union's plaintexts with a decryption
//! pass — "without revealing the owner(s) of each of the items":
//! because deduplication and decryption happen on the merged list,
//! nobody learns which party contributed which element.

use crate::report::{Meter, ProtocolReport};
use crate::MpcError;
use dla_bigint::Ubig;
use dla_crypto::pohlig_hellman::{BatchMode, CommutativeDomain, PhKey};
use dla_net::topology::Ring;
use dla_net::wire::{Reader, Writer};
use dla_net::{NodeId, Session, SimLink, SimNet};
use rand::Rng;
use std::collections::BTreeSet;

/// Result of a secure set union run.
#[derive(Debug, Clone)]
pub struct UnionOutcome {
    /// The union's plaintext items (sorted; ownership not attributable).
    pub items: Vec<Vec<u8>>,
    /// Cost accounting.
    pub report: ProtocolReport,
}

impl UnionOutcome {
    /// Union cardinality.
    #[must_use]
    pub fn cardinality(&self) -> usize {
        self.items.len()
    }
}

/// Runs `∪_s` over the ring. `inputs[i]` is the private set of ring
/// position `i`.
///
/// # Errors
///
/// Returns [`MpcError`] on network failure, malformed payloads or
/// unencodable items.
///
/// # Panics
///
/// Panics if `inputs.len() != ring.len()`.
pub fn secure_set_union<R: Rng + ?Sized>(
    net: &mut SimNet,
    ring: &Ring,
    domain: &CommutativeDomain,
    inputs: &[Vec<Vec<u8>>],
    collector: NodeId,
    rng: &mut R,
) -> Result<UnionOutcome, MpcError> {
    let link = SimLink::new(net);
    let session = Session::root(&link);
    run(
        &session,
        ring,
        domain,
        inputs,
        collector,
        BatchMode::Serial,
        rng,
    )
}

/// A `∪_s` protocol instance bound to one transport session, so several
/// unions (or a union and any other protocol) can be in flight over the
/// same network at once.
#[derive(Clone, Copy, Debug)]
pub struct UnionSession<'a> {
    session: Session<'a>,
    ring: &'a Ring,
    domain: &'a CommutativeDomain,
    collector: NodeId,
    batch: BatchMode,
}

impl<'a> UnionSession<'a> {
    /// Binds a union instance to `session`.
    #[must_use]
    pub fn new(
        session: Session<'a>,
        ring: &'a Ring,
        domain: &'a CommutativeDomain,
        collector: NodeId,
    ) -> Self {
        UnionSession {
            session,
            ring,
            domain,
            collector,
            batch: BatchMode::Serial,
        }
    }

    /// Selects how each hop's element set is pushed through the cipher
    /// (default [`BatchMode::Serial`]); transcripts and outcomes are
    /// bit-identical in every mode.
    #[must_use]
    pub fn batch(mut self, batch: BatchMode) -> Self {
        self.batch = batch;
        self
    }

    /// Runs the union over this instance's session.
    ///
    /// # Errors
    ///
    /// Returns [`MpcError`] on network failure, malformed payloads or
    /// unencodable items.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != ring.len()`.
    pub fn run<R: Rng + ?Sized>(
        &self,
        inputs: &[Vec<Vec<u8>>],
        rng: &mut R,
    ) -> Result<UnionOutcome, MpcError> {
        run(
            &self.session,
            self.ring,
            self.domain,
            inputs,
            self.collector,
            self.batch,
            rng,
        )
    }
}

#[allow(clippy::too_many_arguments)]
fn run<R: Rng + ?Sized>(
    net: &Session<'_>,
    ring: &Ring,
    domain: &CommutativeDomain,
    inputs: &[Vec<Vec<u8>>],
    collector: NodeId,
    batch: BatchMode,
    rng: &mut R,
) -> Result<UnionOutcome, MpcError> {
    let n = ring.len();
    assert_eq!(inputs.len(), n, "one input set per ring position");
    let meter = Meter::start_session(net);
    let _telemetry = crate::report::SessionTelemetry::begin(net, "secure-set-union");

    let keys: Vec<PhKey> = (0..n).map(|_| PhKey::generate(domain, rng)).collect();

    // Owner encryption. To thwart position-based linking, each owner
    // shuffles its set before sending (BTreeSet ordering of ciphertexts
    // is unrelated to plaintext order anyway after one layer).
    let mut sets: Vec<Vec<Ubig>> = Vec::with_capacity(n);
    for (i, raw) in inputs.iter().enumerate() {
        let canonical: BTreeSet<Vec<u8>> = raw.iter().cloned().collect();
        let encoded: Vec<Ubig> = canonical
            .iter()
            .map(|item| domain.encode(item).map_err(MpcError::from))
            .collect::<Result<_, MpcError>>()?;
        sets.push(keys[i].encrypt_batch(&encoded, batch));
    }

    // Relay rounds.
    #[allow(clippy::needless_range_loop)] // origin indexes sets/history in parallel
    for hop in 1..n {
        for origin in 0..n {
            let from = ring.at((origin + hop - 1) % n);
            let to = ring.at((origin + hop) % n);
            net.send(from, to, encode_msg(&sets[origin]));
            let envelope = net.recv_from(to, from)?;
            let elements = decode_msg(&envelope.payload)?;
            let holder = (origin + hop) % n;
            sets[origin] = keys[holder].encrypt_batch(&elements, batch);
        }
    }

    // Collect and deduplicate ("keeping only one copy of any redundant
    // entries").
    let mut merged: BTreeSet<Vec<u8>> = BTreeSet::new();
    #[allow(clippy::needless_range_loop)] // origin indexes sets and ring positions together
    for origin in 0..n {
        let final_holder = ring.at((origin + n - 1) % n);
        net.send(final_holder, collector, encode_msg(&sets[origin]));
        let envelope = net.recv_from(collector, final_holder)?;
        for e in decode_msg(&envelope.payload)? {
            merged.insert(e.to_bytes_be());
        }
    }
    let mut current: Vec<Ubig> = merged.iter().map(|b| Ubig::from_bytes_be(b)).collect();

    // Decryption pass around the ring.
    let mut holder = collector;
    #[allow(clippy::needless_range_loop)] // pos walks the ring and the key table together
    for pos in 0..n {
        let node = ring.at(pos);
        net.send(holder, node, encode_msg(&current));
        let envelope = net.recv_from(node, holder)?;
        current = keys[pos].decrypt_batch(&decode_msg(&envelope.payload)?, batch);
        holder = node;
    }
    net.send(holder, collector, encode_msg(&current));
    let envelope = net.recv_from(collector, holder)?;
    let mut items: Vec<Vec<u8>> = decode_msg(&envelope.payload)?
        .iter()
        .map(|e| domain.decode(e))
        .collect();
    items.sort();
    items.dedup();

    let rounds = (n - 1) + 1 + (n + 1);
    let report = meter.finish_session(net, "secure-set-union", n, rounds);
    Ok(UnionOutcome { items, report })
}

fn encode_msg(elements: &[Ubig]) -> bytes::Bytes {
    let mut w = Writer::new();
    w.put_u8(0x02).put_list(elements, |w, e| {
        w.put_bytes(&e.to_bytes_be());
    });
    w.finish()
}

fn decode_msg(payload: &[u8]) -> Result<Vec<Ubig>, MpcError> {
    let mut r = Reader::new(payload);
    let tag = r.get_u8()?;
    if tag != 0x02 {
        return Err(MpcError::Wire(format!("unexpected message tag {tag}")));
    }
    let elements = r.get_list(|r| r.get_bytes().map(Ubig::from_bytes_be))?;
    r.finish()?;
    Ok(elements)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_net::NetConfig;
    use rand::SeedableRng;

    fn items(names: &[&str]) -> Vec<Vec<u8>> {
        names.iter().map(|s| s.as_bytes().to_vec()).collect()
    }

    fn setup(n: usize) -> (SimNet, Ring, CommutativeDomain, rand::rngs::StdRng) {
        (
            SimNet::new(n, NetConfig::ideal()),
            Ring::canonical(n),
            CommutativeDomain::fixed_256(),
            rand::rngs::StdRng::seed_from_u64(2000),
        )
    }

    #[test]
    fn union_of_overlapping_sets() {
        let (mut net, ring, domain, mut rng) = setup(3);
        let inputs = vec![
            items(&["c", "d", "e"]),
            items(&["d", "e", "f"]),
            items(&["e", "f", "g"]),
        ];
        let outcome =
            secure_set_union(&mut net, &ring, &domain, &inputs, NodeId(0), &mut rng).unwrap();
        assert_eq!(outcome.items, items(&["c", "d", "e", "f", "g"]));
        assert_eq!(outcome.cardinality(), 5);
    }

    #[test]
    fn union_of_disjoint_sets_is_concatenation() {
        let (mut net, ring, domain, mut rng) = setup(2);
        let inputs = vec![items(&["a", "b"]), items(&["c"])];
        let outcome =
            secure_set_union(&mut net, &ring, &domain, &inputs, NodeId(1), &mut rng).unwrap();
        assert_eq!(outcome.items, items(&["a", "b", "c"]));
    }

    #[test]
    fn duplicates_across_parties_collapse() {
        let (mut net, ring, domain, mut rng) = setup(4);
        let inputs = vec![items(&["x"]), items(&["x"]), items(&["x"]), items(&["x"])];
        let outcome =
            secure_set_union(&mut net, &ring, &domain, &inputs, NodeId(0), &mut rng).unwrap();
        assert_eq!(outcome.items, items(&["x"]));
    }

    #[test]
    fn empty_inputs_yield_empty_union() {
        let (mut net, ring, domain, mut rng) = setup(3);
        let inputs = vec![vec![], vec![], vec![]];
        let outcome =
            secure_set_union(&mut net, &ring, &domain, &inputs, NodeId(0), &mut rng).unwrap();
        assert!(outcome.items.is_empty());
    }

    #[test]
    fn some_empty_some_not() {
        let (mut net, ring, domain, mut rng) = setup(3);
        let inputs = vec![vec![], items(&["q"]), vec![]];
        let outcome =
            secure_set_union(&mut net, &ring, &domain, &inputs, NodeId(2), &mut rng).unwrap();
        assert_eq!(outcome.items, items(&["q"]));
    }

    #[test]
    fn message_count_matches_protocol_structure() {
        for n in [2usize, 4] {
            let (mut net, ring, domain, mut rng) = setup(n);
            let inputs = vec![items(&["a"]); n];
            let outcome =
                secure_set_union(&mut net, &ring, &domain, &inputs, NodeId(0), &mut rng).unwrap();
            // n(n−1) relay + n collect + (n+1) decrypt-pass messages.
            assert_eq!(
                outcome.report.messages as usize,
                n * (n - 1) + n + n + 1,
                "n={n}"
            );
        }
    }

    #[test]
    fn dropped_message_is_detected() {
        let (mut net, ring, domain, mut rng) = setup(3);
        net.faults_mut()
            .inject_once(1, 2, dla_net::fault::FaultOutcome::Drop);
        let inputs = vec![items(&["a"]), items(&["b"]), items(&["c"])];
        assert!(secure_set_union(&mut net, &ring, &domain, &inputs, NodeId(0), &mut rng).is_err());
    }
}
