//! Per-protocol cost reporting: message count, bytes, simulated network
//! latency and round count — the quantities behind the paper's
//! relaxed-vs-classical efficiency argument.
//!
//! [`SessionTelemetry`] additionally bridges protocol runs into the
//! `dla-telemetry` subsystem: one cost scope (so crypto/net operation
//! counts are attributed to the protocol session) plus one span over
//! the session's virtual-time interval. Both are single-branch no-ops
//! when no recorder is installed.

use dla_net::{Session, SimNet, SimTime};
use std::fmt;

/// Cost summary of one protocol execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolReport {
    /// Protocol name.
    pub protocol: &'static str,
    /// Number of participating parties (excluding a coordinating TTP).
    pub parties: usize,
    /// Messages sent during the run.
    pub messages: u64,
    /// Payload bytes sent during the run.
    pub bytes: u64,
    /// Simulated network makespan attributable to the run.
    pub elapsed: SimTime,
    /// Communication rounds (protocol-defined).
    pub rounds: usize,
}

impl fmt::Display for ProtocolReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: n={} rounds={} msgs={} bytes={} net-latency={}",
            self.protocol, self.parties, self.rounds, self.messages, self.bytes, self.elapsed
        )
    }
}

/// Snapshot-based meter: construct before the protocol, call
/// [`Meter::finish`] after.
#[derive(Debug, Clone, Copy)]
pub struct Meter {
    messages0: u64,
    bytes0: u64,
    elapsed0: SimTime,
}

impl Meter {
    /// Snapshots the network counters.
    #[must_use]
    pub fn start(net: &SimNet) -> Self {
        Meter {
            messages0: net.stats().messages_sent,
            bytes0: net.stats().bytes_sent,
            elapsed0: net.elapsed(),
        }
    }

    /// Produces the report for everything sent since [`Meter::start`].
    #[must_use]
    pub fn finish(
        self,
        net: &SimNet,
        protocol: &'static str,
        parties: usize,
        rounds: usize,
    ) -> ProtocolReport {
        ProtocolReport {
            protocol,
            parties,
            messages: net.stats().messages_sent - self.messages0,
            bytes: net.stats().bytes_sent - self.bytes0,
            elapsed: net.elapsed() - self.elapsed0,
            rounds,
        }
    }

    /// Snapshots one protocol session's counters. Unlike
    /// [`Meter::start`], this attributes traffic *per session*, so a
    /// protocol's report stays exact even while other sessions are in
    /// flight on the same transport.
    #[must_use]
    pub fn start_session(session: &Session<'_>) -> Self {
        let (messages0, bytes0) = session.counters();
        Meter {
            messages0,
            bytes0,
            elapsed0: session.elapsed(),
        }
    }

    /// Produces the report for everything this session sent since
    /// [`Meter::start_session`].
    #[must_use]
    pub fn finish_session(
        self,
        session: &Session<'_>,
        protocol: &'static str,
        parties: usize,
        rounds: usize,
    ) -> ProtocolReport {
        let (messages, bytes) = session.counters();
        dla_telemetry::record(dla_telemetry::CostKind::Round, rounds as u64);
        ProtocolReport {
            protocol,
            parties,
            messages: messages - self.messages0,
            bytes: bytes - self.bytes0,
            elapsed: session.elapsed() - self.elapsed0,
            rounds,
        }
    }
}

/// Telemetry bracket for one protocol run on `session`: opens a cost
/// scope labelled with the protocol name (attributing every modexp,
/// Shamir evaluation, send, ... to this session) and a `"protocol"`
/// span covering the run's virtual-time interval. Hold it for the
/// duration of the run; dropping it closes the span at the session's
/// then-current virtual makespan.
#[must_use = "telemetry is attributed only while the bracket is alive"]
pub struct SessionTelemetry<'a> {
    session: Session<'a>,
    span: Option<dla_telemetry::SpanGuard>,
    _scope: dla_telemetry::ScopeGuard,
}

impl<'a> SessionTelemetry<'a> {
    /// Opens the scope + span bracket for `protocol` on `session`.
    pub fn begin(session: &Session<'a>, protocol: &'static str) -> Self {
        let scope = dla_telemetry::scope(protocol, session.id().0);
        let span = dla_telemetry::span("protocol", protocol, session.elapsed().as_nanos());
        SessionTelemetry {
            session: *session,
            span: span.is_recording().then_some(span),
            _scope: scope,
        }
    }
}

impl Drop for SessionTelemetry<'_> {
    fn drop(&mut self) {
        if let Some(span) = self.span.take() {
            span.end(self.session.elapsed().as_nanos());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use dla_net::{NetConfig, NodeId};

    #[test]
    fn meter_measures_deltas_only() {
        let mut net = SimNet::new(2, NetConfig::ideal());
        net.send(NodeId(0), NodeId(1), Bytes::from_static(b"before"));
        let meter = Meter::start(&net);
        net.send(NodeId(0), NodeId(1), Bytes::from_static(b"during!"));
        net.send(NodeId(1), NodeId(0), Bytes::from_static(b"during!"));
        let report = meter.finish(&net, "test", 2, 1);
        assert_eq!(report.messages, 2);
        assert_eq!(report.bytes, 14);
        assert_eq!(report.rounds, 1);
    }

    #[test]
    fn report_display_mentions_all_costs() {
        let r = ProtocolReport {
            protocol: "ssi",
            parties: 3,
            messages: 9,
            bytes: 1024,
            elapsed: SimTime::from_millis(5),
            rounds: 3,
        };
        let s = r.to_string();
        assert!(s.contains("ssi"));
        assert!(s.contains("msgs=9"));
        assert!(s.contains("bytes=1024"));
    }
}
