//! Secure sum `Σ_s` and publicly weighted sums (paper §3.5).
//!
//! Each node `P_i` hides its secret `a_i` as the free coefficient of a
//! random degree-(k−1) polynomial `f_i` and sends the share
//! `s_ij = f_i(x_j)` to node `P_j`. Every node publishes
//! `F(x_j) = Σ_i s_ij` — a share of `F = Σ_i f_i`, whose free
//! coefficient is exactly `Σ_i a_i`. Any `k` published points
//! reconstruct the total; fewer than `k` colluding nodes learn nothing
//! about any individual `a_i` (information-theoretic, as Shamir
//! guarantees).
//!
//! The weighted variant computes `Σ α_i·a_i` for public constants
//! `α_i` ("Let α₀, α₁ … denote publicly known constants"): node `j`
//! simply sums `α_i·s_ij`.

use crate::report::{Meter, ProtocolReport};
use crate::MpcError;
use dla_bigint::F61;
use dla_crypto::shamir::{self, SecretPolynomial, Share, SharePoints};
use dla_net::wire::{Reader, Writer};
use dla_net::{NodeId, Session, SimLink, SimNet};
use rand::Rng;

/// Result of a secure-sum run.
#[derive(Debug, Clone)]
pub struct SumOutcome {
    /// The aggregate `Σ α_i·a_i` (α ≡ 1 for the unweighted protocol).
    pub total: F61,
    /// Cost accounting.
    pub report: ProtocolReport,
}

/// Runs the unweighted secure sum over `parties`, with threshold `k`;
/// the `collector` (one of the parties or an auditor node) receives the
/// published shares and reconstructs.
///
/// # Errors
///
/// Returns [`MpcError`] on network failure, malformed messages, or
/// inconsistent published shares (a corrupted or tampered message).
///
/// # Panics
///
/// Panics unless `1 ≤ k ≤ parties.len()` and inputs match parties.
pub fn secure_sum<R: Rng + ?Sized>(
    net: &mut SimNet,
    parties: &[NodeId],
    inputs: &[F61],
    k: usize,
    collector: NodeId,
    rng: &mut R,
) -> Result<SumOutcome, MpcError> {
    let weights = vec![F61::ONE; parties.len()];
    secure_weighted_sum(net, parties, inputs, &weights, k, collector, rng)
}

/// Runs the weighted secure sum `Σ α_i·a_i` with public `weights`.
///
/// # Errors
///
/// As [`secure_sum`].
///
/// # Panics
///
/// As [`secure_sum`], plus `weights.len()` must match.
pub fn secure_weighted_sum<R: Rng + ?Sized>(
    net: &mut SimNet,
    parties: &[NodeId],
    inputs: &[F61],
    weights: &[F61],
    k: usize,
    collector: NodeId,
    rng: &mut R,
) -> Result<SumOutcome, MpcError> {
    let link = SimLink::new(net);
    let session = Session::root(&link);
    run(&session, parties, inputs, weights, k, collector, rng)
}

/// The session-parameterized form of `Σ_s`: bind the protocol to any
/// [`Session`] so a sum can run concurrently with other protocol
/// instances over one transport.
#[derive(Debug)]
pub struct SumSession<'a> {
    session: Session<'a>,
    parties: &'a [NodeId],
    weights: Option<&'a [F61]>,
    k: usize,
    collector: NodeId,
}

impl<'a> SumSession<'a> {
    /// Binds `Σ_s` to `session` with reconstruction threshold `k`; the
    /// `collector` receives the published shares.
    #[must_use]
    pub fn new(session: Session<'a>, parties: &'a [NodeId], k: usize, collector: NodeId) -> Self {
        SumSession {
            session,
            parties,
            weights: None,
            k,
            collector,
        }
    }

    /// Uses public `weights` (the `Σ α_i·a_i` variant).
    #[must_use]
    pub fn weighted(mut self, weights: &'a [F61]) -> Self {
        self.weights = Some(weights);
        self
    }

    /// Runs the protocol over this session.
    ///
    /// # Errors
    ///
    /// As [`secure_sum`].
    ///
    /// # Panics
    ///
    /// As [`secure_weighted_sum`].
    pub fn run<R: Rng + ?Sized>(
        &self,
        inputs: &[F61],
        rng: &mut R,
    ) -> Result<SumOutcome, MpcError> {
        let ones;
        let weights = match self.weights {
            Some(w) => w,
            None => {
                ones = vec![F61::ONE; self.parties.len()];
                &ones
            }
        };
        run(
            &self.session,
            self.parties,
            inputs,
            weights,
            self.k,
            self.collector,
            rng,
        )
    }
}

fn run<R: Rng + ?Sized>(
    net: &Session<'_>,
    parties: &[NodeId],
    inputs: &[F61],
    weights: &[F61],
    k: usize,
    collector: NodeId,
    rng: &mut R,
) -> Result<SumOutcome, MpcError> {
    let n = parties.len();
    assert!(n >= 1, "need at least one party");
    assert_eq!(inputs.len(), n, "one input per party");
    assert_eq!(weights.len(), n, "one weight per party");
    assert!(k >= 1 && k <= n, "threshold must satisfy 1 <= k <= n");
    let meter = Meter::start_session(net);
    let _telemetry = crate::report::SessionTelemetry::begin(net, "secure-sum");

    let points = SharePoints::canonical(n);

    // Round 1: each party deals shares of its secret to every peer.
    let polys: Vec<SecretPolynomial> = inputs
        .iter()
        .map(|&a| SecretPolynomial::random(a, k, rng))
        .collect();
    // received[j][i] = s_ij, the share party j holds of party i's secret.
    let mut received: Vec<Vec<F61>> = vec![vec![F61::ZERO; n]; n];
    for (i, poly) in polys.iter().enumerate() {
        for j in 0..n {
            let share = poly.share_at(points.point(j));
            if i == j {
                received[j][i] = share.y;
                continue;
            }
            net.send(parties[i], parties[j], encode_share(i as u64, share.y));
            let envelope = net.recv_from(parties[j], parties[i])?;
            let (origin, y) = decode_share(&envelope.payload)?;
            if origin as usize != i {
                return Err(MpcError::Protocol(format!(
                    "share labeled from {origin} arrived on {i}'s channel"
                )));
            }
            received[j][i] = y;
        }
    }

    // Round 2: each party publishes F(x_j) = Σ_i α_i·s_ij to the
    // collector.
    let mut published: Vec<Share> = Vec::with_capacity(n);
    for j in 0..n {
        let f_xj: F61 = (0..n).map(|i| weights[i] * received[j][i]).sum();
        net.send(parties[j], collector, encode_share(j as u64, f_xj));
        let envelope = net.recv_from(collector, parties[j])?;
        let (idx, y) = decode_share(&envelope.payload)?;
        if idx as usize >= n {
            return Err(MpcError::Protocol(format!(
                "published share carries out-of-range index {idx}"
            )));
        }
        published.push(Share {
            x: points.point(idx as usize),
            y,
        });
    }

    // Reconstruct from the first k shares, then verify the remaining
    // published shares lie on the same polynomial — a cheap integrity
    // check that catches corrupted/tampered messages.
    let total = shamir::reconstruct(&published[..k])?;
    for extra in &published[k..] {
        let predicted = shamir::reconstruct_at(&published[..k], extra.x)?;
        if predicted != extra.y {
            return Err(MpcError::Protocol(
                "published shares are inconsistent: corrupted share detected".into(),
            ));
        }
    }

    let report = meter.finish_session(net, "secure-sum", n, 2);
    Ok(SumOutcome { total, report })
}

fn encode_share(origin: u64, y: F61) -> bytes::Bytes {
    let mut w = Writer::new();
    w.put_u8(0x03).put_u64(origin).put_u64(y.value());
    w.finish()
}

fn decode_share(payload: &[u8]) -> Result<(u64, F61), MpcError> {
    let mut r = Reader::new(payload);
    let tag = r.get_u8()?;
    if tag != 0x03 {
        return Err(MpcError::Wire(format!("unexpected message tag {tag}")));
    }
    let origin = r.get_u64()?;
    let y = F61::new(r.get_u64()?);
    r.finish()?;
    Ok((origin, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_net::NetConfig;
    use rand::SeedableRng;

    fn setup(n: usize) -> (SimNet, Vec<NodeId>, rand::rngs::StdRng) {
        (
            // One extra node to act as an off-party collector.
            SimNet::new(n + 1, NetConfig::ideal()),
            (0..n).map(NodeId).collect(),
            rand::rngs::StdRng::seed_from_u64(3000),
        )
    }

    #[test]
    fn sums_correctly() {
        let (mut net, parties, mut rng) = setup(4);
        let inputs = [10u64, 20, 30, 40].map(F61::new);
        let outcome = secure_sum(&mut net, &parties, &inputs, 3, NodeId(4), &mut rng).unwrap();
        assert_eq!(outcome.total, F61::new(100));
    }

    #[test]
    fn weighted_sum_matches_paper_extension() {
        let (mut net, parties, mut rng) = setup(3);
        let inputs = [5u64, 7, 9].map(F61::new);
        let weights = [2u64, 3, 10].map(F61::new);
        let outcome = secure_weighted_sum(
            &mut net,
            &parties,
            &inputs,
            &weights,
            2,
            NodeId(3),
            &mut rng,
        )
        .unwrap();
        assert_eq!(outcome.total, F61::new(2 * 5 + 3 * 7 + 10 * 9));
    }

    #[test]
    fn collector_can_be_a_party() {
        let (mut net, parties, mut rng) = setup(3);
        let inputs = [1u64, 2, 3].map(F61::new);
        let outcome = secure_sum(&mut net, &parties, &inputs, 2, parties[0], &mut rng).unwrap();
        assert_eq!(outcome.total, F61::new(6));
    }

    #[test]
    fn wraps_in_the_field() {
        use dla_bigint::field::P61;
        let (mut net, parties, mut rng) = setup(2);
        let inputs = [F61::new(P61 - 1), F61::new(5)];
        let outcome = secure_sum(&mut net, &parties, &inputs, 2, NodeId(2), &mut rng).unwrap();
        assert_eq!(outcome.total, F61::new(4));
    }

    #[test]
    fn message_complexity_is_quadratic_share_round_plus_publish() {
        for n in [2usize, 3, 6] {
            let (mut net, parties, mut rng) = setup(n);
            let inputs: Vec<F61> = (0..n as u64).map(F61::new).collect();
            let outcome =
                secure_sum(&mut net, &parties, &inputs, 2.min(n), NodeId(n), &mut rng).unwrap();
            assert_eq!(outcome.report.messages as usize, n * (n - 1) + n, "n={n}");
            assert_eq!(outcome.report.rounds, 2);
        }
    }

    #[test]
    fn corrupted_share_detected_by_consistency_check() {
        let (mut net, parties, mut rng) = setup(4);
        // Corrupt a round-2 publish (party 3 -> collector 4).
        net.faults_mut()
            .inject_once(3, 4, dla_net::fault::FaultOutcome::Corrupt);
        let inputs = [1u64, 2, 3, 4].map(F61::new);
        // k=3 < n=4 so the 4th share is cross-checked.
        let result = secure_sum(&mut net, &parties, &inputs, 3, NodeId(4), &mut rng);
        match result {
            Err(MpcError::Protocol(_)) => {} // inconsistent share or bad index
            Err(MpcError::Wire(_)) => {}     // corruption hit the wire framing
            // The transport's envelope checksum catches it first.
            Err(MpcError::Net(dla_net::NetError::Corrupt(_))) => {}
            other => panic!("corruption must be detected, got {other:?}"),
        }
    }

    #[test]
    fn single_party_degenerate_sum() {
        let (mut net, parties, mut rng) = setup(1);
        let inputs = [F61::new(42)];
        let outcome = secure_sum(&mut net, &parties, &inputs, 1, NodeId(1), &mut rng).unwrap();
        assert_eq!(outcome.total, F61::new(42));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn bad_threshold_panics() {
        let (mut net, parties, mut rng) = setup(3);
        let inputs = [1u64, 2, 3].map(F61::new);
        let _ = secure_sum(&mut net, &parties, &inputs, 4, NodeId(3), &mut rng);
    }

    #[test]
    fn deterministic_under_seed() {
        let run = || {
            let (mut net, parties, mut rng) = setup(3);
            let inputs = [11u64, 22, 33].map(F61::new);
            secure_sum(&mut net, &parties, &inputs, 2, NodeId(3), &mut rng)
                .unwrap()
                .total
        };
        assert_eq!(run(), run());
    }
}
