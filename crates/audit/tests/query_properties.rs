//! Property tests for the query pipeline: display/parse round-trips,
//! normalization soundness and planner totality over randomly generated
//! criteria trees.

use dla_audit::normal::normalize;
use dla_audit::parser::parse;
use dla_audit::plan::plan;
use dla_audit::query::{CmpOp, Criteria, Predicate};
use dla_logstore::fragment::Partition;
use dla_logstore::model::{AttrValue, Glsn, LogRecord};
use dla_logstore::schema::Schema;
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop::sample::select(vec![
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
        CmpOp::Eq,
        CmpOp::Ne,
    ])
}

/// Predicates over the paper schema, restricted to types whose Display
/// output re-parses (Int, Fixed2, Text — Time renders in the paper's
/// clock format which is only accepted quoted).
fn arb_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (arb_op(), -500i64..500).prop_map(|(op, c)| Predicate::with_const(
            "c1",
            op,
            AttrValue::Int(c)
        )),
        (arb_op(), 0i64..100_000).prop_map(|(op, c)| Predicate::with_const(
            "c2",
            op,
            AttrValue::Fixed2(c)
        )),
        (arb_op(), "[a-z][a-z0-9]{0,6}").prop_map(|(op, s)| Predicate::with_const(
            "id",
            op,
            AttrValue::text(&s)
        )),
        (arb_op(), "[a-z]{1,6}").prop_map(|(op, s)| Predicate::with_const(
            "c3",
            op,
            AttrValue::text(&s)
        )),
        arb_op().prop_map(|op| Predicate::with_attr("id", op, "c3")),
        prop::sample::select(vec![CmpOp::Eq, CmpOp::Ne])
            .prop_map(|op| Predicate::with_attr("tid", op, "protocol")),
    ]
}

fn arb_criteria() -> impl Strategy<Value = Criteria> {
    arb_predicate().prop_map(Criteria::pred).prop_recursive(
        4,  // depth
        24, // total nodes
        3,  // items per collection
        |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
                inner.prop_map(Criteria::not),
            ]
        },
    )
}

fn arb_record() -> impl Strategy<Value = LogRecord> {
    (
        -500i64..500,
        0i64..100_000,
        "[a-z][a-z0-9]{0,6}",
        "[a-z]{1,6}",
        prop::sample::select(vec!["UDP", "TCP"]),
    )
        .prop_map(|(c1, c2, id, c3, protocol)| {
            LogRecord::new(Glsn(1))
                .with("c1", AttrValue::Int(c1))
                .with("c2", AttrValue::Fixed2(c2))
                .with("id", AttrValue::text(&id))
                .with("c3", AttrValue::text(&c3))
                .with("protocol", AttrValue::text(protocol))
                .with("tid", AttrValue::text("T1"))
                .with("time", AttrValue::Time(0))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn display_parse_round_trips(criteria in arb_criteria()) {
        let schema = Schema::paper_example();
        let rendered = criteria.to_string();
        let reparsed = parse(&rendered, &schema)
            .unwrap_or_else(|e| panic!("{rendered:?} failed to re-parse: {e}"));
        prop_assert_eq!(reparsed, criteria);
    }

    #[test]
    fn normalization_is_sound(criteria in arb_criteria(), record in arb_record()) {
        let normalized = normalize(&criteria);
        prop_assert_eq!(
            criteria.eval(&record).unwrap(),
            normalized.eval(&record).unwrap(),
            "criteria {} diverged from its normal form", criteria
        );
    }

    #[test]
    fn planner_is_total_over_well_typed_criteria(criteria in arb_criteria()) {
        let schema = Schema::paper_example();
        let partition = Partition::paper_example(&schema);
        // Every generated predicate is schema-valid, so planning must
        // succeed and cover every clause.
        let normalized = normalize(&criteria);
        let planned = plan(&normalized, &partition).expect("plans");
        prop_assert_eq!(planned.subqueries.len(), normalized.len());
        prop_assert!(planned.atom_count >= normalized.len());
        prop_assert!(planned.cross_atom_count <= planned.atom_count);
    }

    #[test]
    fn atom_count_never_shrinks_semantics(criteria in arb_criteria()) {
        // Normalization may duplicate predicates (distribution) but never
        // invents new attribute references.
        let normalized = normalize(&criteria);
        let mut norm_attrs = std::collections::BTreeSet::new();
        for clause in normalized.clauses() {
            norm_attrs.extend(clause.attributes());
        }
        let mut orig_attrs = std::collections::BTreeSet::new();
        collect_attrs(&criteria, &mut orig_attrs);
        prop_assert!(norm_attrs.is_subset(&orig_attrs));
    }
}

fn collect_attrs(
    criteria: &Criteria,
    out: &mut std::collections::BTreeSet<dla_logstore::model::AttrName>,
) {
    match criteria {
        Criteria::Pred(p) => out.extend(p.attributes().into_iter().cloned()),
        Criteria::And(a, b) | Criteria::Or(a, b) => {
            collect_attrs(a, out);
            collect_attrs(b, out);
        }
        Criteria::Not(inner) => collect_attrs(inner, out),
    }
}
