//! Differential guard for the accelerated exponentiation path: a
//! cluster running the fixed-width kernel with exponent reduction
//! ([`ExpAlgo::Accel`], the default) must answer every query with the
//! same bytes on the wire as one running the PR 4 sliding-window oracle
//! ([`ExpAlgo::Windowed`]) — the whole point of the speedup is that it
//! is algebraically invisible. The trail-verification side (fixed-base
//! powers of x₀ plus multi-exponentiation batch checks) is exercised
//! against the same clusters.

use dla_audit::cluster::{ClusterConfig, DlaCluster};
use dla_audit::integrity;
use dla_audit::plan::TimeWindow;
use dla_crypto::pohlig_hellman::ExpAlgo;
use dla_logstore::fragment::Partition;
use dla_logstore::gen::{generate, WorkloadConfig};
use dla_logstore::model::Glsn;
use dla_logstore::schema::Schema;
use dla_net::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;

type Transcript = Vec<(NodeId, NodeId, Vec<u8>)>;

fn loaded_cluster(seed: u64, algo: ExpAlgo) -> (DlaCluster, Vec<Glsn>) {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let config = ClusterConfig::new(4, schema)
        .with_partition(partition)
        .with_seed(seed)
        .with_epoch_length(2)
        .with_exp_algo(algo)
        .with_payload_capture();
    let mut cluster = DlaCluster::new(config).expect("cluster builds");
    let user = cluster.register_user("u").expect("capacity");
    let mut rng = StdRng::seed_from_u64(seed);
    let records = generate(
        &WorkloadConfig {
            records: 10,
            ..WorkloadConfig::default()
        },
        &mut rng,
    );
    let glsns = cluster.log_records(&user, &records).expect("logs");
    (cluster, glsns)
}

fn transcript(cluster: &DlaCluster) -> Transcript {
    cluster
        .net()
        .captured_payloads()
        .iter()
        .map(|(from, to, payload)| (*from, *to, payload.to_vec()))
        .collect()
}

/// Same-seed clusters differing only in the exponentiation algorithm
/// answer identically and put the very same bytes on the wire.
#[test]
fn cluster_queries_match_across_exp_algos() {
    let queries = [
        "tid = 'T1100267' and c2 > 100.00",
        "id = c3",
        "(id = 'U1' OR c1 > 0) AND protocol = 'UDP'",
    ];
    let (mut accel, _) = loaded_cluster(53, ExpAlgo::Accel);
    let (mut oracle, _) = loaded_cluster(53, ExpAlgo::Windowed);
    for criteria in queries {
        let a = accel.query(criteria).expect("accel query");
        let o = oracle.query(criteria).expect("oracle query");
        assert_eq!(a.glsns, o.glsns, "answers diverged on {criteria}");
        assert_eq!(a.cardinality, o.cardinality);
    }
    assert_eq!(
        accel.net().stats().messages_sent,
        oracle.net().stats().messages_sent
    );
    assert_eq!(
        transcript(&accel),
        transcript(&oracle),
        "query traffic must be byte-identical across exponentiation algorithms"
    );
}

/// The batched verification paths (fixed-base trail refold, RLC window
/// check) agree with the cluster state regardless of which ladder the
/// relay crypto ran on. (Tampering detection on these paths is pinned
/// by the integrity unit tests, which reach the crate-private deposit
/// tamper hook.)
#[test]
fn trail_checks_pass_on_both_exp_algos() {
    for algo in [ExpAlgo::Accel, ExpAlgo::Windowed] {
        let (cluster, glsns) = loaded_cluster(54, algo);
        let full = integrity::check_trail(&cluster);
        assert!(full.ok, "{algo:?}: full trail must verify");
        assert_eq!(full.items_folded, glsns.len() as u64);
        let windowed = integrity::check_window(&cluster, &TimeWindow::unbounded());
        assert!(windowed.ok && windowed.chain_ok, "{algo:?}: window check");
        assert_eq!(windowed.items_folded, glsns.len() as u64);
    }
}
