//! Epoch/time-window boundary properties. The planner's conservative
//! window extraction (`plan::literal_time_window`) must be *exact* at
//! the edges: `time < t` excludes `t` but includes `t-1`, `time > t`
//! excludes `t` but includes `t+1`, and a pair of adjoining windows
//! (`time <= t` / `time > t`) partitions the trail with no record lost
//! or double-counted at the seam — including records sitting exactly
//! on an epoch seal boundary. The cached-partial and rescan aggregate
//! paths must agree at the same edges.

use dla_audit::aggregate::{windowed_bucket_aggregate, AggregatePath};
use dla_audit::cluster::{ClusterConfig, DlaCluster};
use dla_audit::plan::TimeWindow;
use dla_audit::query::{CmpOp, Criteria, Predicate};
use dla_logstore::fragment::Partition;
use dla_logstore::gen::{generate, WorkloadConfig};
use dla_logstore::model::{AttrValue, Glsn, LogRecord};
use dla_logstore::schema::Schema;
use proptest::prelude::*;
use rand::SeedableRng;
use std::collections::BTreeSet;

const RECORDS: usize = 12;
/// Tiny epochs, so boundary times routinely coincide with seals.
const EPOCH_LEN: u64 = 3;

fn loaded_cluster(seed: u64) -> (DlaCluster, Vec<LogRecord>, Vec<Glsn>) {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let mut cluster = DlaCluster::new(
        ClusterConfig::new(4, schema)
            .with_partition(partition)
            .with_seed(seed)
            .with_epoch_length(EPOCH_LEN),
    )
    .expect("cluster builds");
    let user = cluster.register_user("u").expect("capacity");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let records = generate(
        &WorkloadConfig {
            records: RECORDS,
            ..WorkloadConfig::default()
        },
        &mut rng,
    );
    let glsns = cluster.log_records(&user, &records).expect("logs");
    (cluster, records, glsns)
}

fn record_time(record: &LogRecord) -> u64 {
    match record.get(&"time".into()) {
        Some(AttrValue::Time(t)) => *t,
        other => panic!("generated records carry a time, got {other:?}"),
    }
}

fn centralized_reference(
    criteria: &Criteria,
    records: &[LogRecord],
    glsns: &[Glsn],
) -> BTreeSet<Glsn> {
    records
        .iter()
        .zip(glsns)
        .filter(|(r, _)| {
            let mut keyed = LogRecord::new(Glsn(0));
            for (n, v) in r.iter() {
                keyed.insert(n.clone(), v.clone());
            }
            criteria.eval(&keyed).unwrap()
        })
        .map(|(_, g)| *g)
        .collect()
}

fn answer(cluster: &mut DlaCluster, criteria: &Criteria) -> BTreeSet<Glsn> {
    cluster
        .query_criteria(criteria)
        .unwrap_or_else(|e| panic!("query {criteria} failed: {e}"))
        .glsns
        .into_iter()
        .collect()
}

fn time_pred(op: CmpOp, t: u64) -> Criteria {
    Criteria::pred(Predicate::with_const("time", op, AttrValue::Time(t)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every comparison operator applied to a boundary time — a time
    /// an actual record carries, and its ±1 neighbours — returns
    /// exactly the centralized reference through the epoch-pruned
    /// executor. `Lt`/`Gt` are the operators the old extraction
    /// widened by one epoch-row; an exact window must not change the
    /// answer, only the scan.
    #[test]
    fn boundary_operators_match_the_reference(
        seed in 0u64..500,
        pick in 0usize..RECORDS,
        shift in -1i64..=1,
        op in prop::sample::select(vec![
            CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne,
        ]),
    ) {
        let (mut cluster, records, glsns) = loaded_cluster(seed);
        let t = record_time(&records[pick]).saturating_add_signed(shift);
        let criteria = time_pred(op, t);
        let got = answer(&mut cluster, &criteria);
        let expect = centralized_reference(&criteria, &records, &glsns);
        prop_assert_eq!(got, expect, "op {:?} at t={} diverged", op, t);
    }

    /// Adjoining windows partition the sealed trail: `time <= t` and
    /// `time > t` (likewise `<` / `>=`) never lose or double-count a
    /// record, even when `t` is exactly the last time of a sealed
    /// epoch.
    #[test]
    fn adjoining_windows_partition_the_trail(
        seed in 0u64..500,
        pick in 0usize..RECORDS,
    ) {
        let (mut cluster, records, glsns) = loaded_cluster(seed);
        let t = record_time(&records[pick]);
        let all: BTreeSet<Glsn> = glsns.iter().copied().collect();

        for (lo_op, hi_op) in [(CmpOp::Le, CmpOp::Gt), (CmpOp::Lt, CmpOp::Ge)] {
            let below = answer(&mut cluster, &time_pred(lo_op, t));
            let above = answer(&mut cluster, &time_pred(hi_op, t));
            prop_assert!(
                below.is_disjoint(&above),
                "{:?}/{:?} at t={} double-counted {:?}",
                lo_op, hi_op, t,
                below.intersection(&above).collect::<Vec<_>>()
            );
            let union: BTreeSet<Glsn> = below.union(&above).copied().collect();
            prop_assert_eq!(
                &union, &all,
                "{:?}/{:?} at t={} lost a boundary record", lo_op, hi_op, t
            );
        }
    }

    /// The cached-partial and rescan aggregate paths agree on windows
    /// whose edges sit exactly on record times — where an epoch's
    /// observed `[time_lo, time_hi]` extent meets the window edge, the
    /// full-coverage test must be inclusive-exact in both directions.
    #[test]
    fn cached_and_rescan_aggregates_agree_at_boundaries(
        seed in 0u64..500,
        lo_pick in 0usize..RECORDS,
        hi_pick in 0usize..RECORDS,
        lo_shift in -1i64..=1,
        hi_shift in -1i64..=1,
    ) {
        let (cluster, records, _) = loaded_cluster(seed);
        let t_lo = record_time(&records[lo_pick]).saturating_add_signed(lo_shift);
        let t_hi = record_time(&records[hi_pick]).saturating_add_signed(hi_shift);
        let window = TimeWindow { lo: Some(t_lo), hi: Some(t_hi) };
        for value in ["UDP", "TCP"] {
            let cached = windowed_bucket_aggregate(
                &cluster, &"protocol".into(), value, Some(&"c1".into()),
                &window, AggregatePath::Cached,
            ).unwrap();
            let rescan = windowed_bucket_aggregate(
                &cluster, &"protocol".into(), value, Some(&"c1".into()),
                &window, AggregatePath::Rescan,
            ).unwrap();
            prop_assert_eq!(
                (cached.count, cached.sum),
                (rescan.count, rescan.sum),
                "paths diverged for {} over [{}, {}]", value, t_lo, t_hi
            );
            // Reference count straight off the records.
            let expect = records
                .iter()
                .filter(|r| {
                    r.get(&"protocol".into()) == Some(&AttrValue::text(value))
                        && (t_lo..=t_hi).contains(&record_time(r))
                })
                .count() as u64;
            prop_assert_eq!(cached.count, expect);
        }
    }
}

/// A deposit whose time is exactly the seam between two sealed epochs'
/// extents belongs to exactly one side of every adjoining window pair,
/// on the executor path and on both aggregate paths.
#[test]
fn epoch_seam_record_lands_on_exactly_one_side() {
    let (mut cluster, records, glsns) = loaded_cluster(7);
    // Times of the last record in each sealed epoch — the seam values.
    let seams: Vec<u64> = cluster
        .epoch_stats()
        .filter(|s| s.sealed)
        .filter_map(|s| s.time_hi)
        .collect();
    assert!(!seams.is_empty(), "tiny epochs must have sealed");
    let all: BTreeSet<Glsn> = glsns.iter().copied().collect();
    for t in seams {
        let below = answer(&mut cluster, &time_pred(CmpOp::Le, t));
        let above = answer(&mut cluster, &time_pred(CmpOp::Gt, t));
        assert!(below.is_disjoint(&above), "seam t={t} double-counted");
        let union: BTreeSet<Glsn> = below.union(&above).copied().collect();
        assert_eq!(union, all, "seam t={t} lost a record");
        // The seam record itself is on the inclusive side.
        let seam_glsns: Vec<Glsn> = records
            .iter()
            .zip(&glsns)
            .filter(|(r, _)| record_time(r) == t)
            .map(|(_, g)| *g)
            .collect();
        for g in seam_glsns {
            assert!(
                below.contains(&g),
                "seam record {g:?} fell out of `time <= {t}`"
            );
        }
    }
}
