//! The decisive correctness property of the whole system: for *any*
//! well-typed criteria tree, the distributed confidential executor
//! returns exactly the records that plain whole-record evaluation
//! (the centralized Figure 1 semantics) returns.

use dla_audit::cluster::{ClusterConfig, DlaCluster};
use dla_audit::query::{CmpOp, Criteria, Predicate};
use dla_logstore::fragment::Partition;
use dla_logstore::gen::{generate, WorkloadConfig};
use dla_logstore::model::{AttrValue, Glsn, LogRecord};
use dla_logstore::schema::Schema;
use proptest::prelude::*;
use rand::SeedableRng;
use std::collections::BTreeSet;

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop::sample::select(vec![
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
        CmpOp::Eq,
        CmpOp::Ne,
    ])
}

/// Predicates likely to select non-trivial subsets of the generated
/// workload (values drawn from the generator's ranges).
fn arb_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (arb_op(), 1i64..100)
            .prop_map(|(op, c)| Predicate::with_const("c1", op, AttrValue::Int(c))),
        (arb_op(), 100i64..100_000)
            .prop_map(|(op, c)| Predicate::with_const("c2", op, AttrValue::Fixed2(c))),
        (arb_op(), 1u64..6).prop_map(|(op, u)| Predicate::with_const(
            "id",
            op,
            AttrValue::text(&format!("U{u}"))
        )),
        prop::sample::select(vec![CmpOp::Eq, CmpOp::Ne]).prop_map(|op| {
            Predicate::with_const("protocol", op, AttrValue::text("UDP"))
        }),
        prop::sample::select(vec![CmpOp::Eq, CmpOp::Ne])
            .prop_map(|op| Predicate::with_attr("id", op, "c3")),
    ]
}

fn arb_criteria() -> impl Strategy<Value = Criteria> {
    arb_predicate().prop_map(Criteria::pred).prop_recursive(
        3,  // depth
        12, // nodes
        2,  // per collection
        |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
                inner.prop_map(Criteria::not),
            ]
        },
    )
}

fn loaded_cluster(seed: u64) -> (DlaCluster, Vec<LogRecord>, Vec<Glsn>) {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let mut cluster = DlaCluster::new(
        ClusterConfig::new(4, schema)
            .with_partition(partition)
            .with_seed(seed),
    )
    .expect("cluster builds");
    let user = cluster.register_user("u").expect("capacity");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let records = generate(
        &WorkloadConfig {
            records: 15,
            ..WorkloadConfig::default()
        },
        &mut rng,
    );
    let glsns = cluster.log_records(&user, &records).expect("logs");
    (cluster, records, glsns)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn distributed_executor_matches_whole_record_semantics(
        criteria in arb_criteria(),
        seed in 0u64..1_000,
    ) {
        let (mut cluster, records, glsns) = loaded_cluster(seed);
        let expect: BTreeSet<Glsn> = records
            .iter()
            .zip(&glsns)
            .filter(|(r, _)| {
                let mut keyed = LogRecord::new(Glsn(0));
                for (n, v) in r.iter() {
                    keyed.insert(n.clone(), v.clone());
                }
                criteria.eval(&keyed).unwrap()
            })
            .map(|(_, g)| *g)
            .collect();
        let got: BTreeSet<Glsn> = cluster
            .query_criteria(&criteria)
            .unwrap_or_else(|e| panic!("query {criteria} failed: {e}"))
            .glsns
            .into_iter()
            .collect();
        prop_assert_eq!(got, expect, "criteria {} diverged", criteria);
    }
}
