//! The decisive correctness property of the whole system: for *any*
//! well-typed criteria tree, the distributed confidential executor
//! returns exactly the records that plain whole-record evaluation
//! (the centralized Figure 1 semantics) returns.

use dla_audit::cluster::{ClusterConfig, DlaCluster};
use dla_audit::query::{CmpOp, Criteria, Predicate};
use dla_logstore::fragment::Partition;
use dla_logstore::gen::{generate, WorkloadConfig};
use dla_logstore::model::{AttrValue, Glsn, LogRecord};
use dla_logstore::schema::Schema;
use proptest::prelude::*;
use rand::SeedableRng;
use std::collections::BTreeSet;

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop::sample::select(vec![
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
        CmpOp::Eq,
        CmpOp::Ne,
    ])
}

/// Predicates likely to select non-trivial subsets of the generated
/// workload (values drawn from the generator's ranges).
fn arb_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (arb_op(), 1i64..100).prop_map(|(op, c)| Predicate::with_const(
            "c1",
            op,
            AttrValue::Int(c)
        )),
        (arb_op(), 100i64..100_000).prop_map(|(op, c)| Predicate::with_const(
            "c2",
            op,
            AttrValue::Fixed2(c)
        )),
        (arb_op(), 1u64..6).prop_map(|(op, u)| Predicate::with_const(
            "id",
            op,
            AttrValue::text(&format!("U{u}"))
        )),
        prop::sample::select(vec![CmpOp::Eq, CmpOp::Ne])
            .prop_map(|op| { Predicate::with_const("protocol", op, AttrValue::text("UDP")) }),
        prop::sample::select(vec![CmpOp::Eq, CmpOp::Ne])
            .prop_map(|op| Predicate::with_attr("id", op, "c3")),
    ]
}

fn arb_criteria() -> impl Strategy<Value = Criteria> {
    arb_predicate().prop_map(Criteria::pred).prop_recursive(
        3,  // depth
        12, // nodes
        2,  // per collection
        |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
                inner.prop_map(Criteria::not),
            ]
        },
    )
}

fn loaded_cluster(seed: u64) -> (DlaCluster, Vec<LogRecord>, Vec<Glsn>) {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let mut cluster = DlaCluster::new(
        ClusterConfig::new(4, schema)
            .with_partition(partition)
            .with_seed(seed),
    )
    .expect("cluster builds");
    let user = cluster.register_user("u").expect("capacity");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let records = generate(
        &WorkloadConfig {
            records: 15,
            ..WorkloadConfig::default()
        },
        &mut rng,
    );
    let glsns = cluster.log_records(&user, &records).expect("logs");
    (cluster, records, glsns)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn distributed_executor_matches_whole_record_semantics(
        criteria in arb_criteria(),
        seed in 0u64..1_000,
    ) {
        let (mut cluster, records, glsns) = loaded_cluster(seed);
        let expect: BTreeSet<Glsn> = records
            .iter()
            .zip(&glsns)
            .filter(|(r, _)| {
                let mut keyed = LogRecord::new(Glsn(0));
                for (n, v) in r.iter() {
                    keyed.insert(n.clone(), v.clone());
                }
                criteria.eval(&keyed).unwrap()
            })
            .map(|(_, g)| *g)
            .collect();
        let got: BTreeSet<Glsn> = cluster
            .query_criteria(&criteria)
            .unwrap_or_else(|e| panic!("query {criteria} failed: {e}"))
            .glsns
            .into_iter()
            .collect();
        prop_assert_eq!(got, expect, "criteria {} diverged", criteria);
    }

    /// The concurrent subquery scheduler is an optimisation, not a
    /// semantics change: for any randomized plan it must return the
    /// same glsn set as the legacy serial executor.
    #[test]
    fn concurrent_scheduler_matches_serial_on_random_plans(
        criteria in arb_criteria(),
        seed in 0u64..1_000,
    ) {
        let (mut serial_cluster, _, _) = loaded_cluster(seed);
        let (mut conc_cluster, _, _) = loaded_cluster(seed);

        let normalized = dla_audit::normal::normalize(&criteria);
        let plan = dla_audit::plan::plan(&normalized, serial_cluster.partition())
            .unwrap_or_else(|e| panic!("plan {criteria} failed: {e}"));

        let serial = dla_audit::exec::execute_with_options(
            &mut serial_cluster,
            &plan,
            true,
            dla_audit::exec::ExecMode::Serial,
        )
        .unwrap_or_else(|e| panic!("serial {criteria} failed: {e}"));
        let concurrent = dla_audit::exec::execute_with_options(
            &mut conc_cluster,
            &plan,
            true,
            dla_audit::exec::ExecMode::Concurrent,
        )
        .unwrap_or_else(|e| panic!("concurrent {criteria} failed: {e}"));

        let serial_set: BTreeSet<Glsn> = serial.glsns.iter().copied().collect();
        let concurrent_set: BTreeSet<Glsn> = concurrent.glsns.iter().copied().collect();
        prop_assert_eq!(serial_set, concurrent_set, "criteria {} diverged", criteria);
        prop_assert_eq!(serial.cardinality, concurrent.cardinality);
        // The concurrent run multiplexed each subquery over a fresh
        // session; the serial run stayed on the root session.
        prop_assert_eq!(concurrent.sessions.len(), plan.subqueries.len());
        prop_assert!(serial.sessions.is_empty());
    }
}

#[test]
fn concurrent_execution_never_leaks_plaintext_values() {
    // The seed corpus's leak check, re-run under the concurrent
    // scheduler: capture every payload the network carries while
    // multi-session queries are in flight and scan for a distinctive
    // plaintext. Session multiplexing must not widen the trust
    // boundary — only fingerprints and ciphertexts travel.
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let mut cluster = DlaCluster::new(
        ClusterConfig::new(4, schema)
            .with_partition(partition)
            .with_seed(11)
            .with_payload_capture(),
    )
    .expect("cluster builds");
    let user = cluster.register_user("u").expect("capacity");
    let secret_note = "ULTRA-SECRET-MERGER-MEMO";
    let record = LogRecord::new(Glsn(0))
        .with("time", AttrValue::Time(1_000_000))
        .with("id", AttrValue::text("U1"))
        .with("protocol", AttrValue::text("UDP"))
        .with("tid", AttrValue::text("T1"))
        .with("c1", AttrValue::Int(1))
        .with("c2", AttrValue::Fixed2(100))
        .with("c3", AttrValue::text(secret_note));
    cluster.log_record(&user, &record).expect("log");

    // log_record legitimately ships the fragment to its storing node;
    // the query-phase traffic begins after this mark.
    let logged_until = cluster.net().captured_payloads().len();

    // Multi-subquery queries through the concurrent scheduler (the
    // query_shared path), touching c3's owner node in several ways.
    let _ = cluster.query_shared("id = c3").expect("join query");
    let _ = cluster
        .query_shared("(id = 'U1' OR c1 > 0) AND (protocol = 'UDP' OR c2 < 400.00) AND id != c3")
        .expect("cross query");

    let needle = secret_note.as_bytes();
    let net = cluster.net();
    let captured = net.captured_payloads();
    for (i, (from, to, payload)) in captured.iter().enumerate().skip(logged_until) {
        assert!(
            !payload.windows(needle.len()).any(|w| w == needle),
            "payload #{i} ({from} -> {to}) leaks the plaintext note"
        );
    }
    assert!(
        captured.len() > logged_until,
        "the queries must actually have generated traffic"
    );
}
