//! Chaos equivalence for the epoch-sharded trail: with epoch pruning
//! active (tiny epochs → time-windowed queries touch a strict subset
//! of fragments) the executor must return exactly the same answers as
//! an effectively unsharded cluster (one giant epoch covering the
//! whole trail) and the centralized whole-record reference — over a
//! network that drops and duplicates 5% of messages. A second test
//! drives the epoch-seal records through a journal replay: restore
//! must reproduce the checkpoint chain and keep pruned answers stable.

use dla_audit::cluster::{ClusterConfig, DlaCluster};
use dla_audit::exec::ResilientPolicy;
use dla_audit::query::{CmpOp, Criteria, Predicate};
use dla_logstore::fragment::Partition;
use dla_logstore::gen::{generate, WorkloadConfig};
use dla_logstore::model::{AttrValue, Glsn, LogRecord};
use dla_logstore::schema::Schema;
use proptest::prelude::*;
use rand::SeedableRng;
use std::collections::BTreeSet;

const DROP: f64 = 0.05;
const DUPLICATE: f64 = 0.05;
const RECORDS: usize = 12;
/// Small enough that 12 records span several epochs.
const SHARDED_EPOCH_LEN: u64 = 3;
/// Large enough that every record lands in epoch 0 — pruning is a
/// no-op, i.e. the unsharded baseline.
const UNSHARDED_EPOCH_LEN: u64 = 1 << 40;

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop::sample::select(vec![
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
        CmpOp::Eq,
        CmpOp::Ne,
    ])
}

/// A `time θ const` literal whose constant brackets, splits, or misses
/// the generated timestamp range (start_time + 12 … start_time + 1440)
/// — so pruning windows come out full, partial, and empty.
fn arb_time_predicate() -> impl Strategy<Value = Predicate> {
    let base = WorkloadConfig::default().start_time;
    (arb_op(), 0u64..1500)
        .prop_map(move |(op, dt)| Predicate::with_const("time", op, AttrValue::Time(base + dt)))
}

fn arb_value_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (arb_op(), 1i64..100).prop_map(|(op, c)| Predicate::with_const(
            "c1",
            op,
            AttrValue::Int(c)
        )),
        (arb_op(), 1u64..6).prop_map(|(op, u)| Predicate::with_const(
            "id",
            op,
            AttrValue::text(&format!("U{u}"))
        )),
        prop::sample::select(vec![CmpOp::Eq, CmpOp::Ne]).prop_map(|op| Predicate::with_const(
            "protocol",
            op,
            AttrValue::text("UDP")
        )),
    ]
}

/// Criteria that always carry at least one time literal conjoined at
/// the top level, so the planner derives a bounded window and the
/// epoch-pruned scan path actually activates.
fn arb_windowed_criteria() -> impl Strategy<Value = Criteria> {
    let inner = prop_oneof![
        arb_value_predicate().prop_map(Criteria::pred),
        arb_time_predicate().prop_map(Criteria::pred),
    ]
    .prop_recursive(2, 8, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            inner.prop_map(Criteria::not),
        ]
    });
    (arb_time_predicate(), inner).prop_map(|(t, c)| Criteria::pred(t).and(c))
}

/// Builds a loaded cluster with the given epoch length, then turns the
/// network hostile: messages drop and duplicate with 5% probability.
fn chaotic_cluster(seed: u64, epoch_length: u64) -> (DlaCluster, Vec<LogRecord>, Vec<Glsn>) {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let mut cluster = DlaCluster::new(
        ClusterConfig::new(4, schema)
            .with_partition(partition)
            .with_seed(seed)
            .with_epoch_length(epoch_length),
    )
    .expect("cluster builds");
    let user = cluster.register_user("u").expect("capacity");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let records = generate(
        &WorkloadConfig {
            records: RECORDS,
            ..WorkloadConfig::default()
        },
        &mut rng,
    );
    let glsns = cluster.log_records(&user, &records).expect("logs");
    {
        let mut net = cluster.net_mut();
        let faults = net.faults_mut();
        faults.drop_probability = DROP;
        faults.duplicate_probability = DUPLICATE;
    }
    (cluster, records, glsns)
}

fn centralized_reference(
    criteria: &Criteria,
    records: &[LogRecord],
    glsns: &[Glsn],
) -> BTreeSet<Glsn> {
    records
        .iter()
        .zip(glsns)
        .filter(|(r, _)| {
            let mut keyed = LogRecord::new(Glsn(0));
            for (n, v) in r.iter() {
                keyed.insert(n.clone(), v.clone());
            }
            criteria.eval(&keyed).unwrap()
        })
        .map(|(_, g)| *g)
        .collect()
}

fn resilient_answer(cluster: &mut DlaCluster, criteria: &Criteria, label: &str) -> BTreeSet<Glsn> {
    let normalized = dla_audit::normal::normalize(criteria);
    let outcome =
        dla_audit::exec::execute_resilient(cluster, &normalized, &ResilientPolicy::default())
            .unwrap_or_else(|e| panic!("{label} query {criteria} failed: {e}"));
    outcome.result.glsns.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline property: sharded (epoch-pruned) and unsharded
    /// executions of the same windowed query over independently lossy
    /// networks both return exactly the centralized-reference glsn set.
    #[test]
    fn epoch_pruned_matches_unsharded_under_loss(
        criteria in arb_windowed_criteria(),
        seed in 0u64..1_000,
    ) {
        let (mut sharded, records, glsns) = chaotic_cluster(seed, SHARDED_EPOCH_LEN);
        let (mut unsharded, _, _) = chaotic_cluster(seed, UNSHARDED_EPOCH_LEN);
        // Sanity: the tiny epoch length really shards the trail.
        prop_assert!(sharded.epoch_stats().count() > 1);
        prop_assert_eq!(unsharded.epoch_stats().count(), 1);

        let expect = centralized_reference(&criteria, &records, &glsns);
        let pruned = resilient_answer(&mut sharded, &criteria, "sharded");
        let full = resilient_answer(&mut unsharded, &criteria, "unsharded");
        prop_assert_eq!(&pruned, &full, "sharded vs unsharded diverged on {}", criteria);
        prop_assert_eq!(&pruned, &expect, "sharded diverged from reference on {}", criteria);
    }
}

/// Epoch seals replay through restore: rebuild a journaled sharded
/// cluster, check the checkpoint chain reproduces bit-for-bit, and
/// re-ask a windowed query on the restored trail under the same lossy
/// network — the pruned answer must not move.
#[test]
fn epoch_seals_survive_chaotic_restore() {
    let mut dir = std::env::temp_dir();
    dir.push(format!(
        "dla-epoch-chaos-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let build = || {
        let schema = Schema::paper_example();
        let partition = Partition::paper_example(&schema);
        DlaCluster::new(
            ClusterConfig::new(4, schema)
                .with_partition(partition)
                .with_seed(7)
                .with_epoch_length(SHARDED_EPOCH_LEN)
                .with_journal_dir(&dir),
        )
        .expect("cluster builds")
    };

    let mut cluster = build();
    let user = cluster.register_user("u").expect("capacity");
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let records = generate(
        &WorkloadConfig {
            records: RECORDS,
            ..WorkloadConfig::default()
        },
        &mut rng,
    );
    let glsns = cluster.log_records(&user, &records).expect("logs");

    let base = WorkloadConfig::default().start_time;
    let criteria = Criteria::pred(Predicate::with_const(
        "time",
        CmpOp::Le,
        AttrValue::Time(base + 400),
    ))
    .and(Criteria::pred(Predicate::with_const(
        "protocol",
        CmpOp::Eq,
        AttrValue::text("UDP"),
    )));
    let expect = centralized_reference(&criteria, &records, &glsns);

    let chaos = |c: &mut DlaCluster| {
        let mut net = c.net_mut();
        let faults = net.faults_mut();
        faults.drop_probability = DROP;
        faults.duplicate_probability = DUPLICATE;
    };
    chaos(&mut cluster);
    let before = resilient_answer(&mut cluster, &criteria, "pre-restore");
    assert_eq!(before, expect, "pre-restore answer diverged");
    let chain_before = cluster.checkpoint_chain().clone();
    let sealed_before: Vec<_> = cluster
        .epoch_stats()
        .filter(|s| s.sealed)
        .map(|s| s.epoch)
        .collect();
    assert!(!sealed_before.is_empty(), "tiny epochs must have sealed");
    drop(cluster);

    let mut restored = build();
    assert_eq!(restored.checkpoint_chain(), &chain_before);
    assert!(restored.checkpoint_chain().verify_links());
    for epoch in &sealed_before {
        assert!(
            restored.epoch_stat(*epoch).is_some_and(|s| s.sealed),
            "epoch {epoch:?} lost its seal across restore"
        );
    }
    chaos(&mut restored);
    let after = resilient_answer(&mut restored, &criteria, "post-restore");
    assert_eq!(after, expect, "post-restore answer diverged");
    let _ = std::fs::remove_dir_all(&dir);
}
