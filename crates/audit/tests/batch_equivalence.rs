//! Equivalence guard for the batched/pooled crypto hot path: pushing a
//! ring protocol's element sets through [`PhKey::encrypt_batch`] — with
//! or without the scoped-thread worker pool — must be invisible on the
//! wire and in the answers. Every test drives the same seeded protocol
//! twice, once serial and once pooled, and demands byte-identical
//! transcripts and results, on clean networks and under chaos fault
//! schedules.

use dla_audit::cluster::{ClusterConfig, DlaCluster};
use dla_audit::exec::ResilientPolicy;
use dla_crypto::pohlig_hellman::{BatchMode, CommutativeDomain};
use dla_logstore::fragment::Partition;
use dla_logstore::gen::{generate, WorkloadConfig};
use dla_logstore::model::Glsn;
use dla_logstore::schema::Schema;
use dla_mpc::set_intersection::SsiSession;
use dla_mpc::set_union::UnionSession;
use dla_net::topology::Ring;
use dla_net::{NetConfig, NodeId, Session, SimLink, SimNet};
use rand::rngs::StdRng;
use rand::SeedableRng;

const POOLED: BatchMode = BatchMode::Pooled { threads: 4 };

fn capturing_net(n: usize) -> SimNet {
    let mut cfg = NetConfig::ideal();
    cfg.capture_payloads = true;
    SimNet::new(n, cfg)
}

fn items(names: &[&str]) -> Vec<Vec<u8>> {
    names.iter().map(|s| s.as_bytes().to_vec()).collect()
}

type Transcript = Vec<(NodeId, NodeId, Vec<u8>)>;

fn transcript(net: &SimNet) -> Transcript {
    net.captured_payloads()
        .iter()
        .map(|(from, to, payload)| (*from, *to, payload.to_vec()))
        .collect()
}

/// Serial and pooled `∩_s` runs produce byte-identical wire transcripts
/// (every payload, sender and receiver) and the same revealed items.
#[test]
fn ssi_transcript_is_bit_identical_across_batch_modes() {
    let inputs = vec![
        items(&["c", "d", "e", "q"]),
        items(&["d", "e", "f"]),
        items(&["e", "f", "g", "d"]),
        items(&["e", "d", "zz"]),
    ];
    let run = |batch: BatchMode| {
        let mut net = capturing_net(4);
        let session_id = net.open_session();
        let link = SimLink::new(&mut net);
        let ring = Ring::canonical(4);
        let domain = CommutativeDomain::fixed_256();
        let mut rng = StdRng::seed_from_u64(77);
        let outcome = SsiSession::new(Session::new(&link, session_id), &ring, &domain, NodeId(0))
            .reveal(true)
            .batch(batch)
            .run(&inputs, &mut rng)
            .expect("ssi runs");
        (
            outcome.common_items.expect("reveal requested"),
            outcome.report.messages,
            transcript(&net),
        )
    };
    let (serial_items, serial_msgs, serial_wire) = run(BatchMode::Serial);
    let (pooled_items, pooled_msgs, pooled_wire) = run(POOLED);
    assert_eq!(serial_items, items(&["d", "e"]));
    assert_eq!(serial_items, pooled_items);
    assert_eq!(serial_msgs, pooled_msgs);
    assert_eq!(
        serial_wire, pooled_wire,
        "wire transcripts must match byte for byte"
    );
    assert!(!serial_wire.is_empty());
}

/// The same guarantee for `∪_s`.
#[test]
fn union_transcript_is_bit_identical_across_batch_modes() {
    let inputs = vec![
        items(&["c", "d", "e"]),
        items(&["d", "e", "f"]),
        items(&["e", "f", "g"]),
    ];
    let run = |batch: BatchMode| {
        let mut net = capturing_net(3);
        let session_id = net.open_session();
        let link = SimLink::new(&mut net);
        let ring = Ring::canonical(3);
        let domain = CommutativeDomain::fixed_256();
        let mut rng = StdRng::seed_from_u64(78);
        let outcome = UnionSession::new(Session::new(&link, session_id), &ring, &domain, NodeId(1))
            .batch(batch)
            .run(&inputs, &mut rng)
            .expect("union runs");
        (outcome.items, outcome.report.messages, transcript(&net))
    };
    let (serial_items, serial_msgs, serial_wire) = run(BatchMode::Serial);
    let (pooled_items, pooled_msgs, pooled_wire) = run(POOLED);
    assert_eq!(serial_items, items(&["c", "d", "e", "f", "g"]));
    assert_eq!(serial_items, pooled_items);
    assert_eq!(serial_msgs, pooled_msgs);
    assert_eq!(serial_wire, pooled_wire);
}

fn loaded_cluster(seed: u64, batch: BatchMode, capture: bool) -> (DlaCluster, Vec<Glsn>) {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let mut config = ClusterConfig::new(4, schema)
        .with_partition(partition)
        .with_seed(seed)
        .with_batch_mode(batch);
    if capture {
        config = config.with_payload_capture();
    }
    let mut cluster = DlaCluster::new(config).expect("cluster builds");
    let user = cluster.register_user("u").expect("capacity");
    let mut rng = StdRng::seed_from_u64(seed);
    let records = generate(
        &WorkloadConfig {
            records: 12,
            ..WorkloadConfig::default()
        },
        &mut rng,
    );
    let glsns = cluster.log_records(&user, &records).expect("logs");
    (cluster, glsns)
}

/// Full-query equivalence: two same-seed clusters differing only in
/// batch mode answer identically and put the same bytes on the wire.
#[test]
fn cluster_queries_match_across_batch_modes() {
    let queries = [
        "tid = 'T1100267' and c2 > 100.00",
        "id = c3",
        "(id = 'U1' OR c1 > 0) AND protocol = 'UDP'",
    ];
    let (mut serial_cluster, _) = loaded_cluster(33, BatchMode::Serial, true);
    let (mut pooled_cluster, _) = loaded_cluster(33, POOLED, true);
    for criteria in queries {
        let serial = serial_cluster.query(criteria).expect("serial query");
        let pooled = pooled_cluster.query(criteria).expect("pooled query");
        assert_eq!(serial.glsns, pooled.glsns, "answers diverged on {criteria}");
        assert_eq!(serial.cardinality, pooled.cardinality);
    }
    let serial_net = serial_cluster.net();
    let pooled_net = pooled_cluster.net();
    assert_eq!(
        serial_net.stats().messages_sent,
        pooled_net.stats().messages_sent
    );
    assert_eq!(
        transcript(&serial_net),
        transcript(&pooled_net),
        "query traffic must be byte-identical across batch modes"
    );
}

/// Chaos guard: under a seeded 5% drop + 5% duplicate fault schedule,
/// the resilient executor returns the same answers in both batch modes
/// — and because the transcripts are identical, the two runs hit the
/// very same fault schedule and even agree on total message counts.
#[test]
fn chaos_fault_schedules_cannot_tell_batch_modes_apart() {
    let run = |batch: BatchMode| {
        let (mut cluster, _) = loaded_cluster(91, batch, false);
        {
            let mut net = cluster.net_mut();
            let faults = net.faults_mut();
            faults.drop_probability = 0.05;
            faults.duplicate_probability = 0.05;
        }
        let policy = ResilientPolicy::default();
        let outcome = cluster
            .query_resilient("c1 > 0 and protocol = 'UDP'", &policy)
            .expect("resilient query");
        let messages = cluster.net().stats().messages_sent;
        (outcome.result.glsns, outcome.attempts, messages)
    };
    let (serial_glsns, serial_attempts, serial_msgs) = run(BatchMode::Serial);
    let (pooled_glsns, pooled_attempts, pooled_msgs) = run(POOLED);
    assert!(!serial_glsns.is_empty());
    assert_eq!(serial_glsns, pooled_glsns);
    assert_eq!(serial_attempts, pooled_attempts);
    assert_eq!(serial_msgs, pooled_msgs);
}
