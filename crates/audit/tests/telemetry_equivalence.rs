//! The telemetry off switch, proven end to end: a cluster with **no**
//! recorder installed must be observably identical to an instrumented
//! one — the same query answers, the same message and byte counts, the
//! same virtual elapsed time. Telemetry may watch the system; it must
//! never steer it.
//!
//! Also exercises the cluster-level meta-audit trail: ordinary
//! operation journals deposits/registrations, the trail verifies
//! untampered, and a truncated or reordered presentation fails the
//! accumulator check.

use dla_audit::cluster::{ClusterConfig, DlaCluster};
use dla_audit::meta::MetaAuditTrail;
use dla_logstore::fragment::Partition;
use dla_logstore::gen::paper_table1;
use dla_logstore::model::Glsn;
use dla_logstore::schema::Schema;
use dla_net::latency::LatencyModel;
use dla_net::SimTime;
use dla_telemetry::Recorder;

const QUERIES: &[&str] = &[
    "protocol = 'UDP'",
    "id = 'U1' OR c1 > 80",
    "id != c3",
    "(id = 'U1' OR c1 > 30) AND (protocol = 'TCP' OR c2 < 400.00)",
];

/// Everything externally observable about one query run.
#[derive(Debug, PartialEq)]
struct Observation {
    glsns: Vec<Glsn>,
    cardinality: usize,
    messages: u64,
    bytes: u64,
    elapsed: SimTime,
}

fn loaded(seed: u64) -> DlaCluster {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let mut cluster = DlaCluster::new(
        ClusterConfig::new(4, schema)
            .with_partition(partition)
            .with_seed(seed)
            .with_latency(LatencyModel::lan()),
    )
    .expect("cluster builds");
    let user = cluster.register_user("u").expect("capacity");
    cluster.log_records(&user, &paper_table1()).expect("logs");
    cluster
}

fn run_all(cluster: &mut DlaCluster) -> Vec<Observation> {
    QUERIES
        .iter()
        .map(|q| {
            let r = cluster
                .query(q)
                .unwrap_or_else(|e| panic!("query {q:?} failed: {e}"));
            Observation {
                glsns: r.glsns,
                cardinality: r.cardinality,
                messages: r.messages,
                bytes: r.bytes,
                elapsed: r.elapsed,
            }
        })
        .collect()
}

/// Disabled telemetry changes no answer and adds zero messages.
#[test]
fn uninstrumented_run_is_identical_to_instrumented_run() {
    // Reference: no recorder anywhere near this cluster.
    let mut plain = loaded(77);
    let baseline = run_all(&mut plain);

    // Same seed, same workload, recorder installed for the whole run.
    let mut watched = loaded(77);
    let recorder = Recorder::new();
    let observed = {
        let _install = recorder.install();
        run_all(&mut watched)
    };
    let trace = recorder.take();

    assert_eq!(baseline, observed, "telemetry perturbed the system");

    // Guard against a vacuous pass: the instrumented run really did
    // record a full trace while leaving the observations untouched.
    assert!(!trace.spans.is_empty(), "no spans captured");
    assert!(!trace.scopes.is_empty(), "no cost scopes captured");
    let total = trace.total_cost();
    assert!(total.msgs_sent > 0, "no traffic attributed");
    let baseline_msgs: u64 = baseline.iter().map(|o| o.messages).sum();
    assert_eq!(
        total.msgs_sent, baseline_msgs,
        "attributed traffic disagrees with the meters"
    );
}

/// Ordinary cluster operation populates the meta-audit trail, and the
/// trail's commitments catch truncation and reordering.
#[test]
fn cluster_meta_audit_trail_verifies_and_detects_tampering() {
    let mut cluster = loaded(78);
    run_all(&mut cluster);

    let trail = cluster.meta_audit();
    // register_user + one deposit per Table 1 record.
    assert_eq!(trail.len(), 1 + paper_table1().len());
    assert_eq!(trail.records()[0].action, "register-user");
    assert!(trail.records()[1..].iter().all(|r| r.action == "deposit"));
    trail.verify().expect("untampered trail verifies");

    // Truncated presentation: drop the newest record.
    let err = MetaAuditTrail::verify_presented(
        &trail.records()[..trail.len() - 1],
        trail.head(),
        trail.accumulator(),
        cluster.accumulator_params(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("accumulator mismatch"), "{err}");

    // Reordered presentation, seq fields patched to look consistent.
    let mut swapped = trail.records().to_vec();
    swapped.swap(1, 2);
    let (a, b) = (swapped[1].seq, swapped[2].seq);
    swapped[1].seq = a.min(b);
    swapped[2].seq = a.max(b);
    let err = MetaAuditTrail::verify_presented(
        &swapped,
        trail.head(),
        trail.accumulator(),
        cluster.accumulator_params(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("accumulator mismatch"), "{err}");
}
