//! Chaos equivalence for standing queries: the union of the
//! incremental per-epoch deltas a subscription accumulates must equal
//! a fresh whole-trail query restricted to sealed epochs, which must
//! equal the centralized whole-record reference over the same glsns —
//! with every standing evaluation running over a network that drops
//! and duplicates 5% of its messages. A second test replays a
//! journaled trail through restore and checks that re-registered
//! subscriptions and cached windowed aggregates reproduce the
//! pre-crash answers (restore recomputes partials from surviving
//! fragments, so a lost journal tail can never leave a stale cache).

use dla_audit::aggregate::{windowed_bucket_aggregate, AggregatePath};
use dla_audit::cluster::{ClusterConfig, DlaCluster};
use dla_audit::plan::TimeWindow;
use dla_audit::query::{CmpOp, Criteria, Predicate};
use dla_logstore::fragment::Partition;
use dla_logstore::gen::{generate, WorkloadConfig};
use dla_logstore::model::{AttrValue, Glsn, LogRecord};
use dla_logstore::schema::Schema;
use proptest::prelude::*;
use rand::SeedableRng;
use std::collections::BTreeSet;

const DROP: f64 = 0.05;
const DUPLICATE: f64 = 0.05;
const RECORDS: usize = 14;
/// Small enough that the workload spans several sealed epochs.
const EPOCH_LEN: u64 = 3;

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop::sample::select(vec![
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
        CmpOp::Eq,
        CmpOp::Ne,
    ])
}

/// Predicates whose constants render back into parseable query syntax
/// (standing queries register from source text).
fn arb_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (arb_op(), 1i64..100).prop_map(|(op, c)| Predicate::with_const(
            "c1",
            op,
            AttrValue::Int(c)
        )),
        (arb_op(), 1u64..6).prop_map(|(op, u)| Predicate::with_const(
            "id",
            op,
            AttrValue::text(&format!("U{u}"))
        )),
        prop::sample::select(vec![CmpOp::Eq, CmpOp::Ne]).prop_map(|op| Predicate::with_const(
            "protocol",
            op,
            AttrValue::text("UDP")
        )),
    ]
}

fn arb_criteria() -> impl Strategy<Value = Criteria> {
    arb_predicate()
        .prop_map(Criteria::pred)
        .prop_recursive(2, 8, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
                inner.prop_map(Criteria::not),
            ]
        })
}

/// Builds a loaded epoch-sharded cluster, then turns the network
/// hostile — everything a standing subscription does afterwards
/// (catch-up and seal-driven evaluation alike) crosses the lossy net.
fn chaotic_cluster(seed: u64) -> (DlaCluster, Vec<LogRecord>, Vec<Glsn>) {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let mut cluster = DlaCluster::new(
        ClusterConfig::new(4, schema)
            .with_partition(partition)
            .with_seed(seed)
            .with_epoch_length(EPOCH_LEN),
    )
    .expect("cluster builds");
    let user = cluster.register_user("u").expect("capacity");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let records = generate(
        &WorkloadConfig {
            records: RECORDS,
            ..WorkloadConfig::default()
        },
        &mut rng,
    );
    let glsns = cluster.log_records(&user, &records).expect("logs");
    {
        let mut net = cluster.net_mut();
        let faults = net.faults_mut();
        faults.drop_probability = DROP;
        faults.duplicate_probability = DUPLICATE;
    }
    (cluster, records, glsns)
}

fn centralized_reference(
    criteria: &Criteria,
    records: &[LogRecord],
    glsns: &[Glsn],
) -> BTreeSet<Glsn> {
    records
        .iter()
        .zip(glsns)
        .filter(|(r, _)| {
            let mut keyed = LogRecord::new(Glsn(0));
            for (n, v) in r.iter() {
                keyed.insert(n.clone(), v.clone());
            }
            criteria.eval(&keyed).unwrap()
        })
        .map(|(_, g)| *g)
        .collect()
}

/// The glsns belonging to sealed epochs — the domain a standing
/// subscription has covered so far.
fn sealed_glsns(cluster: &DlaCluster) -> BTreeSet<Glsn> {
    cluster
        .epoch_stats()
        .filter(|s| s.sealed && s.deposits > 0)
        .flat_map(|s| (s.glsn_lo.0..=s.glsn_hi.0).map(Glsn))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline property: over a lossy network, the accumulated
    /// standing deltas equal a fresh shared-path query restricted to
    /// sealed epochs, and both equal the centralized reference.
    #[test]
    fn standing_deltas_match_fresh_query_and_centralized_under_loss(
        criteria in arb_criteria(),
        seed in 0u64..1_000,
    ) {
        let (mut cluster, records, glsns) = chaotic_cluster(seed);
        prop_assert!(
            cluster.epoch_stats().any(|s| s.sealed),
            "tiny epochs must have sealed"
        );
        let sealed = sealed_glsns(&cluster);
        let src = criteria.to_string();

        // Registration catches up over every sealed epoch, one ARQ
        // evaluation per epoch, across the hostile net.
        let id = cluster
            .register_standing(&src)
            .unwrap_or_else(|e| panic!("register {src} failed: {e}"));
        let accumulated: BTreeSet<Glsn> = cluster
            .standing_matches(id)
            .expect("registered query has matches")
            .into_iter()
            .collect();

        // Each delta stays inside its epoch's glsn range, and the
        // evaluated epochs are exactly the sealed ones.
        let deltas = cluster.standing_deltas(id);
        for delta in &deltas {
            let stat = cluster.epoch_stat(delta.epoch).expect("evaluated epoch has stats");
            prop_assert!(stat.sealed);
            for glsn in &delta.glsns {
                prop_assert!(
                    (stat.glsn_lo..=stat.glsn_hi).contains(glsn),
                    "delta glsn {glsn:?} escaped epoch {:?}", delta.epoch
                );
            }
        }
        let evaluated: BTreeSet<_> = deltas.iter().map(|d| d.epoch).collect();
        let expected_epochs: BTreeSet<_> = cluster
            .epoch_stats()
            .filter(|s| s.sealed)
            .map(|s| s.epoch)
            .collect();
        prop_assert_eq!(evaluated, expected_epochs, "criteria {}", &src);

        // Fresh shared-path answer, restricted to sealed epochs.
        let fresh: BTreeSet<Glsn> = cluster
            .query_shared(&src)
            .unwrap_or_else(|e| panic!("fresh query {src} failed: {e}"))
            .glsns
            .into_iter()
            .filter(|g| sealed.contains(g))
            .collect();
        // Centralized whole-record reference, same restriction.
        let reference: BTreeSet<Glsn> = centralized_reference(&criteria, &records, &glsns)
            .into_iter()
            .filter(|g| sealed.contains(g))
            .collect();

        prop_assert_eq!(&accumulated, &fresh, "deltas vs fresh diverged on {}", &src);
        prop_assert_eq!(&accumulated, &reference, "deltas vs reference diverged on {}", &src);
    }
}

/// Seal-driven delivery: subscribe first, deposit afterwards, and
/// every sealed epoch pushes its delta with no poll in between — the
/// late subscriber converges on the same answer through catch-up.
#[test]
fn seals_push_deltas_incrementally_and_late_subscribers_converge() {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let mut cluster = DlaCluster::new(
        ClusterConfig::new(4, schema)
            .with_partition(partition)
            .with_seed(17)
            .with_epoch_length(EPOCH_LEN),
    )
    .expect("cluster builds");
    let user = cluster.register_user("u").expect("capacity");
    let early = cluster
        .register_standing("protocol = 'UDP'")
        .expect("registers");
    assert!(
        cluster.standing_deltas(early).is_empty(),
        "nothing sealed yet"
    );

    let mut rng = rand::rngs::StdRng::seed_from_u64(17);
    let records = generate(
        &WorkloadConfig {
            records: RECORDS,
            ..WorkloadConfig::default()
        },
        &mut rng,
    );
    let mut sealed_seen = 0usize;
    for record in &records {
        cluster
            .log_records(&user, std::slice::from_ref(record))
            .expect("logs");
        let sealed_now = cluster.epoch_stats().filter(|s| s.sealed).count();
        let deltas = cluster.standing_deltas(early);
        assert_eq!(
            deltas.len(),
            sealed_now - sealed_seen,
            "each seal pushes exactly one delta, unpolled"
        );
        sealed_seen = sealed_now;
    }
    assert!(sealed_seen > 0, "the workload must seal epochs");

    let late = cluster
        .register_standing("protocol = 'UDP'")
        .expect("registers");
    assert_eq!(
        cluster.standing_matches(early),
        cluster.standing_matches(late),
        "catch-up must converge with seal-driven delivery"
    );
}

/// Crash-tail recovery: a journaled trail restores with the same
/// checkpoint chain (aggregate commitments included), re-registered
/// subscriptions rebuild the same accumulated answer, and cached
/// windowed aggregates still agree with a fragment rescan — because
/// restore recomputes partials from surviving fragments instead of
/// trusting the journaled copies.
#[test]
fn restore_rebuilds_standing_answers_and_cached_aggregates() {
    let mut dir = std::env::temp_dir();
    dir.push(format!(
        "dla-standing-chaos-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let build = || {
        let schema = Schema::paper_example();
        let partition = Partition::paper_example(&schema);
        DlaCluster::new(
            ClusterConfig::new(4, schema)
                .with_partition(partition)
                .with_seed(23)
                .with_epoch_length(EPOCH_LEN)
                .with_journal_dir(&dir),
        )
        .expect("cluster builds")
    };

    let mut cluster = build();
    let user = cluster.register_user("u").expect("capacity");
    let mut rng = rand::rngs::StdRng::seed_from_u64(23);
    let records = generate(
        &WorkloadConfig {
            records: RECORDS,
            ..WorkloadConfig::default()
        },
        &mut rng,
    );
    cluster.log_records(&user, &records).expect("logs");

    let id = cluster
        .register_standing("protocol = 'UDP'")
        .expect("registers");
    let matches_before = cluster.standing_matches(id).expect("matches");
    let chain_before = cluster.checkpoint_chain().clone();
    let cached_before = windowed_bucket_aggregate(
        &cluster,
        &"protocol".into(),
        "UDP",
        Some(&"c1".into()),
        &TimeWindow::unbounded(),
        AggregatePath::Cached,
    )
    .expect("cached aggregate");
    assert!(cached_before.epochs_cached > 0, "seals must cache partials");
    drop(cluster);

    let restored = build();
    // Restore re-seals with recomputed partials: the aggregate
    // commitments inside the links must reproduce bit-for-bit.
    assert_eq!(restored.checkpoint_chain(), &chain_before);
    assert!(restored.checkpoint_chain().verify_links());
    // Cached and rescan answers agree on the restored trail, and match
    // the pre-crash cached answer.
    let cached_after = windowed_bucket_aggregate(
        &restored,
        &"protocol".into(),
        "UDP",
        Some(&"c1".into()),
        &TimeWindow::unbounded(),
        AggregatePath::Cached,
    )
    .expect("cached aggregate after restore");
    let rescan_after = windowed_bucket_aggregate(
        &restored,
        &"protocol".into(),
        "UDP",
        Some(&"c1".into()),
        &TimeWindow::unbounded(),
        AggregatePath::Rescan,
    )
    .expect("rescan aggregate after restore");
    assert_eq!(
        (cached_after.count, cached_after.sum),
        (rescan_after.count, rescan_after.sum),
        "stale partials would split the paths here"
    );
    assert_eq!(
        (cached_after.count, cached_after.sum),
        (cached_before.count, cached_before.sum)
    );

    // Standing registrations are in-memory by design: re-register and
    // let catch-up rebuild the accumulated answer over the restored
    // sealed epochs.
    let mut restored = restored;
    let re_id = restored
        .register_standing("protocol = 'UDP'")
        .expect("re-registers");
    assert_eq!(
        restored.standing_matches(re_id).expect("matches"),
        matches_before,
        "catch-up after restore must rebuild the pre-crash answer"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
