//! Stress test for the concurrent subquery scheduler: many auditors
//! issue many queries against a **shared** cluster simultaneously.
//! Every result must match the serial single-auditor reference, and
//! the per-session traffic accounting must prove that protocol
//! sessions really were in flight at the same time.

use dla_audit::cluster::{ClusterConfig, DlaCluster};
use dla_logstore::fragment::Partition;
use dla_logstore::gen::paper_table1;
use dla_logstore::model::Glsn;
use dla_logstore::schema::Schema;
use dla_net::latency::LatencyModel;
use std::collections::BTreeSet;

/// A mix of paper-style queries: purely local, cross-node
/// disjunctions, attribute-attribute joins, and multi-clause
/// conjunctions (≥ 2 cross subqueries each in the last two).
const QUERIES: &[&str] = &[
    "protocol = 'UDP'",
    "id = 'U1' OR c1 > 80",
    "id != c3",
    "(id = 'U1' OR c1 > 30) AND (protocol = 'TCP' OR c2 < 400.00)",
    "(c1 > 10 OR c2 > 100.00) AND (id = 'U2' OR protocol = 'UDP') AND id != c3",
];

/// Plans and runs `q` with the legacy serial executor.
fn serial_query(cluster: &mut DlaCluster, q: &str) -> BTreeSet<Glsn> {
    let parsed = dla_audit::parser::parse(q, cluster.schema()).expect("parse");
    let normalized = dla_audit::normal::normalize(&parsed);
    let plan = dla_audit::plan::plan(&normalized, cluster.partition()).expect("plan");
    dla_audit::exec::execute_with_options(cluster, &plan, true, dla_audit::exec::ExecMode::Serial)
        .unwrap_or_else(|e| panic!("serial query {q:?} failed: {e}"))
        .glsns
        .into_iter()
        .collect()
}

fn loaded(seed: u64) -> DlaCluster {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let mut cluster = DlaCluster::new(
        ClusterConfig::new(4, schema)
            .with_partition(partition)
            .with_seed(seed)
            .with_latency(LatencyModel::lan()),
    )
    .expect("cluster builds");
    let user = cluster.register_user("u").expect("capacity");
    cluster.log_records(&user, &paper_table1()).expect("logs");
    cluster
}

#[test]
fn many_auditors_many_queries_match_serial_reference() {
    const AUDITORS: usize = 4;
    const ROUNDS: usize = 3;

    // Serial single-auditor reference, on an identically seeded and
    // loaded cluster.
    let mut reference = loaded(33);
    let expected: Vec<BTreeSet<Glsn>> = QUERIES
        .iter()
        .map(|q| serial_query(&mut reference, q))
        .collect();

    // M auditor threads, each issuing N queries against the shared
    // cluster — every call multiplexes its subqueries over fresh
    // transport sessions.
    let cluster = loaded(33);
    let outcomes = crossbeam::scope(|s| {
        let handles: Vec<_> = (0..AUDITORS)
            .map(|a| {
                let cluster = &cluster;
                s.spawn(move || {
                    let mut mine = Vec::with_capacity(ROUNDS);
                    for round in 0..ROUNDS {
                        let qi = (a + round * 2) % QUERIES.len();
                        let result = cluster
                            .query_shared(QUERIES[qi])
                            .unwrap_or_else(|e| panic!("shared query {qi} failed: {e}"));
                        let got: BTreeSet<Glsn> = result.glsns.into_iter().collect();
                        mine.push((qi, got, result.sessions));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("auditor thread panicked"))
            .collect::<Vec<_>>()
    })
    .expect("auditor scope");

    assert_eq!(outcomes.len(), AUDITORS * ROUNDS);
    let mut all_sessions = BTreeSet::new();
    for (qi, got, sessions) in outcomes {
        assert_eq!(
            got, expected[qi],
            "query {:?} diverged under concurrent auditors",
            QUERIES[qi]
        );
        for sid in sessions {
            assert!(
                all_sessions.insert(sid),
                "session {sid:?} reused across queries"
            );
        }
    }

    // Per-session accounting: the multi-clause queries run their cross
    // subqueries in parallel sessions, so at least two sessions must
    // overlap in virtual time; the event-counter variant must see
    // interleaving too.
    let net = cluster.net();
    let stats = net.stats();
    assert!(
        stats.max_concurrent_sessions() >= 2,
        "expected overlapping sessions, got {}",
        stats.max_concurrent_sessions()
    );
    assert!(stats.max_interleaved_sessions() >= 2);
    // Every query burned at least one fresh session.
    assert!(all_sessions.len() >= AUDITORS * ROUNDS);
}

#[test]
fn shared_queries_from_one_thread_also_agree() {
    // query_shared on &self must agree with &mut self query() even
    // without any thread-level parallelism (pure session multiplexing).
    let mut reference = loaded(7);
    let cluster = loaded(7);
    for q in QUERIES {
        let want = serial_query(&mut reference, q);
        let got: BTreeSet<Glsn> = cluster.query_shared(q).unwrap().glsns.into_iter().collect();
        assert_eq!(got, want, "query {q:?} diverged");
    }
}
