//! Chaos equivalence for the hierarchical federation: a 4-ring
//! federation, a 1-ring federation and the centralized whole-record
//! reference must return exactly the same answer — identified by
//! global deposit index, the topology-independent record identity —
//! for arbitrary criteria, over networks that drop and duplicate 5%
//! of messages inside every sub-ring. A second test checks the root
//! accumulator cross-check still closes after chaotic queries: lossy
//! transports may cost retransmissions, but they must never move a
//! sealed checkpoint.

use dla_audit::federation::{FederatedCluster, FederationConfig};
use dla_audit::query::{CmpOp, Criteria, Predicate};
use dla_logstore::fragment::Partition;
use dla_logstore::gen::{generate, WorkloadConfig};
use dla_logstore::model::{AttrValue, Glsn, LogRecord};
use dla_logstore::schema::Schema;
use proptest::prelude::*;
use rand::SeedableRng;

const DROP: f64 = 0.05;
const DUPLICATE: f64 = 0.05;
const RECORDS: usize = 18;
const USERS: usize = 8;
/// Small enough that busy rings seal epochs mid-workload.
const EPOCH_LEN: u64 = 3;

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop::sample::select(vec![
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
        CmpOp::Eq,
        CmpOp::Ne,
    ])
}

/// Predicates over the attributes whose constants render back into
/// parseable query syntax (`Display` for `Time` is the paper's civil
/// format, which the parser does not take — so no time literals here;
/// the time-window path has its own chaos suite in `epoch_chaos`).
/// Equality literals on `id` matter most: they are what the federated
/// router pins clauses with.
fn arb_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (arb_op(), 1i64..100).prop_map(|(op, c)| Predicate::with_const(
            "c1",
            op,
            AttrValue::Int(c)
        )),
        (arb_op(), 1u64..=USERS as u64).prop_map(|(op, u)| Predicate::with_const(
            "id",
            op,
            AttrValue::text(&format!("U{u}"))
        )),
        prop::sample::select(vec![CmpOp::Eq, CmpOp::Ne]).prop_map(|op| Predicate::with_const(
            "protocol",
            op,
            AttrValue::text("UDP")
        )),
    ]
}

fn arb_criteria() -> impl Strategy<Value = Criteria> {
    arb_predicate()
        .prop_map(Criteria::pred)
        .prop_recursive(2, 8, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
                inner.prop_map(Criteria::not),
            ]
        })
}

/// The deterministic workload both topologies deposit, in the same
/// global order — so deposit indices agree ring count notwithstanding.
fn workload(seed: u64) -> Vec<LogRecord> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    generate(
        &WorkloadConfig {
            records: RECORDS,
            users: USERS,
            ..WorkloadConfig::default()
        },
        &mut rng,
    )
}

/// Builds an `rings`-ring federation loaded with `records`, then turns
/// every sub-ring's network hostile: messages drop and duplicate with
/// 5% probability.
fn chaotic_federation(rings: usize, seed: u64, records: &[LogRecord]) -> FederatedCluster {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let mut fed = FederatedCluster::new(
        FederationConfig::new(rings, 4, schema)
            .with_partition(partition)
            .with_seed(seed)
            .with_epoch_length(EPOCH_LEN)
            .with_max_users(USERS),
    )
    .expect("federation builds");
    for u in 1..=USERS {
        fed.register_user(&format!("U{u}")).expect("capacity");
    }
    for record in records {
        let Some(AttrValue::Text(id)) = record.get(&"id".into()) else {
            unreachable!("generated records carry an id");
        };
        fed.log_records(id, std::slice::from_ref(record))
            .expect("logs");
    }
    for ring in 0..fed.num_rings() {
        let cluster = fed.ring_mut(ring);
        let mut net = cluster.net_mut();
        let faults = net.faults_mut();
        faults.drop_probability = DROP;
        faults.duplicate_probability = DUPLICATE;
    }
    fed
}

/// Global deposit indices of the records `criteria` matches — the
/// centralized reference every topology must reproduce.
fn centralized_reference(criteria: &Criteria, records: &[LogRecord]) -> Vec<u64> {
    records
        .iter()
        .enumerate()
        .filter(|(_, r)| {
            let mut keyed = LogRecord::new(Glsn(0));
            for (n, v) in r.iter() {
                keyed.insert(n.clone(), v.clone());
            }
            criteria.eval(&keyed).unwrap()
        })
        .map(|(i, _)| i as u64)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline property: a 4-ring federation and a 1-ring
    /// federation, each over independently lossy in-ring networks,
    /// both answer with exactly the centralized reference's record
    /// set — byte-identical answer digests included.
    #[test]
    fn federated_matches_single_ring_and_centralized_under_loss(
        criteria in arb_criteria(),
        seed in 0u64..1_000,
    ) {
        let records = workload(seed);
        let mut one = chaotic_federation(1, seed, &records);
        let mut four = chaotic_federation(4, seed ^ 0x00f4_c4a0, &records);
        let src = criteria.to_string();
        let policy = one.ring(0).resilient_policy();

        let a = one
            .query_resilient(&src, &policy)
            .unwrap_or_else(|e| panic!("1-ring query {src} failed: {e}"));
        let b = four
            .query_resilient(&src, &policy)
            .unwrap_or_else(|e| panic!("4-ring query {src} failed: {e}"));
        let expect = centralized_reference(&criteria, &records);

        prop_assert_eq!(&a.records, &b.records, "topologies diverged on {}", src);
        prop_assert_eq!(a.answer_digest(), b.answer_digest(), "digests diverged on {}", src);
        prop_assert_eq!(&a.records, &expect, "federation diverged from reference on {}", src);
        prop_assert_eq!(a.cardinality, expect.len());
    }
}

/// Lossy networks must never move sealed history: after chaotic
/// resilient queries, checkpoint publication and the root accumulator
/// cross-check still close, and both federations publish the same
/// total number of sealed epochs (the workload, not the noise,
/// decides what seals).
#[test]
fn root_cross_check_closes_after_chaotic_queries() {
    let records = workload(424_242);
    let mut one = chaotic_federation(1, 9, &records);
    let mut four = chaotic_federation(4, 10, &records);
    let policy = one.ring(0).resilient_policy();
    for fed in [&mut one, &mut four] {
        fed.query_resilient("protocol = 'UDP' OR c1 > 10", &policy)
            .expect("chaotic query completes");
        // The seal path already pushed every sealed checkpoint to the
        // root; the catch-up sweep must find nothing left over.
        let swept = fed.publish_checkpoints().expect("publication completes");
        assert_eq!(
            swept, 0,
            "push-at-seal left {swept} checkpoints for catch-up"
        );
        assert!(!fed.published().is_empty(), "tiny epochs must have sealed");
        assert!(fed.check_root().ok(), "root cross-check must close");
        assert!(fed.verify_presented(fed.published()));
    }
    let sealed = |fed: &FederatedCluster| {
        fed.published()
            .iter()
            .map(|p| p.checkpoint.items)
            .sum::<u64>()
    };
    assert_eq!(sealed(&one), sealed(&four), "sealed item totals diverged");
}
