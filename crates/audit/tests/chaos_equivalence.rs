//! Chaos re-run of the executor-equivalence property: with the
//! reliable (ARQ) transport layer on, a network that randomly drops
//! and duplicates up to 5% of messages must not change a single query
//! answer — serial, concurrent and centralized whole-record semantics
//! all agree, exactly as on a clean network.

use dla_audit::cluster::{ClusterConfig, DlaCluster};
use dla_audit::exec::{ExecMode, ResilientPolicy};
use dla_audit::query::{CmpOp, Criteria, Predicate};
use dla_logstore::fragment::Partition;
use dla_logstore::gen::{generate, WorkloadConfig};
use dla_logstore::model::{AttrValue, Glsn, LogRecord};
use dla_logstore::schema::Schema;
use dla_net::Reliable;
use proptest::prelude::*;
use rand::SeedableRng;
use std::collections::BTreeSet;

const DROP: f64 = 0.05;
const DUPLICATE: f64 = 0.05;

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop::sample::select(vec![
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
        CmpOp::Eq,
        CmpOp::Ne,
    ])
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (arb_op(), 1i64..100).prop_map(|(op, c)| Predicate::with_const(
            "c1",
            op,
            AttrValue::Int(c)
        )),
        (arb_op(), 100i64..100_000).prop_map(|(op, c)| Predicate::with_const(
            "c2",
            op,
            AttrValue::Fixed2(c)
        )),
        (arb_op(), 1u64..6).prop_map(|(op, u)| Predicate::with_const(
            "id",
            op,
            AttrValue::text(&format!("U{u}"))
        )),
        prop::sample::select(vec![CmpOp::Eq, CmpOp::Ne])
            .prop_map(|op| { Predicate::with_const("protocol", op, AttrValue::text("UDP")) }),
        prop::sample::select(vec![CmpOp::Eq, CmpOp::Ne])
            .prop_map(|op| Predicate::with_attr("id", op, "c3")),
    ]
}

fn arb_criteria() -> impl Strategy<Value = Criteria> {
    arb_predicate().prop_map(Criteria::pred).prop_recursive(
        3,  // depth
        12, // nodes
        2,  // per collection
        |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
                inner.prop_map(Criteria::not),
            ]
        },
    )
}

/// Builds a loaded cluster, then turns the network hostile: messages
/// drop and duplicate with 5% probability each from here on.
fn chaotic_cluster(seed: u64) -> (DlaCluster, Vec<LogRecord>, Vec<Glsn>) {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let mut cluster = DlaCluster::new(
        ClusterConfig::new(4, schema)
            .with_partition(partition)
            .with_seed(seed),
    )
    .expect("cluster builds");
    let user = cluster.register_user("u").expect("capacity");
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let records = generate(
        &WorkloadConfig {
            records: 12,
            ..WorkloadConfig::default()
        },
        &mut rng,
    );
    let glsns = cluster.log_records(&user, &records).expect("logs");
    {
        let mut net = cluster.net_mut();
        let faults = net.faults_mut();
        faults.drop_probability = DROP;
        faults.duplicate_probability = DUPLICATE;
    }
    (cluster, records, glsns)
}

fn centralized_reference(
    criteria: &Criteria,
    records: &[LogRecord],
    glsns: &[Glsn],
) -> BTreeSet<Glsn> {
    records
        .iter()
        .zip(glsns)
        .filter(|(r, _)| {
            let mut keyed = LogRecord::new(Glsn(0));
            for (n, v) in r.iter() {
                keyed.insert(n.clone(), v.clone());
            }
            criteria.eval(&keyed).unwrap()
        })
        .map(|(_, g)| *g)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The headline chaos property: the resilient executor over a lossy
    /// network returns exactly the centralized-reference glsn set.
    #[test]
    fn lossy_executor_matches_whole_record_semantics(
        criteria in arb_criteria(),
        seed in 0u64..1_000,
    ) {
        let (mut cluster, records, glsns) = chaotic_cluster(seed);
        let expect = centralized_reference(&criteria, &records, &glsns);
        let policy = ResilientPolicy::default();
        let normalized = dla_audit::normal::normalize(&criteria);
        let outcome = dla_audit::exec::execute_resilient(&mut cluster, &normalized, &policy)
            .unwrap_or_else(|e| panic!("resilient query {criteria} failed: {e}"));
        let got: BTreeSet<Glsn> = outcome.result.glsns.into_iter().collect();
        prop_assert_eq!(got, expect, "criteria {} diverged under loss", criteria);
    }

    /// Scheduling equivalence survives chaos: serial and concurrent
    /// runs of the same plan over independently lossy networks agree.
    #[test]
    fn serial_and_concurrent_agree_under_loss(
        criteria in arb_criteria(),
        seed in 0u64..1_000,
    ) {
        let (serial_cluster, records, glsns) = chaotic_cluster(seed);
        let (conc_cluster, _, _) = chaotic_cluster(seed);
        let expect = centralized_reference(&criteria, &records, &glsns);

        let normalized = dla_audit::normal::normalize(&criteria);
        let plan = dla_audit::plan::plan(&normalized, serial_cluster.partition())
            .unwrap_or_else(|e| panic!("plan {criteria} failed: {e}"));

        let serial_reliable = Reliable::new(serial_cluster.shared_net());
        let serial = dla_audit::exec::execute_on(
            &serial_cluster,
            &serial_reliable,
            &plan,
            true,
            ExecMode::Serial,
            seed ^ 0x5EA1,
        )
        .unwrap_or_else(|e| panic!("serial {criteria} failed: {e}"));

        let conc_reliable = Reliable::new(conc_cluster.shared_net());
        let concurrent = dla_audit::exec::execute_on(
            &conc_cluster,
            &conc_reliable,
            &plan,
            true,
            ExecMode::Concurrent,
            seed ^ 0xC0C0,
        )
        .unwrap_or_else(|e| panic!("concurrent {criteria} failed: {e}"));

        let serial_set: BTreeSet<Glsn> = serial.glsns.iter().copied().collect();
        let concurrent_set: BTreeSet<Glsn> = concurrent.glsns.iter().copied().collect();
        prop_assert_eq!(&serial_set, &expect, "serial diverged on {}", criteria);
        prop_assert_eq!(&concurrent_set, &expect, "concurrent diverged on {}", criteria);
        prop_assert_eq!(serial.cardinality, concurrent.cardinality);
    }
}
