//! Anonymous-yet-accountable DLA membership: the undeniable evidence
//! chain (paper §4.2, Figures 6–7).
//!
//! Joining the DLA cluster takes a three-phase handshake between the
//! current chain tail `P_y` and the candidate `P_x`:
//!
//! 1. **PP** — `P_y` sends a policy proposal;
//! 2. **SC** — `P_x` answers with a service commitment;
//! 3. **RE** — both *spend* their one-time credential tokens on the
//!    new evidence piece and sign it with their pseudonym keys. The
//!    piece binds `(PP, SC)` into the chain (the "r-binding" of the
//!    paper's reference \[30\]),
//!    and the invite authority passes to `P_x`.
//!
//! `P_y` *can* physically invite again — nothing stops it — but doing
//! so spends its token a second time on a different context, and
//! [`EvidenceChain::detect_double_use`] then recovers its true identity
//! from the two responses ("Doing so will subject P_y to exposure of
//! its true identity and its misconduct").

use crate::AuditError;
use dla_bigint::Ubig;
use dla_crypto::commitment::PedersenParams;
use dla_crypto::evidence::{
    recover_identity, spend_challenge, verify_spend, CredentialAuthority, SpendProof, Token,
    TokenSecret,
};
use dla_crypto::schnorr::{self, SchnorrGroup, SchnorrPublicKey, Signature};
use dla_crypto::sha256::{self, Digest};
use rand::Rng;
use std::collections::BTreeMap;
use std::fmt;

/// The credential authority plus an identity registry (the CA knows
/// who enrolled; peers only ever see pseudonyms).
pub struct MembershipAuthority {
    params: PedersenParams,
    ca: CredentialAuthority,
    registry: BTreeMap<String, String>, // identity-scalar hex → name
}

impl fmt::Debug for MembershipAuthority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MembershipAuthority({} enrolled)", self.registry.len())
    }
}

/// A node's credential: two one-time tokens plus secrets. The **join
/// token** is spent when the node becomes a member; the **invite
/// token** is spent when it exercises its one invite. Spending either
/// twice exposes the holder's identity.
pub struct NodeCredential {
    /// The enrolled (true) name — known to the node and the CA only.
    pub name: String,
    join: TokenSecret,
    invite: TokenSecret,
}

impl fmt::Debug for NodeCredential {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NodeCredential({}, join serial {}, invite serial {})",
            self.name, self.join.token.serial, self.invite.token.serial
        )
    }
}

impl NodeCredential {
    /// The public join token.
    #[must_use]
    pub fn join_token(&self) -> &Token {
        &self.join.token
    }

    /// The public invite token.
    #[must_use]
    pub fn invite_token(&self) -> &Token {
        &self.invite.token
    }
}

impl MembershipAuthority {
    /// Creates an authority over the given group.
    pub fn new<R: Rng + ?Sized>(group: &SchnorrGroup, rng: &mut R) -> Self {
        let params = PedersenParams::derive(group);
        let ca = CredentialAuthority::new(&params, rng);
        MembershipAuthority {
            params,
            ca,
            registry: BTreeMap::new(),
        }
    }

    /// Enrolls a node: derives its identity scalar from its true name
    /// and issues a one-time logging/auditing token (Fig. 7's grant).
    pub fn enroll<R: Rng + ?Sized>(&mut self, name: &str, rng: &mut R) -> NodeCredential {
        let identity = self.identity_scalar(name);
        self.registry.insert(identity.to_hex(), name.to_owned());
        let join = self.ca.issue(&identity, rng);
        let invite = self.ca.issue(&identity, rng);
        NodeCredential {
            name: name.to_owned(),
            join,
            invite,
        }
    }

    /// The deterministic identity scalar for a name.
    #[must_use]
    pub fn identity_scalar(&self, name: &str) -> Ubig {
        self.params
            .group()
            .challenge(&[b"dla-identity", name.as_bytes()])
    }

    /// Resolves an exposed identity scalar back to the enrolled name.
    #[must_use]
    pub fn identify(&self, identity: &Ubig) -> Option<&str> {
        self.registry.get(&identity.to_hex()).map(String::as_str)
    }

    /// The commitment parameters tokens verify against.
    #[must_use]
    pub fn params(&self) -> &PedersenParams {
        &self.params
    }

    /// The CA verification key.
    #[must_use]
    pub fn ca_public(&self) -> &SchnorrPublicKey {
        self.ca.public()
    }
}

/// One party's contribution to an evidence piece.
#[derive(Debug, Clone)]
pub struct Participation {
    /// The party's (pseudonymous) token.
    pub token: Token,
    /// The token spend bound to this piece.
    pub spend: SpendProof,
    /// Pseudonym signature over the piece content.
    pub signature: Signature,
}

/// One link of the evidence chain (Fig. 6's `e_i`).
#[derive(Debug, Clone)]
pub struct EvidencePiece {
    /// Position in the chain (0 = genesis).
    pub seq: u64,
    /// Digest of the previous piece (zeros for genesis).
    pub prev_digest: Digest,
    /// The inviter's policy proposal (PP).
    pub policy_proposal: String,
    /// The joiner's service commitment (SC).
    pub service_commitment: String,
    /// The inviter's participation; `None` only for the genesis piece.
    pub inviter: Option<Participation>,
    /// The joiner's participation.
    pub joiner: Participation,
    /// This piece's digest (chains into the next piece).
    pub digest: Digest,
}

impl EvidencePiece {
    /// The byte context both parties spend and sign over.
    fn context(
        seq: u64,
        prev_digest: &Digest,
        pp: &str,
        sc: &str,
        joiner_pseudonym: &SchnorrPublicKey,
    ) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(b"dla-evidence");
        out.extend_from_slice(&seq.to_be_bytes());
        out.extend_from_slice(prev_digest);
        out.extend_from_slice(&(pp.len() as u64).to_be_bytes());
        out.extend_from_slice(pp.as_bytes());
        out.extend_from_slice(&(sc.len() as u64).to_be_bytes());
        out.extend_from_slice(sc.as_bytes());
        out.extend_from_slice(&joiner_pseudonym.to_bytes());
        out
    }
}

/// The cluster's membership evidence chain.
pub struct EvidenceChain {
    params: PedersenParams,
    ca_public: SchnorrPublicKey,
    pieces: Vec<EvidencePiece>,
}

impl fmt::Debug for EvidenceChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EvidenceChain({} pieces)", self.pieces.len())
    }
}

/// An identity exposed by double token use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExposedIdentity {
    /// Serial of the doubly-spent token.
    pub serial: u64,
    /// The recovered identity scalar.
    pub identity: Ubig,
}

impl EvidenceChain {
    /// Founds the chain: the founder spends its token on the genesis
    /// piece (Fig. 6's `e₁`).
    pub fn found<R: Rng + ?Sized>(
        authority: &MembershipAuthority,
        founder: &NodeCredential,
        charter: &str,
        rng: &mut R,
    ) -> Self {
        let prev = [0u8; 32];
        let context = EvidencePiece::context(0, &prev, charter, "", &founder.join.token.pseudonym);
        let spend = founder.join.spend(&authority.params, &context);
        let signature = founder.join.pseudonym_key.sign(&context, rng);
        let digest = sha256::digest_parts(&[&context, &spend_bytes(&spend)]);
        EvidenceChain {
            params: authority.params.clone(),
            ca_public: authority.ca_public().clone(),
            pieces: vec![EvidencePiece {
                seq: 0,
                prev_digest: prev,
                policy_proposal: charter.to_owned(),
                service_commitment: String::new(),
                inviter: None,
                joiner: Participation {
                    token: founder.join.token.clone(),
                    spend,
                    signature,
                },
                digest,
            }],
        }
    }

    /// The pieces, genesis first.
    #[must_use]
    pub fn pieces(&self) -> &[EvidencePiece] {
        &self.pieces
    }

    /// **Adversarial test hook**: mutable piece access, modelling a
    /// party rewriting recorded evidence after the fact.
    pub fn pieces_mut(&mut self) -> &mut Vec<EvidencePiece> {
        &mut self.pieces
    }

    /// Number of members admitted (including the founder).
    #[must_use]
    pub fn len(&self) -> usize {
        self.pieces.len()
    }

    /// Whether the chain is empty (never; chains begin at genesis).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pieces.is_empty()
    }

    /// The token serial currently authorized to invite (the tail
    /// joiner's).
    #[must_use]
    pub fn authorized_inviter(&self) -> u64 {
        self.pieces
            .last()
            .expect("chain begins at genesis")
            .joiner
            .token
            .serial
    }

    /// Runs the PP/SC/RE handshake appending a new piece. The inviter
    /// *should* be the current tail; an out-of-turn inviter is not
    /// rejected here (the deterrent is identity exposure, not
    /// prevention — see [`Self::detect_double_use`]).
    pub fn invite<R: Rng + ?Sized>(
        &mut self,
        inviter: &NodeCredential,
        joiner: &NodeCredential,
        policy_proposal: &str,
        service_commitment: &str,
        rng: &mut R,
    ) -> &EvidencePiece {
        let seq = self.pieces.len() as u64;
        let prev_digest = self.pieces.last().expect("genesis exists").digest;
        // Phase 1 (PP) and phase 2 (SC) fix the negotiated terms; phase
        // 3 (RE) binds them into the piece both parties spend over.
        let context = EvidencePiece::context(
            seq,
            &prev_digest,
            policy_proposal,
            service_commitment,
            &joiner.join.token.pseudonym,
        );
        let inviter_spend = inviter.invite.spend(&self.params, &context);
        let joiner_spend = joiner.join.spend(&self.params, &context);
        let inviter_sig = inviter.invite.pseudonym_key.sign(&context, rng);
        let joiner_sig = joiner.join.pseudonym_key.sign(&context, rng);
        let digest = sha256::digest_parts(&[
            &context,
            &spend_bytes(&inviter_spend),
            &spend_bytes(&joiner_spend),
        ]);
        self.pieces.push(EvidencePiece {
            seq,
            prev_digest,
            policy_proposal: policy_proposal.to_owned(),
            service_commitment: service_commitment.to_owned(),
            inviter: Some(Participation {
                token: inviter.invite.token.clone(),
                spend: inviter_spend,
                signature: inviter_sig,
            }),
            joiner: Participation {
                token: joiner.join.token.clone(),
                spend: joiner_spend,
                signature: joiner_sig,
            },
            digest,
        });
        self.pieces.last().expect("just pushed")
    }

    /// Verifies the whole chain: digest links, CA certifications, token
    /// spends and pseudonym signatures (the `f(e) =? 1` / `g(t) =? 1`
    /// checks of Fig. 7).
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Membership`] naming the first failing
    /// piece and check.
    pub fn verify(&self) -> Result<(), AuditError> {
        let group = self.params.group();
        let mut prev = [0u8; 32];
        for piece in &self.pieces {
            let fail = |what: &str| {
                Err(AuditError::Membership(format!(
                    "piece {}: {what}",
                    piece.seq
                )))
            };
            if piece.prev_digest != prev {
                return fail("digest chain broken");
            }
            let context = EvidencePiece::context(
                piece.seq,
                &piece.prev_digest,
                &piece.policy_proposal,
                &piece.service_commitment,
                &piece.joiner.token.pseudonym,
            );
            let mut participants: Vec<&Participation> = vec![&piece.joiner];
            if let Some(inviter) = &piece.inviter {
                participants.push(inviter);
            }
            let mut digest_parts: Vec<Vec<u8>> = vec![context.clone()];
            for p in &participants {
                if !p.token.verify_certification(group, &self.ca_public) {
                    return fail("token not certified by the credential authority");
                }
                if !verify_spend(&self.params, &p.token, &context, &p.spend) {
                    return fail("token spend does not verify");
                }
                if p.spend.challenge != spend_challenge(&self.params, &p.token, &context) {
                    return fail("spend challenge mismatch");
                }
                if !schnorr::verify(group, &p.token.pseudonym, &context, &p.signature) {
                    return fail("pseudonym signature invalid");
                }
            }
            // Digest covers inviter (if any) then joiner, in creation
            // order: context, [inviter], joiner.
            if let Some(inviter) = &piece.inviter {
                digest_parts.push(spend_bytes(&inviter.spend));
            }
            digest_parts.push(spend_bytes(&piece.joiner.spend));
            let refs: Vec<&[u8]> = digest_parts.iter().map(Vec::as_slice).collect();
            if sha256::digest_parts(&refs) != piece.digest {
                return fail("piece digest mismatch");
            }
            prev = piece.digest;
        }
        Ok(())
    }

    /// Scans all spends for tokens used more than once and recovers the
    /// cheaters' identities.
    #[must_use]
    pub fn detect_double_use(&self) -> Vec<ExposedIdentity> {
        let mut by_serial: BTreeMap<u64, Vec<&SpendProof>> = BTreeMap::new();
        for piece in &self.pieces {
            by_serial
                .entry(piece.joiner.spend.serial)
                .or_default()
                .push(&piece.joiner.spend);
            if let Some(inviter) = &piece.inviter {
                by_serial
                    .entry(inviter.spend.serial)
                    .or_default()
                    .push(&inviter.spend);
            }
        }
        let mut exposed = Vec::new();
        for (serial, spends) in by_serial {
            for pair in spends.windows(2) {
                if pair[0].challenge != pair[1].challenge {
                    if let Ok(identity) = recover_identity(&self.params, pair[0], pair[1]) {
                        exposed.push(ExposedIdentity { serial, identity });
                        break;
                    }
                }
            }
        }
        exposed
    }
}

fn spend_bytes(spend: &SpendProof) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&spend.serial.to_be_bytes());
    out.extend_from_slice(&spend.challenge.to_bytes_be());
    out.extend_from_slice(&spend.s1.to_bytes_be());
    out.extend_from_slice(&spend.s2.to_bytes_be());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn setup() -> (MembershipAuthority, rand::rngs::StdRng) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(404);
        let authority = MembershipAuthority::new(&SchnorrGroup::fixed_256(), &mut rng);
        (authority, rng)
    }

    #[test]
    fn honest_chain_verifies() {
        let (mut authority, mut rng) = setup();
        let p0 = authority.enroll("node-zero.example.org", &mut rng);
        let p1 = authority.enroll("node-one.example.org", &mut rng);
        let p2 = authority.enroll("node-two.example.org", &mut rng);

        let mut chain = EvidenceChain::found(&authority, &p0, "DLA cluster charter", &mut rng);
        chain.invite(&p0, &p1, "store fragments; serve ∩_s", "agreed", &mut rng);
        chain.invite(&p1, &p2, "store fragments; serve Σ_s", "agreed", &mut rng);

        assert_eq!(chain.len(), 3);
        chain.verify().unwrap();
        assert!(chain.detect_double_use().is_empty());
        assert_eq!(chain.authorized_inviter(), p2.join_token().serial);
    }

    #[test]
    fn double_invite_exposes_true_identity() {
        let (mut authority, mut rng) = setup();
        let p0 = authority.enroll("founder", &mut rng);
        let p1 = authority.enroll("cheater.example.org", &mut rng);
        let p2 = authority.enroll("victim-a", &mut rng);
        let p3 = authority.enroll("victim-b", &mut rng);

        let mut chain = EvidenceChain::found(&authority, &p0, "charter", &mut rng);
        chain.invite(&p0, &p1, "pp", "sc", &mut rng);
        // p1 invites p2 (legitimate — p1 is the tail)…
        chain.invite(&p1, &p2, "pp", "sc", &mut rng);
        // …then invites p3 too, after having passed authority on.
        chain.invite(&p1, &p3, "pp", "sc", &mut rng);

        chain.verify().unwrap(); // every piece is individually valid…
        let exposed = chain.detect_double_use();
        assert_eq!(exposed.len(), 1); // …but the cheater is exposed.
        assert_eq!(exposed[0].serial, p1.invite_token().serial);
        assert_eq!(
            authority.identify(&exposed[0].identity),
            Some("cheater.example.org")
        );
    }

    #[test]
    fn single_use_exposes_nobody() {
        let (mut authority, mut rng) = setup();
        let p0 = authority.enroll("a", &mut rng);
        let p1 = authority.enroll("b", &mut rng);
        let mut chain = EvidenceChain::found(&authority, &p0, "charter", &mut rng);
        chain.invite(&p0, &p1, "pp", "sc", &mut rng);
        assert!(chain.detect_double_use().is_empty());
    }

    #[test]
    fn tampered_terms_break_verification() {
        let (mut authority, mut rng) = setup();
        let p0 = authority.enroll("a", &mut rng);
        let p1 = authority.enroll("b", &mut rng);
        let mut chain = EvidenceChain::found(&authority, &p0, "charter", &mut rng);
        chain.invite(&p0, &p1, "the real terms", "sc", &mut rng);
        // Rewrite the negotiated policy after the fact.
        chain.pieces[1].policy_proposal = "sneaky new terms".into();
        assert!(chain.verify().is_err());
    }

    #[test]
    fn broken_digest_link_detected() {
        let (mut authority, mut rng) = setup();
        let p0 = authority.enroll("a", &mut rng);
        let p1 = authority.enroll("b", &mut rng);
        let p2 = authority.enroll("c", &mut rng);
        let mut chain = EvidenceChain::found(&authority, &p0, "charter", &mut rng);
        chain.invite(&p0, &p1, "pp", "sc", &mut rng);
        chain.invite(&p1, &p2, "pp", "sc", &mut rng);
        // Excise the middle piece: the chain must not verify.
        chain.pieces.remove(1);
        let err = chain.verify().unwrap_err();
        assert!(err.to_string().contains("digest chain broken"));
    }

    #[test]
    fn foreign_token_rejected() {
        let (mut authority, mut rng) = setup();
        let p0 = authority.enroll("a", &mut rng);
        let p1 = authority.enroll("b", &mut rng);
        // A second, unrelated authority.
        let mut other = MembershipAuthority::new(&SchnorrGroup::fixed_256(), &mut rng);
        let intruder = other.enroll("intruder", &mut rng);

        let mut chain = EvidenceChain::found(&authority, &p0, "charter", &mut rng);
        chain.invite(&p0, &p1, "pp", "sc", &mut rng);
        chain.invite(&p1, &intruder, "pp", "sc", &mut rng);
        let err = chain.verify().unwrap_err();
        assert!(err.to_string().contains("not certified"));
    }

    #[test]
    fn identity_scalars_are_stable_and_distinct() {
        let (authority, _) = setup();
        assert_eq!(
            authority.identity_scalar("x"),
            authority.identity_scalar("x")
        );
        assert_ne!(
            authority.identity_scalar("x"),
            authority.identity_scalar("y")
        );
        assert_eq!(authority.identify(&Ubig::from_u64(12345)), None);
    }

    #[test]
    fn anonymity_pieces_carry_no_names() {
        let (mut authority, mut rng) = setup();
        let p0 = authority.enroll("very-secret-corporation", &mut rng);
        let chain = EvidenceChain::found(&authority, &p0, "charter", &mut rng);
        // The serialized piece must not contain the enrolled name.
        let piece = &chain.pieces()[0];
        let blob = format!("{piece:?}");
        assert!(!blob.contains("very-secret-corporation"));
    }
}
