//! Transaction specifications and confidential conformance checking
//! (paper §2, Eq. 1–5 and §4.2).
//!
//! A transaction `T = {R_T, E_T, L_T, tsn, ttn}` carries a rule set
//! `R_T = {r_j(T)}` — "correlation, fairness, non-repudiation, atomic,
//! consistency checking, irregular pattern detection". This module
//! expresses those rules ([`Rule`]) and verifies them **without pulling
//! raw logs to the auditor**: counts run as no-reveal queries, volume
//! bounds as §3.5 secure sums, and time-span / participation rules
//! disclose only the single scalar each rule needs (span, distinct
//! count) from the owning node — secondary information in the sense of
//! Definition 1.

use crate::aggregate;
use crate::cluster::DlaCluster;
use crate::query::{CmpOp, Criteria, Predicate};
use crate::AuditError;
use dla_logstore::model::{AttrName, AttrValue, Glsn, TransactionId};
use dla_net::wire::{Reader, Writer};
use dla_net::NodeId;
use std::collections::BTreeSet;
use std::fmt;

/// One conformance rule `r_j(T)`.
#[derive(Clone, Debug, PartialEq)]
pub enum Rule {
    /// Atomicity/completeness: the number of logged events satisfies
    /// `count θ expected` (e.g. an order transaction must have exactly
    /// 3 events).
    EventCount {
        /// Comparison operator.
        op: CmpOp,
        /// Expected event count.
        expected: u64,
    },
    /// Volume bound: `Σ attr θ limit` over the transaction's records
    /// (irregular-pattern detection: a payment series must not exceed
    /// its authorization).
    TotalVolume {
        /// The numeric attribute to total.
        attr: AttrName,
        /// Comparison operator.
        op: CmpOp,
        /// The bound, in the attribute's native unit.
        limit: u64,
    },
    /// Timeliness: all events within `seconds` of the first
    /// (consistency checking).
    MaxDuration {
        /// Maximum allowed span in seconds.
        seconds: u64,
    },
    /// Participation whitelist: every event executed by one of `ids`
    /// (non-repudiation of the counterparty set).
    AllowedExecutors {
        /// Permitted executor ids.
        ids: Vec<String>,
    },
    /// Correlation/fairness: at least `count` distinct executors took
    /// part (a two-party exchange must show both sides' events).
    MinDistinctExecutors {
        /// Minimum number of distinct executors.
        count: usize,
    },
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rule::EventCount { op, expected } => write!(f, "event count {op} {expected}"),
            Rule::TotalVolume { attr, op, limit } => {
                write!(f, "total {attr} {op} {limit}")
            }
            Rule::MaxDuration { seconds } => write!(f, "all events within {seconds}s"),
            Rule::AllowedExecutors { ids } => {
                write!(f, "executors within {{{}}}", ids.join(", "))
            }
            Rule::MinDistinctExecutors { count } => {
                write!(f, "at least {count} distinct executors")
            }
        }
    }
}

/// A transaction type specification: `ttn` plus its rule set `R_T`.
#[derive(Clone, Debug, PartialEq)]
pub struct TransactionSpec {
    /// The transaction type number/name (`ttn`).
    pub ttn: String,
    /// The rules `R_T`.
    pub rules: Vec<Rule>,
}

impl TransactionSpec {
    /// Creates a spec.
    #[must_use]
    pub fn new(ttn: &str) -> Self {
        TransactionSpec {
            ttn: ttn.to_owned(),
            rules: Vec::new(),
        }
    }

    /// Adds a rule (builder style).
    #[must_use]
    pub fn with_rule(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }
}

/// The verdict for one rule.
#[derive(Clone, Debug)]
pub struct RuleVerdict {
    /// The rule checked.
    pub rule: Rule,
    /// Whether the audit trail conforms.
    pub ok: bool,
    /// Human-readable detail (the disclosed scalar, never raw logs).
    pub detail: String,
}

/// The full conformance report for one transaction.
#[derive(Clone, Debug)]
pub struct TransactionReport {
    /// The audited transaction.
    pub tid: TransactionId,
    /// Per-rule verdicts.
    pub verdicts: Vec<RuleVerdict>,
}

impl TransactionReport {
    /// Whether every rule passed.
    #[must_use]
    pub fn conforms(&self) -> bool {
        self.verdicts.iter().all(|v| v.ok)
    }
}

impl fmt::Display for TransactionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "transaction {}: {}",
            self.tid,
            if self.conforms() {
                "CONFORMS"
            } else {
                "VIOLATION"
            }
        )?;
        for v in &self.verdicts {
            writeln!(
                f,
                "  [{}] {} — {}",
                if v.ok { "ok" } else { "FAIL" },
                v.rule,
                v.detail
            )?;
        }
        Ok(())
    }
}

/// Verifies a transaction against its specification using only
/// confidential primitives.
///
/// # Errors
///
/// Returns [`AuditError`] if the schema lacks a `tid` attribute, a
/// rule references an unknown/mistyped attribute, or a protocol fails.
pub fn verify_transaction(
    cluster: &mut DlaCluster,
    tid: &TransactionId,
    spec: &TransactionSpec,
) -> Result<TransactionReport, AuditError> {
    let tid_attr = AttrName::new("tid");
    if !cluster.schema().contains(&tid_attr) {
        return Err(AuditError::Planning(
            "schema has no tid attribute to audit transactions by".into(),
        ));
    }
    let tid_criteria = format!("tid = '{}'", tid.as_str());
    let mut verdicts = Vec::with_capacity(spec.rules.len());
    for rule in &spec.rules {
        let verdict = match rule {
            Rule::EventCount { op, expected } => {
                let outcome = aggregate::count_matching(cluster, &tid_criteria)?;
                let ok = op.test((outcome.count as u64).cmp(expected));
                RuleVerdict {
                    rule: rule.clone(),
                    ok,
                    detail: format!("counted {} events", outcome.count),
                }
            }
            Rule::TotalVolume { attr, op, limit } => {
                let outcome = aggregate::sum_matching(cluster, &tid_criteria, attr)?;
                let ok = op.test(outcome.total.cmp(limit));
                RuleVerdict {
                    rule: rule.clone(),
                    ok,
                    detail: format!("total = {}", outcome.total),
                }
            }
            Rule::MaxDuration { seconds } => {
                let span = time_span(cluster, &tid_criteria)?;
                let ok = span.is_none_or(|s| s <= *seconds);
                RuleVerdict {
                    rule: rule.clone(),
                    ok,
                    detail: match span {
                        Some(s) => format!("span = {s}s"),
                        None => "no events".into(),
                    },
                }
            }
            Rule::AllowedExecutors { ids } => {
                // Count events whose executor is NOT in the whitelist:
                // tid = T AND id != a AND id != b …
                let mut criteria = Criteria::pred(Predicate::with_const(
                    "tid",
                    CmpOp::Eq,
                    AttrValue::text(tid.as_str()),
                ));
                for id in ids {
                    criteria = criteria.and(Criteria::pred(Predicate::with_const(
                        "id",
                        CmpOp::Ne,
                        AttrValue::text(id),
                    )));
                }
                let result = crate::exec::execute_with_reveal(
                    cluster,
                    &crate::plan::plan(&crate::normal::normalize(&criteria), cluster.partition())?,
                    false,
                )?;
                RuleVerdict {
                    rule: rule.clone(),
                    ok: result.cardinality == 0,
                    detail: format!("{} events by non-whitelisted executors", result.cardinality),
                }
            }
            Rule::MinDistinctExecutors { count } => {
                let distinct = distinct_values(cluster, &tid_criteria, &AttrName::new("id"))?;
                RuleVerdict {
                    rule: rule.clone(),
                    ok: distinct >= *count,
                    detail: format!("{distinct} distinct executors"),
                }
            }
        };
        verdicts.push(verdict);
    }
    Ok(TransactionReport {
        tid: tid.clone(),
        verdicts,
    })
}

/// The span (max − min, seconds) of the `time` attribute over the
/// matching records — computed at the time-owner node; only the span
/// crosses the network.
fn time_span(cluster: &mut DlaCluster, criteria: &str) -> Result<Option<u64>, AuditError> {
    scalar_from_owner(cluster, criteria, &AttrName::new("time"), 0x72, |values| {
        let times: Vec<u64> = values
            .iter()
            .filter_map(|v| match v {
                AttrValue::Time(t) => Some(*t),
                _ => None,
            })
            .collect();
        match (times.iter().min(), times.iter().max()) {
            (Some(min), Some(max)) => Some(max - min),
            _ => None,
        }
    })
}

/// The number of distinct values of `attr` over the matching records —
/// computed at the owner; only the count crosses the network.
fn distinct_values(
    cluster: &mut DlaCluster,
    criteria: &str,
    attr: &AttrName,
) -> Result<usize, AuditError> {
    let distinct = scalar_from_owner(cluster, criteria, attr, 0x73, |values| {
        let set: BTreeSet<Vec<u8>> = values.iter().map(AttrValue::to_canonical_bytes).collect();
        Some(set.len() as u64)
    })?;
    Ok(distinct.unwrap_or(0) as usize)
}

/// Shared machinery: run the criteria (glsns to the auditor), then
/// delegate to [`owner_scalar_over_glsns`].
fn scalar_from_owner(
    cluster: &mut DlaCluster,
    criteria: &str,
    attr: &AttrName,
    tag: u8,
    compute: impl FnOnce(&[AttrValue]) -> Option<u64>,
) -> Result<Option<u64>, AuditError> {
    let parsed = crate::parser::parse(criteria, cluster.schema())
        .map_err(|e| AuditError::Parse(e.to_string()))?;
    let normalized = crate::normal::normalize(&parsed);
    let plan = crate::plan::plan(&normalized, cluster.partition())?;
    let result = crate::exec::execute(cluster, &plan)?;
    owner_scalar_over_glsns(cluster, &result.glsns, attr, tag, compute)
}

/// Ships a glsn list from the auditor to `attr`'s owner, lets the owner
/// compute one scalar over its local values for those glsns, and
/// returns only that scalar — the building block of every
/// "disclose one number, not the data" rule.
pub(crate) fn owner_scalar_over_glsns(
    cluster: &mut DlaCluster,
    result_glsns: &[Glsn],
    attr: &AttrName,
    tag: u8,
    compute: impl FnOnce(&[AttrValue]) -> Option<u64>,
) -> Result<Option<u64>, AuditError> {
    let owner = cluster
        .partition()
        .node_of(attr)
        .ok_or_else(|| AuditError::Planning(format!("attribute {attr} is not served")))?;

    // Auditor -> owner: the glsn list.
    let auditor = cluster.auditor_node();
    let mut w = Writer::new();
    w.put_u8(tag).put_list(result_glsns, |w, g| {
        w.put_u64(g.0);
    });
    cluster.net_mut().send(auditor, NodeId(owner), w.finish());
    let envelope = cluster
        .net_mut()
        .recv_from(NodeId(owner), auditor)
        .map_err(AuditError::Net)?;
    let mut r = Reader::new(&envelope.payload);
    let _ = r.get_u8().map_err(|e| AuditError::Parse(e.to_string()))?;
    let glsns: Vec<Glsn> = r
        .get_list(|r| r.get_u64().map(Glsn))
        .map_err(|e| AuditError::Parse(e.to_string()))?;

    // Owner computes the scalar locally.
    let values: Vec<AttrValue> = glsns
        .iter()
        .filter_map(|g| {
            cluster
                .node(owner)
                .store()
                .get_local(*g)
                .and_then(|f| f.values.get(attr).cloned())
        })
        .collect();
    let scalar = compute(&values);

    // Owner -> auditor: the scalar only.
    let mut w = Writer::new();
    w.put_u8(tag).put_u64(scalar.map_or(u64::MAX, |s| s));
    cluster.net_mut().send(NodeId(owner), auditor, w.finish());
    let envelope = cluster
        .net_mut()
        .recv_from(auditor, NodeId(owner))
        .map_err(AuditError::Net)?;
    let mut r = Reader::new(&envelope.payload);
    let _ = r.get_u8().map_err(|e| AuditError::Parse(e.to_string()))?;
    let raw = r.get_u64().map_err(|e| AuditError::Parse(e.to_string()))?;
    Ok(if raw == u64::MAX { None } else { Some(raw) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{AppUser, ClusterConfig};
    use dla_logstore::fragment::Partition;
    use dla_logstore::gen::paper_table1;
    use dla_logstore::schema::Schema;

    fn loaded() -> (DlaCluster, AppUser) {
        let schema = Schema::paper_example();
        let partition = Partition::paper_example(&schema);
        let mut cluster = DlaCluster::new(
            ClusterConfig::new(4, schema)
                .with_partition(partition)
                .with_seed(64),
        )
        .unwrap();
        let user = cluster.register_user("u").unwrap();
        cluster.log_records(&user, &paper_table1()).unwrap();
        (cluster, user)
    }

    // Table 1: T1100265 has 3 events (rows 1, 2, 4) by U1, U2, U2;
    // c2 total 23.45 + 345.11 + 45.02 = 413.58; times 20:18:35,
    // 20:20:35, 20:23:38 → span 303 s.
    fn t265() -> TransactionId {
        TransactionId::new("T1100265")
    }

    #[test]
    fn conforming_transaction_passes_all_rules() {
        let (mut cluster, _) = loaded();
        let spec = TransactionSpec::new("order")
            .with_rule(Rule::EventCount {
                op: CmpOp::Eq,
                expected: 3,
            })
            .with_rule(Rule::TotalVolume {
                attr: "c2".into(),
                op: CmpOp::Le,
                limit: 50_000,
            })
            .with_rule(Rule::MaxDuration { seconds: 400 })
            .with_rule(Rule::AllowedExecutors {
                ids: vec!["U1".into(), "U2".into()],
            })
            .with_rule(Rule::MinDistinctExecutors { count: 2 });
        let report = verify_transaction(&mut cluster, &t265(), &spec).unwrap();
        assert!(report.conforms(), "{report}");
        assert_eq!(report.verdicts.len(), 5);
    }

    #[test]
    fn event_count_violation_detected() {
        let (mut cluster, _) = loaded();
        let spec = TransactionSpec::new("order").with_rule(Rule::EventCount {
            op: CmpOp::Eq,
            expected: 4,
        });
        let report = verify_transaction(&mut cluster, &t265(), &spec).unwrap();
        assert!(!report.conforms());
        assert!(report.verdicts[0].detail.contains("3 events"));
    }

    #[test]
    fn volume_bound_violation_detected() {
        let (mut cluster, _) = loaded();
        let spec = TransactionSpec::new("order").with_rule(Rule::TotalVolume {
            attr: "c2".into(),
            op: CmpOp::Le,
            limit: 40_000, // 413.58 > 400.00
        });
        let report = verify_transaction(&mut cluster, &t265(), &spec).unwrap();
        assert!(!report.conforms());
        assert!(report.verdicts[0].detail.contains("41358"));
    }

    #[test]
    fn duration_rule_uses_only_the_span() {
        let (mut cluster, _) = loaded();
        // Span of T1100265 is 303 s: 300 fails, 303 passes.
        let tight = TransactionSpec::new("t").with_rule(Rule::MaxDuration { seconds: 300 });
        let loose = TransactionSpec::new("t").with_rule(Rule::MaxDuration { seconds: 303 });
        assert!(!verify_transaction(&mut cluster, &t265(), &tight)
            .unwrap()
            .conforms());
        assert!(verify_transaction(&mut cluster, &t265(), &loose)
            .unwrap()
            .conforms());
    }

    #[test]
    fn executor_whitelist_enforced() {
        let (mut cluster, _) = loaded();
        // T1100267 is executed by U1 and U3.
        let tid = TransactionId::new("T1100267");
        let good = TransactionSpec::new("t").with_rule(Rule::AllowedExecutors {
            ids: vec!["U1".into(), "U3".into()],
        });
        assert!(verify_transaction(&mut cluster, &tid, &good)
            .unwrap()
            .conforms());
        let bad = TransactionSpec::new("t").with_rule(Rule::AllowedExecutors {
            ids: vec!["U1".into()],
        });
        let report = verify_transaction(&mut cluster, &tid, &bad).unwrap();
        assert!(!report.conforms());
        assert!(report.verdicts[0].detail.contains("1 events"));
    }

    #[test]
    fn distinct_executor_floor() {
        let (mut cluster, _) = loaded();
        let spec3 = TransactionSpec::new("t").with_rule(Rule::MinDistinctExecutors { count: 3 });
        let report = verify_transaction(&mut cluster, &t265(), &spec3).unwrap();
        assert!(!report.conforms(), "only U1 and U2 participate");
        let spec2 = TransactionSpec::new("t").with_rule(Rule::MinDistinctExecutors { count: 2 });
        assert!(verify_transaction(&mut cluster, &t265(), &spec2)
            .unwrap()
            .conforms());
    }

    #[test]
    fn unknown_transaction_yields_empty_but_valid_report() {
        let (mut cluster, _) = loaded();
        let spec = TransactionSpec::new("t")
            .with_rule(Rule::EventCount {
                op: CmpOp::Eq,
                expected: 0,
            })
            .with_rule(Rule::MaxDuration { seconds: 1 });
        let report =
            verify_transaction(&mut cluster, &TransactionId::new("T9999999"), &spec).unwrap();
        assert!(
            report.conforms(),
            "zero events satisfy count=0 and any duration"
        );
    }

    #[test]
    fn report_display_summarizes() {
        let (mut cluster, _) = loaded();
        let spec = TransactionSpec::new("t").with_rule(Rule::EventCount {
            op: CmpOp::Ge,
            expected: 1,
        });
        let report = verify_transaction(&mut cluster, &t265(), &spec).unwrap();
        let text = report.to_string();
        assert!(text.contains("CONFORMS"));
        assert!(text.contains("[ok]"));
    }

    #[test]
    fn rule_display_readable() {
        assert_eq!(
            Rule::EventCount {
                op: CmpOp::Eq,
                expected: 3
            }
            .to_string(),
            "event count = 3"
        );
        assert_eq!(
            Rule::MaxDuration { seconds: 60 }.to_string(),
            "all events within 60s"
        );
    }
}
