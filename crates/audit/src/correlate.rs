//! Distributed event correlation (paper §1: "distributed event
//! correlation for intrusion detection"; §4.2: "distributed security
//! breaching is usually an aggregated effect of distributed events,
//! each of which alone may appear to be harmless").
//!
//! A [`CorrelationRule`] describes the aggregated effect to look for:
//! within any tumbling time window of `window_seconds`, at least
//! `min_events` matching events coming from at least `min_sources`
//! distinct sources. Detection is confidential:
//!
//! 1. the matching glsn set is computed by the ordinary distributed
//!    query pipeline;
//! 2. the **time owner** buckets those glsns into windows locally and
//!    discloses only per-bucket counts (coarse timing — permitted
//!    secondary information);
//! 3. for buckets over the count threshold, the **id owner** discloses
//!    only the distinct-source count.
//!
//! No timestamp, source id or attribute value ever reaches the
//! auditor.

use crate::cluster::DlaCluster;
use crate::transaction::owner_scalar_over_glsns;
use crate::AuditError;
use dla_logstore::model::{AttrName, AttrValue, Glsn};
use dla_net::wire::{Reader, Writer};
use dla_net::NodeId;
use std::collections::BTreeMap;
use std::fmt;

/// What to correlate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorrelationRule {
    /// Rule name (for alert reporting).
    pub name: String,
    /// Which events participate (any parseable criteria).
    pub event_criteria: String,
    /// Tumbling-window width in seconds.
    pub window_seconds: u64,
    /// Minimum matching events within one window.
    pub min_events: usize,
    /// Minimum distinct sources (`id` values) within that window.
    pub min_sources: usize,
}

/// One triggered window.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorrelationAlert {
    /// The triggering rule's name.
    pub rule: String,
    /// Window start (epoch seconds, inclusive).
    pub window_start: u64,
    /// Window end (epoch seconds, exclusive).
    pub window_end: u64,
    /// Matching events inside the window.
    pub events: usize,
    /// Distinct sources inside the window.
    pub sources: usize,
    /// The correlated records (glsns are public identifiers).
    pub glsns: Vec<Glsn>,
}

impl fmt::Display for CorrelationAlert {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] window {}..{}: {} events from {} sources ({} records)",
            self.rule,
            self.window_start,
            self.window_end,
            self.events,
            self.sources,
            self.glsns.len()
        )
    }
}

/// Runs a correlation rule over the cluster.
///
/// # Errors
///
/// Returns [`AuditError`] on parse/plan/protocol failures, or if the
/// schema lacks `time`/`id` attributes.
///
/// # Panics
///
/// Panics if `window_seconds` is zero.
pub fn detect(
    cluster: &mut DlaCluster,
    rule: &CorrelationRule,
) -> Result<Vec<CorrelationAlert>, AuditError> {
    assert!(rule.window_seconds > 0, "window must be positive");
    let time_attr = AttrName::new("time");
    let id_attr = AttrName::new("id");
    for attr in [&time_attr, &id_attr] {
        if !cluster.schema().contains(attr) {
            return Err(AuditError::Planning(format!(
                "correlation needs a {attr} attribute in the schema"
            )));
        }
    }

    // Step 1: the matching glsns (distributed query, revealed to the
    // auditor engine — glsns only).
    let parsed = crate::parser::parse(&rule.event_criteria, cluster.schema())
        .map_err(|e| AuditError::Parse(e.to_string()))?;
    let plan = crate::plan::plan(&crate::normal::normalize(&parsed), cluster.partition())?;
    let result = crate::exec::execute(cluster, &plan)?;
    if result.glsns.is_empty() {
        return Ok(Vec::new());
    }

    // Step 2: the time owner buckets the glsns into tumbling windows
    // and returns (bucket index, glsns) — indices are coarse timing.
    let buckets = window_buckets(cluster, &result.glsns, rule.window_seconds)?;

    // Step 3: per threshold-crossing bucket, the id owner reports the
    // distinct-source count.
    let mut alerts = Vec::new();
    for (bucket, glsns) in buckets {
        if glsns.len() < rule.min_events {
            continue;
        }
        let sources = owner_scalar_over_glsns(cluster, &glsns, &id_attr, 0x74, |values| {
            let set: std::collections::BTreeSet<Vec<u8>> =
                values.iter().map(AttrValue::to_canonical_bytes).collect();
            Some(set.len() as u64)
        })?
        .unwrap_or(0) as usize;
        if sources < rule.min_sources {
            continue;
        }
        alerts.push(CorrelationAlert {
            rule: rule.name.clone(),
            window_start: bucket * rule.window_seconds,
            window_end: (bucket + 1) * rule.window_seconds,
            events: glsns.len(),
            sources,
            glsns,
        });
    }
    Ok(alerts)
}

/// Auditor ↔ time-owner exchange: ships the glsn list, receives
/// `(bucket index, glsn)` pairs computed at the owner.
fn window_buckets(
    cluster: &mut DlaCluster,
    glsns: &[Glsn],
    window_seconds: u64,
) -> Result<BTreeMap<u64, Vec<Glsn>>, AuditError> {
    let time_attr = AttrName::new("time");
    let owner = cluster
        .partition()
        .node_of(&time_attr)
        .ok_or_else(|| AuditError::Planning("time attribute is not served".into()))?;
    let auditor = cluster.auditor_node();

    let mut w = Writer::new();
    w.put_u8(0x75).put_list(glsns, |w, g| {
        w.put_u64(g.0);
    });
    cluster.net_mut().send(auditor, NodeId(owner), w.finish());
    let envelope = cluster
        .net_mut()
        .recv_from(NodeId(owner), auditor)
        .map_err(AuditError::Net)?;
    let mut r = Reader::new(&envelope.payload);
    let _ = r.get_u8().map_err(|e| AuditError::Parse(e.to_string()))?;
    let requested: Vec<Glsn> = r
        .get_list(|r| r.get_u64().map(Glsn))
        .map_err(|e| AuditError::Parse(e.to_string()))?;

    // Owner-side bucketing.
    let pairs: Vec<(u64, Glsn)> =
        requested
            .iter()
            .filter_map(|g| {
                cluster.node(owner).store().get_local(*g).and_then(|f| {
                    match f.values.get(&time_attr) {
                        Some(AttrValue::Time(t)) => Some((t / window_seconds, *g)),
                        _ => None,
                    }
                })
            })
            .collect();

    // Owner -> auditor: the bucketed pairs.
    let mut w = Writer::new();
    w.put_u8(0x75).put_list(&pairs, |w, &(bucket, g)| {
        w.put_u64(bucket);
        w.put_u64(g.0);
    });
    cluster.net_mut().send(NodeId(owner), auditor, w.finish());
    let envelope = cluster
        .net_mut()
        .recv_from(auditor, NodeId(owner))
        .map_err(AuditError::Net)?;
    let mut r = Reader::new(&envelope.payload);
    let _ = r.get_u8().map_err(|e| AuditError::Parse(e.to_string()))?;
    let received = r
        .get_list(|r| {
            let bucket = r.get_u64()?;
            let g = r.get_u64().map(Glsn)?;
            Ok((bucket, g))
        })
        .map_err(|e| AuditError::Parse(e.to_string()))?;

    let mut out: BTreeMap<u64, Vec<Glsn>> = BTreeMap::new();
    for (bucket, glsn) in received {
        out.entry(bucket).or_default().push(glsn);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{AppUser, ClusterConfig};
    use dla_logstore::model::LogRecord;
    use dla_logstore::schema::{AttrDef, Schema};

    fn auth_schema() -> Schema {
        Schema::new(vec![
            AttrDef::known("time", dla_logstore::model::AttrType::Time),
            AttrDef::known("id", dla_logstore::model::AttrType::Text),
            AttrDef::known("tid", dla_logstore::model::AttrType::Text),
            AttrDef::undefined("c1", dla_logstore::model::AttrType::Int),
        ])
        .expect("valid schema")
    }

    fn cluster() -> (DlaCluster, AppUser) {
        let mut cluster =
            DlaCluster::new(ClusterConfig::new(4, auth_schema()).with_seed(91)).unwrap();
        let user = cluster.register_user("u").unwrap();
        (cluster, user)
    }

    fn log_event(cluster: &mut DlaCluster, user: &AppUser, t: u64, org: &str, fails: i64) {
        let record = LogRecord::new(Glsn(0))
            .with("time", AttrValue::Time(t))
            .with("id", AttrValue::text(org))
            .with("tid", AttrValue::text("acct-13"))
            .with("c1", AttrValue::Int(fails));
        cluster.log_record(user, &record).unwrap();
    }

    fn rule() -> CorrelationRule {
        CorrelationRule {
            name: "low-and-slow".into(),
            event_criteria: "c1 >= 4".into(),
            window_seconds: 300,
            min_events: 3,
            min_sources: 3,
        }
    }

    #[test]
    fn correlated_burst_triggers_one_alert() {
        let (mut cluster, user) = cluster();
        // Background noise in other windows.
        for w in 0..5u64 {
            log_event(&mut cluster, &user, w * 300 + 10, "OrgA", 1);
        }
        // The correlated burst: 3 orgs in window [1500, 1800).
        for org in ["OrgA", "OrgB", "OrgC"] {
            log_event(&mut cluster, &user, 1600, org, 5);
        }
        let alerts = detect(&mut cluster, &rule()).unwrap();
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].window_start, 1500);
        assert_eq!(alerts[0].window_end, 1800);
        assert_eq!(alerts[0].events, 3);
        assert_eq!(alerts[0].sources, 3);
        assert_eq!(alerts[0].glsns.len(), 3);
    }

    #[test]
    fn single_source_burst_does_not_trigger() {
        let (mut cluster, user) = cluster();
        // 4 events, but all from one org.
        for i in 0..4 {
            log_event(&mut cluster, &user, 1600 + i, "OrgA", 6);
        }
        let alerts = detect(&mut cluster, &rule()).unwrap();
        assert!(alerts.is_empty(), "one source must not correlate");
    }

    #[test]
    fn spread_out_events_do_not_trigger() {
        let (mut cluster, user) = cluster();
        // 3 orgs, but in different windows.
        log_event(&mut cluster, &user, 100, "OrgA", 5);
        log_event(&mut cluster, &user, 700, "OrgB", 5);
        log_event(&mut cluster, &user, 1300, "OrgC", 5);
        let alerts = detect(&mut cluster, &rule()).unwrap();
        assert!(alerts.is_empty());
    }

    #[test]
    fn multiple_windows_can_trigger() {
        let (mut cluster, user) = cluster();
        for window in [2u64, 7] {
            for org in ["OrgA", "OrgB", "OrgC", "OrgD"] {
                log_event(&mut cluster, &user, window * 300 + 50, org, 9);
            }
        }
        let alerts = detect(&mut cluster, &rule()).unwrap();
        assert_eq!(alerts.len(), 2);
        assert_eq!(alerts[0].window_start, 600);
        assert_eq!(alerts[1].window_start, 2100);
        assert!(alerts.iter().all(|a| a.sources == 4));
    }

    #[test]
    fn no_matching_events_is_quiet() {
        let (mut cluster, user) = cluster();
        log_event(&mut cluster, &user, 100, "OrgA", 1); // below c1 >= 4
        let alerts = detect(&mut cluster, &rule()).unwrap();
        assert!(alerts.is_empty());
    }

    #[test]
    fn schema_without_id_rejected() {
        let schema = Schema::new(vec![
            AttrDef::known("time", dla_logstore::model::AttrType::Time),
            AttrDef::known("c1", dla_logstore::model::AttrType::Int),
        ])
        .unwrap();
        let mut cluster = DlaCluster::new(ClusterConfig::new(2, schema).with_seed(1)).unwrap();
        let err = detect(&mut cluster, &rule()).unwrap_err();
        assert!(err.to_string().contains("id"));
    }

    #[test]
    fn alert_display_is_informative() {
        let alert = CorrelationAlert {
            rule: "r".into(),
            window_start: 0,
            window_end: 300,
            events: 3,
            sources: 3,
            glsns: vec![Glsn(1)],
        };
        let text = alert.to_string();
        assert!(text.contains("3 events from 3 sources"));
    }
}
