#![deny(rust_2018_idioms)]

//! The DLA cluster core: confidential logging and auditing for
//! distributed systems.
//!
//! This crate assembles the substrates (`dla-crypto`, `dla-net`,
//! `dla-logstore`, `dla-mpc`) into the system the paper proposes:
//!
//! * [`cluster`] — the TTP cluster itself: fragment-storing nodes,
//!   ticketed users, the auditor engine (Fig. 2).
//! * [`query`], [`parser`], [`normal`], [`plan`], [`exec`] — the
//!   confidential query pipeline: criteria → conjunctive form → local
//!   vs. cross subqueries → relaxed-secure-computation execution with
//!   the final glsn-keyed secure set intersection (Fig. 3).
//! * [`integrity`] — one-way-accumulator integrity circulation and
//!   ACL consistency checking (§4.1).
//! * [`membership`] — the anonymous-but-accountable evidence chain
//!   with double-use identity exposure (§4.2, Figs. 6–7).
//! * [`metrics`] — the confidentiality metrics `C_store`,
//!   `C_auditing`, `C_query`, `C_DLA` (§5, Eqs. 10–13).
//! * [`meta`] — the tamper-evident meta-audit trail of the cluster's
//!   own actions (hash chain + one-way-accumulator commitment).
//! * [`centralized`] — the Figure 1 single-auditor baseline.
//!
//! # Examples
//!
//! ```
//! use dla_audit::cluster::{ClusterConfig, DlaCluster};
//! use dla_logstore::fragment::Partition;
//! use dla_logstore::gen::paper_table1;
//! use dla_logstore::schema::Schema;
//!
//! # fn main() -> Result<(), dla_audit::AuditError> {
//! let schema = Schema::paper_example();
//! let partition = Partition::paper_example(&schema);
//! let mut cluster = DlaCluster::new(
//!     ClusterConfig::new(4, schema).with_partition(partition).with_seed(1),
//! )?;
//! let user = cluster.register_user("u0")?;
//! cluster.log_records(&user, &paper_table1())?;
//!
//! // A confidential audit: which transactions moved more than 100.00?
//! let result = cluster.query("c2 > 100.00")?;
//! assert_eq!(result.glsns.len(), 3);
//! # Ok(())
//! # }
//! ```

use std::fmt;

pub mod adversary;
pub mod aggregate;
pub mod attest;
pub mod centralized;
pub mod cluster;
pub mod correlate;
pub mod deploy;
pub mod exec;
pub mod federation;
pub mod health;
pub mod integrity;
pub mod membership;
pub mod meta;
pub mod metrics;
pub mod normal;
pub mod parser;
pub mod plan;
pub mod query;
pub mod standing;
pub mod transaction;

/// Errors surfaced by the auditing core.
#[derive(Debug)]
#[non_exhaustive]
pub enum AuditError {
    /// Invalid cluster configuration.
    Config(String),
    /// Query parsing or type-checking failure.
    Parse(String),
    /// Query planning failure.
    Planning(String),
    /// Logging/storage failure.
    Log(String),
    /// Integrity-check failure (protocol level, not a tamper verdict).
    Integrity(String),
    /// Membership/evidence-chain verification failure.
    Membership(String),
    /// An MPC sub-protocol failed.
    Mpc(dla_mpc::MpcError),
    /// A network operation failed.
    Net(dla_net::NetError),
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::Config(msg) => write!(f, "configuration error: {msg}"),
            AuditError::Parse(msg) => write!(f, "query error: {msg}"),
            AuditError::Planning(msg) => write!(f, "planning error: {msg}"),
            AuditError::Log(msg) => write!(f, "logging error: {msg}"),
            AuditError::Integrity(msg) => write!(f, "integrity error: {msg}"),
            AuditError::Membership(msg) => write!(f, "membership error: {msg}"),
            AuditError::Mpc(e) => write!(f, "secure-computation error: {e}"),
            AuditError::Net(e) => write!(f, "network error: {e}"),
        }
    }
}

impl std::error::Error for AuditError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AuditError::Mpc(e) => Some(e),
            AuditError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<dla_mpc::MpcError> for AuditError {
    fn from(e: dla_mpc::MpcError) -> Self {
        AuditError::Mpc(e)
    }
}

impl From<dla_net::NetError> for AuditError {
    fn from(e: dla_net::NetError) -> Self {
        AuditError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_variants() {
        assert!(AuditError::Config("x".into())
            .to_string()
            .starts_with("configuration error"));
        assert!(AuditError::Membership("y".into())
            .to_string()
            .contains("membership"));
        let e: AuditError = dla_net::NetError::EmptyInbox(dla_net::NodeId(0)).into();
        assert!(e.to_string().contains("network error"));
    }

    #[test]
    fn error_source_chain() {
        use std::error::Error;
        let e: AuditError = dla_mpc::MpcError::Protocol("p".into()).into();
        assert!(e.source().is_some());
        assert!(AuditError::Parse("p".into()).source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AuditError>();
    }
}
