//! The DLA cluster (paper §2, Figure 2): `n` TTP nodes storing log
//! fragments, an auditor engine, application users logging through
//! tickets, and the simulated network tying them together.

use crate::AuditError;
use dla_bigint::Ubig;
use dla_crypto::accumulator::{AccumulatorParams, CheckpointChain};
use dla_crypto::pohlig_hellman::{BatchMode, CommutativeDomain, ExpAlgo};
use dla_crypto::schnorr::{SchnorrGroup, SchnorrKeyPair};
use dla_logstore::acl::{OperationSet, Ticket, TicketAuthority};
use dla_logstore::epoch::{EpochId, EpochPolicy};
use dla_logstore::fragment::{fragment, Fragment, Partition};
use dla_logstore::model::{AttrName, AttrValue, Glsn, LogRecord};
use dla_logstore::schema::Schema;
use dla_logstore::store::{FragmentStore, GlsnAllocator};
use dla_net::latency::LatencyModel;
use dla_net::wire::{Reader, Writer};
use dla_net::{NetConfig, NodeId, ReliableConfig, SharedNet, SimNet};
use parking_lot::{MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration for [`DlaCluster::new`].
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of DLA nodes.
    pub nodes: usize,
    /// The attribute universe.
    pub schema: Schema,
    /// Attribute-to-node assignment; defaults to round-robin.
    pub partition: Option<Partition>,
    /// RNG seed (key generation, masks, network sampling).
    pub seed: u64,
    /// Link latency model.
    pub latency: LatencyModel,
    /// Maximum number of application users that can register.
    pub max_users: usize,
    /// Capture every network payload for leak-inspection tests.
    pub capture_payloads: bool,
    /// Directory for per-node + cluster journals; enables crash-safe
    /// durability and [`DlaCluster`] restart recovery.
    pub journal_dir: Option<std::path::PathBuf>,
    /// Ship every fragment to its owner's ring successor as a standby
    /// copy at log time, enabling [`DlaCluster::rereplicate`] after a
    /// node loss. Off by default (costs one extra message per fragment).
    pub standby_replication: bool,
    /// How ring protocols push each hop's element set through the
    /// commutative cipher. Serial by default; `Pooled` spreads the
    /// exponentiations over worker threads without changing a byte of
    /// any transcript.
    pub batch_mode: BatchMode,
    /// Which exponentiation ladder the commutative cipher runs on.
    /// Defaults to the accelerated fixed-width kernel; the slower
    /// ladders stay available as differential oracles — every algorithm
    /// produces identical ciphertexts and transcripts.
    pub exp_algo: ExpAlgo,
    /// Glsns per trail epoch (the sharding grain). Deposits are
    /// assigned to epochs at allocation time; when the open epoch rolls
    /// forward, earlier epochs are sealed and their accumulator digests
    /// checkpointed. Defaults to 1024.
    pub epoch_length: u64,
    /// ARQ retransmission tuning (base timeout, retry budget, jitter
    /// seed) used when queries run through the reliable transport
    /// wrapper — see [`DlaCluster::resilient_policy`].
    pub retransmit: ReliableConfig,
    /// Failure-detector tuning: heartbeat suspicion threshold and
    /// per-probe timeout.
    pub health: crate::health::HealthConfig,
    /// First glsn this cluster allocates (and its epoch policy's base).
    /// Defaults to the paper's first glsn; a federated sub-ring sets
    /// its [`dla_logstore::epoch::RingNamespace`] span base here so
    /// every ring draws from a disjoint glsn range.
    pub glsn_base: Option<Glsn>,
}

impl ClusterConfig {
    /// A cluster of `nodes` DLA nodes over `schema`.
    #[must_use]
    pub fn new(nodes: usize, schema: Schema) -> Self {
        ClusterConfig {
            nodes,
            schema,
            partition: None,
            seed: 0,
            latency: LatencyModel::Zero,
            max_users: 8,
            capture_payloads: false,
            journal_dir: None,
            standby_replication: false,
            batch_mode: BatchMode::Serial,
            exp_algo: ExpAlgo::default(),
            epoch_length: 1024,
            retransmit: ReliableConfig::default(),
            health: crate::health::HealthConfig::default(),
            glsn_base: None,
        }
    }

    /// Sets the first glsn the cluster allocates and bases its epochs
    /// at — the knob a federation turns to give each sub-ring its own
    /// glsn span (see [`dla_logstore::epoch::RingNamespace`]).
    #[must_use]
    pub fn with_glsn_base(mut self, base: Glsn) -> Self {
        self.glsn_base = Some(base);
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the latency model.
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets an explicit partition.
    #[must_use]
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partition = Some(partition);
        self
    }

    /// Sets the user capacity.
    #[must_use]
    pub fn with_max_users(mut self, max_users: usize) -> Self {
        self.max_users = max_users;
        self
    }

    /// Enables network payload capture (leak-inspection tests).
    #[must_use]
    pub fn with_payload_capture(mut self) -> Self {
        self.capture_payloads = true;
        self
    }

    /// Enables journal-backed durability under `dir`: every node's
    /// fragments/ACL plus the cluster's deposits, origin signatures and
    /// ticket counter survive a restart (rebuild with the same config
    /// and directory).
    #[must_use]
    pub fn with_journal_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.journal_dir = Some(dir.into());
        self
    }

    /// Selects the crypto batch mode for ring protocols (default
    /// [`BatchMode::Serial`]). Answers, transcripts and telemetry op
    /// totals are identical in every mode.
    #[must_use]
    pub fn with_batch_mode(mut self, batch_mode: BatchMode) -> Self {
        self.batch_mode = batch_mode;
        self
    }

    /// Selects the exponentiation algorithm for the cluster's
    /// commutative cipher (default [`ExpAlgo::Accel`]). Answers,
    /// transcripts and telemetry op totals are identical for every
    /// algorithm; only the arithmetic route differs.
    #[must_use]
    pub fn with_exp_algo(mut self, exp_algo: ExpAlgo) -> Self {
        self.exp_algo = exp_algo;
        self
    }

    /// Enables standby fragment replication: at log time each fragment
    /// is also shipped to the owning node's ring successor
    /// (`(node + 1) % n`), where it waits journaled-but-inactive until
    /// [`DlaCluster::rereplicate`] promotes it after a node loss.
    #[must_use]
    pub fn with_standby_replication(mut self) -> Self {
        self.standby_replication = true;
        self
    }

    /// Sets the epoch length (glsns per trail epoch). Small values make
    /// epochs roll (and seal) quickly — useful for tests; production
    /// defaults to 1024.
    #[must_use]
    pub fn with_epoch_length(mut self, epoch_length: u64) -> Self {
        self.epoch_length = epoch_length;
        self
    }

    /// Sets the ARQ retransmission tuning (base timeout, retry budget,
    /// jitter seed) that [`DlaCluster::resilient_policy`] hands to the
    /// reliable transport wrapper.
    #[must_use]
    pub fn with_retransmit(mut self, retransmit: ReliableConfig) -> Self {
        self.retransmit = retransmit;
        self
    }

    /// Sets the failure-detector tuning (heartbeat suspicion threshold
    /// and per-probe timeout).
    #[must_use]
    pub fn with_health(mut self, health: crate::health::HealthConfig) -> Self {
        self.health = health;
        self
    }
}

/// Running per-epoch statistics kept by the cluster: deposit count,
/// glsn/time extents (the epoch-pruning index), and the epoch's own
/// accumulator over its deposit items.
#[derive(Clone, Debug)]
pub struct EpochStats {
    /// The epoch.
    pub epoch: EpochId,
    /// Deposits assigned to this epoch.
    pub deposits: u64,
    /// Smallest glsn deposited (`Glsn(u64::MAX)` while empty).
    pub glsn_lo: Glsn,
    /// Largest glsn deposited (`Glsn(0)` while empty).
    pub glsn_hi: Glsn,
    /// Smallest `time` attribute among the epoch's records, if any
    /// carried one.
    pub time_lo: Option<u64>,
    /// Largest `time` attribute among the epoch's records.
    pub time_hi: Option<u64>,
    /// Deposits that carried a `time` attribute. When equal to
    /// `deposits`, `[time_lo, time_hi]` bounds *every* record in the
    /// epoch — the precondition for answering a time-windowed aggregate
    /// from cached partials without consulting the fragments.
    pub timed: u64,
    /// The epoch accumulator: fold of `trail_item(glsn, deposit)` for
    /// every deposit in the epoch, from `x₀`. Checkpointed on seal.
    pub acc: Ubig,
    /// Whether the epoch has been sealed (digest checkpointed; no
    /// further deposits accepted).
    pub sealed: bool,
}

impl EpochStats {
    fn open(epoch: EpochId, acc0: Ubig) -> Self {
        EpochStats {
            epoch,
            deposits: 0,
            glsn_lo: Glsn(u64::MAX),
            glsn_hi: Glsn(0),
            time_lo: None,
            time_hi: None,
            timed: 0,
            acc: acc0,
            sealed: false,
        }
    }

    fn observe(&mut self, glsn: Glsn, time: Option<u64>) {
        self.deposits += 1;
        self.glsn_lo = self.glsn_lo.min(glsn);
        self.glsn_hi = self.glsn_hi.max(glsn);
        if let Some(t) = time {
            self.timed += 1;
            self.time_lo = Some(self.time_lo.map_or(t, |lo| lo.min(t)));
            self.time_hi = Some(self.time_hi.map_or(t, |hi| hi.max(t)));
        }
    }
}

/// Commitment to the cluster-wide materialized aggregates of `epoch`:
/// a domain-tagged hash over every node's canonical
/// [`dla_logstore::epoch::EpochPartials`] encoding, in node order.
/// Folded into the epoch's checkpoint link
/// ([`CheckpointChain::seal_with_aggregates`]) so a cached partial
/// consulted by a windowed aggregate query is integrity-checked
/// against the published chain, never trusted. Nodes that never
/// materialized contribute their live recompute — a pure function of
/// their fragments, so the commitment is reproducible on restore.
#[must_use]
pub fn epoch_aggregates_digest(nodes: &[DlaNode], epoch: EpochId) -> [u8; 32] {
    let epoch_be = epoch.0.to_be_bytes();
    let encodings: Vec<Vec<u8>> = nodes
        .iter()
        .map(|node| {
            let store = node.store();
            store.epoch_partials(epoch).map_or_else(
                || store.compute_partials(epoch).encode(),
                dla_logstore::epoch::EpochPartials::encode,
            )
        })
        .collect();
    let mut parts: Vec<&[u8]> = Vec::with_capacity(encodings.len() + 2);
    parts.push(b"dla-epoch-aggregates");
    parts.push(&epoch_be);
    for encoding in &encodings {
        parts.push(encoding);
    }
    dla_crypto::sha256::digest_parts(&parts)
}

/// The trail item folded into epoch and whole-trail accumulators for
/// one deposit: domain-tagged `glsn ‖ deposit` bytes.
pub(crate) fn trail_item(glsn: Glsn, deposit: &Ubig) -> Vec<u8> {
    let mut out = Vec::with_capacity(80);
    out.extend_from_slice(b"dla-trail-item");
    out.extend_from_slice(&glsn.0.to_be_bytes());
    out.extend_from_slice(&deposit.to_bytes_be());
    out
}

/// One dead node's fragments finding a new home during
/// [`DlaCluster::rereplicate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeAdoption {
    /// The node declared dead.
    pub dead: usize,
    /// The surviving ring successor that promoted its standbys.
    pub adopter: usize,
    /// How many standby fragments were promoted to served copies.
    pub promoted: usize,
}

/// Outcome of [`DlaCluster::rereplicate`]: which nodes were adopted by
/// whom, and the per-record accumulator verdicts over the survivor set.
#[derive(Debug, Clone)]
pub struct RereplicationReport {
    /// Adoptions performed, in retirement order.
    pub adoptions: Vec<NodeAdoption>,
    /// Records whose survivor-set circulation reproduced the deposit.
    pub verified: Vec<Glsn>,
    /// Records the survivors could **not** prove intact (standby copy
    /// missing, lost with its holder, or tampered).
    pub failed: Vec<Glsn>,
}

impl RereplicationReport {
    /// Whether every logged record survived the repair provably intact.
    #[must_use]
    pub fn is_fully_verified(&self) -> bool {
        self.failed.is_empty()
    }
}

/// The immutable, shareable cluster context: schema, partition and
/// crypto domains. Every concurrent subquery session reads these
/// without coordination — only per-node stores and the network carry
/// mutable state.
#[derive(Debug)]
pub struct ClusterCtx {
    schema: Schema,
    partition: Partition,
    group: SchnorrGroup,
    domain: CommutativeDomain,
    acc_params: AccumulatorParams,
    batch_mode: BatchMode,
}

impl ClusterCtx {
    /// The schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The attribute partition.
    #[must_use]
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// The Schnorr group (tickets, signatures).
    #[must_use]
    pub fn group(&self) -> &SchnorrGroup {
        &self.group
    }

    /// The commutative-encryption domain shared by the cluster.
    #[must_use]
    pub fn domain(&self) -> &CommutativeDomain {
        &self.domain
    }

    /// The accumulator parameters (§4.1).
    #[must_use]
    pub fn accumulator_params(&self) -> &AccumulatorParams {
        &self.acc_params
    }

    /// The configured crypto batch mode for ring protocols.
    #[must_use]
    pub fn batch_mode(&self) -> BatchMode {
        self.batch_mode
    }
}

/// One DLA node: its fragment store plus the attributes it serves.
///
/// The store sits behind a read/write lock so concurrent subquery
/// sessions can scan different (or the same) nodes from worker threads
/// while mutation (logging, tampering test hooks) takes the write lock.
pub struct DlaNode {
    id: usize,
    attrs: Vec<AttrName>,
    store: RwLock<FragmentStore>,
}

impl fmt::Debug for DlaNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DlaNode(P{}, attrs: {:?}, fragments: {})",
            self.id,
            self.attrs.iter().map(AttrName::as_str).collect::<Vec<_>>(),
            self.store.read().len()
        )
    }
}

impl DlaNode {
    /// The node index.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// The attributes this node serves (`A_i`).
    #[must_use]
    pub fn supported_attributes(&self) -> &[AttrName] {
        &self.attrs
    }

    /// Read access to the node's fragment store.
    pub fn store(&self) -> RwLockReadGuard<'_, FragmentStore> {
        self.store.read()
    }

    /// Write access to the store (protocol machinery and test hooks).
    pub fn store_mut(&self) -> RwLockWriteGuard<'_, FragmentStore> {
        self.store.write()
    }
}

/// A registered application user (`u_j ∈ U`).
#[derive(Debug)]
pub struct AppUser {
    /// Display name.
    pub name: String,
    /// The user's network endpoint.
    pub node: NodeId,
    /// The user's ticket for logging/querying.
    pub ticket: Ticket,
    key: SchnorrKeyPair,
}

impl AppUser {
    /// The user's signing key (ticket holder key).
    #[must_use]
    pub fn key(&self) -> &SchnorrKeyPair {
        &self.key
    }
}

/// The assembled DLA cluster.
pub struct DlaCluster {
    ctx: Arc<ClusterCtx>,
    nodes: Vec<DlaNode>,
    net: SharedNet,
    seed: u64,
    query_counter: AtomicU64,
    allocator: GlsnAllocator,
    authority: TicketAuthority,
    /// User-deposited accumulator values, replicated at every node
    /// (stored once here since replicas are identical by construction;
    /// integrity checking re-derives per-node views from fragments).
    deposits: BTreeMap<Glsn, Ubig>,
    /// Per-record origin attestations: the logging user's public key
    /// and its signature over (glsn ‖ deposit). Combined with the §4.1
    /// integrity circulation this gives **non-repudiation**: the user
    /// signed the accumulator value, and the accumulator binds every
    /// fragment.
    origins: BTreeMap<
        Glsn,
        (
            dla_crypto::schnorr::SchnorrPublicKey,
            dla_crypto::schnorr::Signature,
        ),
    >,
    cluster_journal: Option<dla_logstore::journal::Journal>,
    users: usize,
    max_users: usize,
    rng: StdRng,
    standby_replication: bool,
    /// ARQ tuning from the configuration (see
    /// [`ClusterConfig::with_retransmit`]).
    retransmit: ReliableConfig,
    /// Failure-detector tuning from the configuration.
    health: crate::health::HealthConfig,
    /// Retirement log: `(dead node, adopter)` in declaration order.
    /// The adopter serves the dead node's attributes from promoted
    /// standby fragments; [`DlaCluster::effective_partition`] replays
    /// this log over the configured partition.
    retired: Vec<(usize, usize)>,
    /// Tamper-evident journal of the cluster's own privileged actions
    /// (deposits, user registrations, re-replications, degraded-mode
    /// decisions).
    meta: crate::meta::MetaAuditTrail,
    /// The epoch sharding policy shared with every node store.
    epoch_policy: EpochPolicy,
    /// Per-epoch stats: pruning index + running epoch accumulators.
    epoch_stats: BTreeMap<EpochId, EpochStats>,
    /// Hash-linked checkpoints of sealed epochs' accumulator digests.
    chain: CheckpointChain,
    /// The whole-trail accumulator (every deposit item, from `x₀`) —
    /// the unsharded baseline a full audit verifies against.
    trail_acc: Ubig,
    /// Items folded into `trail_acc`.
    trail_items: u64,
    /// Registered standing queries, evaluated incrementally at every
    /// epoch seal (see [`crate::standing`]).
    standing: crate::standing::StandingRegistry,
}

impl fmt::Debug for DlaCluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DlaCluster({} nodes, {} users, {} records)",
            self.nodes.len(),
            self.users,
            self.deposits.len()
        )
    }
}

impl DlaCluster {
    /// Builds a cluster.
    ///
    /// Network layout: indices `0..n` are DLA nodes, `n` is the auditor
    /// engine, `n+1` a dedicated blind-TTP helper, and `n+2..` user
    /// endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError`] if the partition is invalid for the
    /// schema or `nodes == 0`.
    pub fn new(config: ClusterConfig) -> Result<Self, AuditError> {
        if config.nodes == 0 {
            return Err(AuditError::Config("cluster needs at least one node".into()));
        }
        let partition = match config.partition {
            Some(p) => {
                if p.num_nodes() != config.nodes {
                    return Err(AuditError::Config(format!(
                        "partition covers {} nodes but cluster has {}",
                        p.num_nodes(),
                        config.nodes
                    )));
                }
                p
            }
            None => Partition::round_robin(&config.schema, config.nodes)
                .map_err(|e| AuditError::Config(e.to_string()))?,
        };
        let mut rng = StdRng::seed_from_u64(config.seed);
        let group = SchnorrGroup::fixed_256();
        let glsn_base = config
            .glsn_base
            .unwrap_or_else(|| EpochPolicy::paper_default().base());
        let epoch_policy = EpochPolicy::new(glsn_base, config.epoch_length);
        let nodes: Vec<DlaNode> = (0..config.nodes)
            .map(|i| {
                let store = match &config.journal_dir {
                    Some(dir) => {
                        std::fs::create_dir_all(dir)
                            .map_err(|e| AuditError::Config(format!("journal dir: {e}")))?;
                        FragmentStore::restore_with_policy(
                            i,
                            &dir.join(format!("node-{i}.journal")),
                            epoch_policy,
                        )
                        .map_err(|e| AuditError::Config(e.to_string()))?
                    }
                    None => FragmentStore::with_policy(i, epoch_policy),
                };
                Ok(DlaNode {
                    id: i,
                    attrs: partition.attrs_of(i).to_vec(),
                    store: RwLock::new(store),
                })
            })
            .collect::<Result<_, AuditError>>()?;
        let mut net_config = NetConfig::ideal()
            .with_latency(config.latency)
            .with_seed(config.seed);
        net_config.capture_payloads = config.capture_payloads;
        let net = SimNet::new(config.nodes + 2 + config.max_users, net_config);

        // Replay cluster-level durable state: deposits + origin
        // signatures + the ticket-id high-water mark.
        let mut authority = TicketAuthority::new(&group, &mut rng);
        let mut deposits = BTreeMap::new();
        let mut origins = BTreeMap::new();
        let mut times: BTreeMap<Glsn, u64> = BTreeMap::new();
        let mut sealed_epochs: Vec<EpochId> = Vec::new();
        let mut next_glsn: Option<Glsn> = None;
        let cluster_journal = match &config.journal_dir {
            Some(dir) => {
                let (journal, entries) =
                    dla_logstore::journal::Journal::open(&dir.join("cluster.journal"))
                        .map_err(|e| AuditError::Config(e.to_string()))?;
                for entry in entries {
                    let dla_logstore::journal::JournalEntry::Blob { tag, bytes } = entry else {
                        continue;
                    };
                    match tag {
                        BLOB_DEPOSIT => {
                            let (glsn, deposit, public, signature, time) =
                                decode_deposit_blob(&bytes)?;
                            next_glsn = Some(
                                next_glsn.map_or(Glsn(glsn.0 + 1), |g| Glsn(g.0.max(glsn.0 + 1))),
                            );
                            deposits.insert(glsn, deposit);
                            origins.insert(glsn, (public, signature));
                            if let Some(t) = time {
                                times.insert(glsn, t);
                            }
                        }
                        BLOB_TICKET_COUNTER => {
                            if let Ok(raw) = bytes.as_slice().try_into() {
                                authority.resume_from(u64::from_be_bytes(raw));
                            }
                        }
                        BLOB_EPOCH_SEAL => {
                            if let Ok(raw) = bytes.as_slice().try_into() {
                                sealed_epochs.push(EpochId(u64::from_be_bytes(raw)));
                            }
                        }
                        _ => {}
                    }
                }
                Some(journal)
            }
            None => None,
        };
        let allocator = match next_glsn {
            Some(glsn) => GlsnAllocator::starting_at(glsn),
            None => GlsnAllocator::starting_at(glsn_base),
        };

        let acc_params = AccumulatorParams::fixed_512();

        // Rebuild the epoch index from the replayed deposits: refold
        // each epoch's accumulator (and the whole-trail one) in glsn
        // order, then re-seal in the journaled order so the checkpoint
        // chain's links are reproduced bit for bit.
        let mut epoch_stats: BTreeMap<EpochId, EpochStats> = BTreeMap::new();
        let mut trail_acc = acc_params.start().clone();
        let mut trail_items = 0u64;
        for (glsn, deposit) in &deposits {
            let epoch = epoch_policy.epoch_of(*glsn);
            let stats = epoch_stats
                .entry(epoch)
                .or_insert_with(|| EpochStats::open(epoch, acc_params.start().clone()));
            stats.observe(*glsn, times.get(glsn).copied());
            let item = trail_item(*glsn, deposit);
            let folded = acc_params.fold_batch(&[stats.acc.clone(), trail_acc], &[&item]);
            let [epoch_acc, new_trail]: [Ubig; 2] =
                folded.try_into().expect("fold_batch preserves arity");
            stats.acc = epoch_acc;
            trail_acc = new_trail;
            trail_items += 1;
        }
        let mut chain = CheckpointChain::new();
        for epoch in sealed_epochs {
            let stats = epoch_stats
                .entry(epoch)
                .or_insert_with(|| EpochStats::open(epoch, acc_params.start().clone()));
            stats.sealed = true;
            // Re-materialize each node's aggregate partials (idempotent
            // — restore already rebuilt journaled ones from the
            // surviving fragments) so the aggregate commitment, and
            // with it every chain link, is reproduced bit for bit.
            for node in &nodes {
                node.store_mut()
                    .materialize_partials(epoch)
                    .map_err(|e| AuditError::Log(e.to_string()))?;
            }
            let aggregates = epoch_aggregates_digest(&nodes, epoch);
            chain.seal_with_aggregates(epoch.0, stats.deposits, stats.acc.clone(), aggregates);
        }

        Ok(DlaCluster {
            meta: crate::meta::MetaAuditTrail::new(acc_params.clone()),
            ctx: Arc::new(ClusterCtx {
                schema: config.schema,
                partition,
                group,
                domain: CommutativeDomain::fixed_256().with_exp_algo(config.exp_algo),
                acc_params,
                batch_mode: config.batch_mode,
            }),
            nodes,
            net: SharedNet::new(net),
            seed: config.seed,
            query_counter: AtomicU64::new(0),
            allocator,
            authority,
            deposits,
            origins,
            cluster_journal,
            users: 0,
            max_users: config.max_users,
            rng,
            standby_replication: config.standby_replication,
            retransmit: config.retransmit,
            health: config.health,
            retired: Vec::new(),
            epoch_policy,
            epoch_stats,
            chain,
            trail_acc,
            trail_items,
            standing: crate::standing::StandingRegistry::default(),
        })
    }

    /// The immutable shared context (schema, partition, crypto
    /// domains). Cheap to clone out for worker threads.
    #[must_use]
    pub fn ctx(&self) -> &Arc<ClusterCtx> {
        &self.ctx
    }

    /// The schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.ctx.schema
    }

    /// The attribute partition.
    #[must_use]
    pub fn partition(&self) -> &Partition {
        &self.ctx.partition
    }

    /// The DLA nodes.
    #[must_use]
    pub fn nodes(&self) -> &[DlaNode] {
        &self.nodes
    }

    /// One DLA node.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn node(&self, i: usize) -> &DlaNode {
        &self.nodes[i]
    }

    /// Mutable node access (test hooks, protocol internals). Node
    /// stores use interior mutability, so most callers only need
    /// [`DlaNode::store_mut`] on a shared reference; this remains for
    /// exclusive access.
    pub fn node_mut(&mut self, i: usize) -> &mut DlaNode {
        &mut self.nodes[i]
    }

    /// Number of DLA nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The auditor engine's network id.
    #[must_use]
    pub fn auditor_node(&self) -> NodeId {
        NodeId(self.nodes.len())
    }

    /// The resilience policy derived from this cluster's configuration:
    /// the configured ARQ retransmission tuning and failure-detector
    /// thresholds, defaults for everything else. Pass it to
    /// [`DlaCluster::query_resilient`] (or tweak the returned value
    /// first) instead of re-stating the constants at every call site.
    #[must_use]
    pub fn resilient_policy(&self) -> crate::exec::ResilientPolicy {
        crate::exec::ResilientPolicy {
            reliable: Some(self.retransmit),
            health: self.health.clone(),
            ..crate::exec::ResilientPolicy::default()
        }
    }

    /// The dedicated blind-TTP helper's network id.
    #[must_use]
    pub fn ttp_node(&self) -> NodeId {
        NodeId(self.nodes.len() + 1)
    }

    /// The network id of DLA node `i`.
    #[must_use]
    pub fn dla_node_id(&self, i: usize) -> NodeId {
        NodeId(i)
    }

    /// The commutative-encryption domain shared by the cluster.
    #[must_use]
    pub fn domain(&self) -> &CommutativeDomain {
        &self.ctx.domain
    }

    /// The Schnorr group (tickets, signatures).
    #[must_use]
    pub fn group(&self) -> &SchnorrGroup {
        &self.ctx.group
    }

    /// The accumulator parameters (§4.1).
    #[must_use]
    pub fn accumulator_params(&self) -> &AccumulatorParams {
        &self.ctx.acc_params
    }

    /// Locks the network (stats, clocks, fault inspection). The guard
    /// dereferences to [`SimNet`].
    ///
    /// The lock is not reentrant: bind the guard once rather than
    /// calling `net()` twice within a single expression (the second
    /// call would block on the lock the first still holds).
    pub fn net(&self) -> MutexGuard<'_, SimNet> {
        self.net.lock()
    }

    /// Mutable network access (same lock as [`DlaCluster::net`]; the
    /// name survives from the pre-session API).
    pub fn net_mut(&self) -> MutexGuard<'_, SimNet> {
        self.net.lock()
    }

    /// The session-multiplexed shared transport the cluster runs over.
    #[must_use]
    pub fn shared_net(&self) -> &SharedNet {
        &self.net
    }

    /// Installs a Byzantine [`dla_net::adversary::Adversary`] on the
    /// cluster's network: selected nodes start lying on the wire (their
    /// forgeries re-stamped with valid checksums). See
    /// [`crate::adversary`] for the scenario runner built on this.
    pub fn set_adversary(&self, adversary: std::sync::Arc<dyn dla_net::adversary::Adversary>) {
        self.net.lock().set_adversary(adversary);
    }

    /// Removes any installed adversary; the cluster is honest again.
    pub fn clear_adversary(&self) {
        self.net.lock().clear_adversary();
    }

    /// Borrows the network and RNG together (protocol modules need
    /// both mutably alongside node state).
    pub(crate) fn net_and_rng(&mut self) -> (MutexGuard<'_, SimNet>, &mut StdRng) {
        (self.net.lock(), &mut self.rng)
    }

    /// The cluster RNG (seeding derived per-session generators).
    pub(crate) fn rng_mut(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Allocates a fresh query index (deterministic per-query seed
    /// derivation for [`DlaCluster::query_shared`]).
    pub(crate) fn next_query_index(&self) -> u64 {
        self.query_counter.fetch_add(1, Ordering::Relaxed)
    }

    /// The configured base seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The tamper-evident journal of the cluster's own actions
    /// (deposits, registrations, re-replications, degraded-mode
    /// decisions). Verify it with [`crate::meta::MetaAuditTrail::verify`].
    #[must_use]
    pub fn meta_audit(&self) -> &crate::meta::MetaAuditTrail {
        &self.meta
    }

    /// Journals one privileged cluster action at the current virtual
    /// time, mirroring it as a telemetry event when a recorder is
    /// active.
    pub(crate) fn meta_log(&mut self, actor: &str, action: &str, detail: String) {
        let at_ns = self.net.lock().elapsed().as_nanos();
        if dla_telemetry::is_active() {
            dla_telemetry::event(
                "meta-audit",
                at_ns,
                &[("actor", actor), ("action", action), ("detail", &detail)],
            );
        }
        self.meta.record(at_ns, actor, action, detail);
    }

    /// The deposited accumulator value for a glsn.
    #[must_use]
    pub fn deposit(&self, glsn: Glsn) -> Option<&Ubig> {
        self.deposits.get(&glsn)
    }

    /// All glsns with deposits (i.e. every record logged).
    #[must_use]
    pub fn logged_glsns(&self) -> Vec<Glsn> {
        self.deposits.keys().copied().collect()
    }

    /// The epoch sharding policy in force.
    #[must_use]
    pub fn epoch_policy(&self) -> EpochPolicy {
        self.epoch_policy
    }

    /// The hash-linked chain of sealed-epoch checkpoints.
    #[must_use]
    pub fn checkpoint_chain(&self) -> &CheckpointChain {
        &self.chain
    }

    /// Iterates the per-epoch stats in epoch order.
    pub fn epoch_stats(&self) -> impl Iterator<Item = &EpochStats> {
        self.epoch_stats.values()
    }

    /// The stats for one epoch, if any deposit landed in it.
    #[must_use]
    pub fn epoch_stat(&self, epoch: EpochId) -> Option<&EpochStats> {
        self.epoch_stats.get(&epoch)
    }

    /// The whole-trail accumulator (fold of every deposit item).
    #[must_use]
    pub fn trail_accumulator(&self) -> &Ubig {
        &self.trail_acc
    }

    /// Items folded into the whole-trail accumulator.
    #[must_use]
    pub fn trail_items(&self) -> u64 {
        self.trail_items
    }

    /// Test hook: rewrites the stored deposit for `glsn` without
    /// touching accumulators or checkpoints — a compromised deposit
    /// map for the windowed-verification tests.
    #[cfg(test)]
    pub(crate) fn tamper_deposit_for_tests(&mut self, glsn: Glsn, deposit: Ubig) {
        self.deposits.insert(glsn, deposit);
    }

    /// The glsn range scans need to cover for a query confined to
    /// `window`: the union of glsn extents over epochs whose observed
    /// time range intersects it.
    ///
    /// `None` means "no pruning" (window unbounded). Epochs that never
    /// saw a `time` attribute are excluded — records without a time
    /// cannot satisfy a time predicate under the lenient §5 evaluation,
    /// so skipping them never drops an answer. When no epoch intersects,
    /// the inverted sentinel `(Glsn(1), Glsn(0))` is returned: scans see
    /// an empty range.
    #[must_use]
    pub fn glsn_window_for(&self, window: &crate::plan::TimeWindow) -> Option<(Glsn, Glsn)> {
        if window.is_unbounded() {
            return None;
        }
        let mut out: Option<(Glsn, Glsn)> = None;
        for stats in self.epoch_stats.values() {
            let (Some(t_lo), Some(t_hi)) = (stats.time_lo, stats.time_hi) else {
                continue;
            };
            if !window.intersects(t_lo, t_hi) {
                continue;
            }
            out = Some(match out {
                None => (stats.glsn_lo, stats.glsn_hi),
                Some((lo, hi)) => (lo.min(stats.glsn_lo), hi.max(stats.glsn_hi)),
            });
        }
        Some(out.unwrap_or((Glsn(1), Glsn(0))))
    }

    /// Registers an application user: generates a key pair and issues a
    /// read/write ticket.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Config`] when user capacity is exhausted.
    pub fn register_user(&mut self, name: &str) -> Result<AppUser, AuditError> {
        if self.users >= self.max_users {
            return Err(AuditError::Config(format!(
                "user capacity {} exhausted",
                self.max_users
            )));
        }
        let node = NodeId(self.nodes.len() + 2 + self.users);
        self.users += 1;
        let key = SchnorrKeyPair::generate(&self.ctx.group, &mut self.rng);
        let ticket = self
            .authority
            .issue(key.public(), OperationSet::read_write(), &mut self.rng);
        if let Some(journal) = &mut self.cluster_journal {
            journal
                .append(&dla_logstore::journal::JournalEntry::Blob {
                    tag: BLOB_TICKET_COUNTER,
                    bytes: self.authority.issued().to_be_bytes().to_vec(),
                })
                .map_err(|e| AuditError::Config(e.to_string()))?;
        }
        self.meta_log(
            "cluster",
            "register-user",
            format!("name={name} node={node}"),
        );
        Ok(AppUser {
            name: name.to_owned(),
            node,
            ticket,
            key,
        })
    }

    /// Logs one record on behalf of `user` (Fig. 2's distributed
    /// logging): a fresh glsn is assigned, the record fragmented, each
    /// fragment shipped to its DLA node over the network, and the
    /// record's one-way-accumulator value deposited at every node.
    ///
    /// The record's own `glsn` field is ignored and replaced.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError`] on schema violations or storage failures.
    pub fn log_record(&mut self, user: &AppUser, record: &LogRecord) -> Result<Glsn, AuditError> {
        let glsns = self.log_records(user, std::slice::from_ref(record))?;
        Ok(glsns[0])
    }

    /// The shipping leg of one deposit: everything with per-record
    /// network behavior (fragment shipping, standby copies, deposit
    /// broadcast, origin signature). Durability and accumulator folds
    /// are deferred to [`DlaCluster::flush_deposit_batch`]: journal
    /// frames collect in `blobs`, trail items in per-epoch `groups`.
    fn ship_one(
        &mut self,
        user: &AppUser,
        record: &LogRecord,
        blobs: &mut Vec<dla_logstore::journal::JournalEntry>,
        groups: &mut BTreeMap<EpochId, Vec<Vec<u8>>>,
    ) -> Result<Glsn, AuditError> {
        self.ctx
            .schema
            .validate(record)
            .map_err(|e| AuditError::Log(e.to_string()))?;
        let glsn = self.allocator.allocate();
        let mut stamped = LogRecord::new(glsn);
        for (name, value) in record.iter() {
            stamped.insert(name.clone(), value.clone());
        }
        let fragments = fragment(&stamped, &self.ctx.partition);

        // The user computes the deposit over all fragments (§4.1:
        // "it also computes the one-way accumulator of all fragments").
        let deposit = self.ctx.acc_params.accumulate(
            fragments
                .iter()
                .map(Fragment::to_canonical_bytes)
                .collect::<Vec<_>>()
                .iter()
                .map(Vec::as_slice),
        );

        // Ship each fragment to its node.
        let standby_to = |node: usize| (node + 1) % self.nodes.len();
        let ship_standby = self.standby_replication && self.nodes.len() >= 2;
        for frag in fragments {
            let node = frag.node;
            let standby = ship_standby.then(|| frag.clone());
            let mut w = Writer::new();
            w.put_u8(0x20)
                .put_u64(glsn.0)
                .put_bytes(&frag.to_canonical_bytes());
            let mut net = self.net.lock();
            net.send(user.node, NodeId(node), w.finish());
            let envelope = net
                .recv_from(NodeId(node), user.node)
                .map_err(AuditError::Net)?;
            drop(net);
            let mut r = Reader::new(&envelope.payload);
            let _ = r.get_u8().map_err(|e| AuditError::Log(e.to_string()))?;
            // The wire carries canonical bytes for accounting realism;
            // the store ingests the structured fragment directly (a
            // full codec for records adds nothing to the protocols
            // under study).
            self.nodes[node]
                .store_mut()
                .write(&user.ticket, frag)
                .map_err(|e| AuditError::Log(e.to_string()))?;
            // The owner forwards a standby copy to its ring successor,
            // which journals it inactive until promotion.
            if let Some(standby) = standby {
                let successor = standby_to(node);
                let mut w = Writer::new();
                w.put_u8(0x23)
                    .put_u64(glsn.0)
                    .put_bytes(&standby.to_canonical_bytes());
                let mut net = self.net.lock();
                net.send(NodeId(node), NodeId(successor), w.finish());
                let _ = net
                    .recv_from(NodeId(successor), NodeId(node))
                    .map_err(AuditError::Net)?;
                drop(net);
                self.nodes[successor]
                    .store_mut()
                    .store_standby(standby)
                    .map_err(|e| AuditError::Log(e.to_string()))?;
            }
        }

        // The user signs (glsn ‖ deposit): non-repudiation of the whole
        // record, since the deposit binds every fragment (§4.1).
        let origin_sig = user
            .key()
            .sign(&origin_message(glsn, &deposit), &mut self.rng);

        // Deposit + origin signature broadcast to every node.
        for node in 0..self.nodes.len() {
            let mut w = Writer::new();
            w.put_u8(0x21)
                .put_u64(glsn.0)
                .put_bytes(&deposit.to_bytes_be())
                .put_bytes(&origin_sig.to_bytes());
            let mut net = self.net.lock();
            net.send(user.node, NodeId(node), w.finish());
            let _ = net
                .recv_from(NodeId(node), user.node)
                .map_err(AuditError::Net)?;
        }
        let time = stamped.get(&AttrName::new("time")).and_then(|v| match v {
            AttrValue::Time(t) => Some(*t),
            _ => None,
        });
        if self.cluster_journal.is_some() {
            blobs.push(dla_logstore::journal::JournalEntry::Blob {
                tag: BLOB_DEPOSIT,
                bytes: encode_deposit_blob(glsn, &deposit, user.key().public(), &origin_sig, time),
            });
        }
        let epoch = self.epoch_policy.epoch_of(glsn);
        groups
            .entry(epoch)
            .or_default()
            .push(trail_item(glsn, &deposit));
        let acc0 = self.ctx.acc_params.start().clone();
        self.epoch_stats
            .entry(epoch)
            .or_insert_with(|| EpochStats::open(epoch, acc0))
            .observe(glsn, time);
        self.deposits.insert(glsn, deposit);
        self.origins
            .insert(glsn, (user.key().public().clone(), origin_sig));
        self.meta_log(
            "cluster",
            "deposit",
            format!("glsn={glsn} user={}", user.name),
        );
        Ok(glsn)
    }

    /// The amortized tail of a deposit batch: one accumulator fold per
    /// touched epoch (plus the whole-trail accumulator riding in the
    /// same [`AccumulatorParams::fold_batch`] call), epoch rollover
    /// sealing, and a single journal `append_batch` (one fsync for the
    /// whole batch instead of one per record).
    fn flush_deposit_batch(
        &mut self,
        mut blobs: Vec<dla_logstore::journal::JournalEntry>,
        groups: BTreeMap<EpochId, Vec<Vec<u8>>>,
    ) -> Result<(), AuditError> {
        if !groups.is_empty() {
            dla_telemetry::record(dla_telemetry::CostKind::DepositBatch, 1);
        }
        for (epoch, items) in &groups {
            let refs: Vec<&[u8]> = items.iter().map(Vec::as_slice).collect();
            let epoch_acc = self
                .epoch_stats
                .get(epoch)
                .expect("ship_one opened the epoch")
                .acc
                .clone();
            let folded = self
                .ctx
                .acc_params
                .fold_batch(&[epoch_acc, self.trail_acc.clone()], &refs);
            let [epoch_acc, trail_acc]: [Ubig; 2] =
                folded.try_into().expect("fold_batch preserves arity");
            self.epoch_stats
                .get_mut(epoch)
                .expect("ship_one opened the epoch")
                .acc = epoch_acc;
            self.trail_acc = trail_acc;
            self.trail_items += items.len() as u64;
        }
        // Rollover: the open epoch is the largest observed; every
        // unsealed epoch strictly below it can no longer grow (glsns
        // are monotonic), so checkpoint each one now.
        if let Some(&open) = self.epoch_stats.keys().next_back() {
            let to_seal: Vec<EpochId> = self
                .epoch_stats
                .iter()
                .filter(|(e, s)| **e < open && !s.sealed)
                .map(|(e, _)| *e)
                .collect();
            for epoch in to_seal {
                self.seal_epoch_cluster(epoch, &mut blobs)?;
            }
        }
        if let Some(journal) = &mut self.cluster_journal {
            journal
                .append_batch(&blobs)
                .map_err(|e| AuditError::Log(e.to_string()))?;
        }
        Ok(())
    }

    /// Seals `epoch` cluster-wide: materializes every node's aggregate
    /// partials, checkpoints the accumulator digest *and* the aggregate
    /// commitment on the hash chain, marks every node's manifest sealed
    /// (journaled per node), queues the cluster-journal seal record,
    /// and pushes incremental deltas to every standing query.
    fn seal_epoch_cluster(
        &mut self,
        epoch: EpochId,
        blobs: &mut Vec<dla_logstore::journal::JournalEntry>,
    ) -> Result<(), AuditError> {
        let (items, digest) = {
            let stats = self
                .epoch_stats
                .get_mut(&epoch)
                .expect("sealing an observed epoch");
            stats.sealed = true;
            (stats.deposits, stats.acc.clone())
        };
        // Cache the epoch's count/sum partials before sealing, so the
        // commitment below endorses exactly what windowed aggregate
        // queries will combine.
        for node in &self.nodes {
            node.store_mut()
                .materialize_partials(epoch)
                .map_err(|e| AuditError::Log(e.to_string()))?;
            dla_telemetry::record(dla_telemetry::CostKind::PartialMaterialize, 1);
        }
        let aggregates = epoch_aggregates_digest(&self.nodes, epoch);
        self.chain
            .seal_with_aggregates(epoch.0, items, digest, aggregates);
        for node in &self.nodes {
            node.store_mut()
                .seal_epoch(epoch)
                .map_err(|e| AuditError::Log(e.to_string()))?;
        }
        if self.cluster_journal.is_some() {
            blobs.push(dla_logstore::journal::JournalEntry::Blob {
                tag: BLOB_EPOCH_SEAL,
                bytes: epoch.0.to_be_bytes().to_vec(),
            });
        }
        dla_telemetry::record(dla_telemetry::CostKind::EpochSeal, 1);
        self.meta_log(
            "cluster",
            "epoch-seal",
            format!("epoch={epoch} items={items}"),
        );
        self.emit_standing_deltas(epoch)?;
        Ok(())
    }

    /// Registers a standing query (see [`crate::standing`]): the
    /// criteria is parsed, normalized and validated against the
    /// configured partition **once**; every subsequent epoch seal
    /// evaluates it over just the sealed epoch's glsn range and pushes
    /// a [`crate::standing::StandingDelta`]. Already-sealed epochs are
    /// caught up immediately, so a late subscriber converges to the
    /// same accumulated answer as one registered at genesis.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError`] on parse/plan failures, or if a catch-up
    /// evaluation fails.
    pub fn register_standing(
        &mut self,
        criteria: &str,
    ) -> Result<crate::standing::StandingQueryId, AuditError> {
        let parsed = crate::parser::parse(criteria, &self.ctx.schema)
            .map_err(|e| AuditError::Parse(e.to_string()))?;
        let normalized = crate::normal::normalize(&parsed);
        // Fail registration, not some later seal, on an unplannable
        // query.
        crate::plan::plan(&normalized, &self.ctx.partition)?;
        let id = self.standing.register(criteria, normalized);
        self.meta_log(
            "cluster",
            "standing-register",
            format!("query={id} criteria={criteria}"),
        );
        let sealed: Vec<EpochId> = self
            .epoch_stats
            .iter()
            .filter(|(_, s)| s.sealed)
            .map(|(e, _)| *e)
            .collect();
        for epoch in sealed {
            self.emit_standing_delta_for(id, epoch)?;
        }
        Ok(id)
    }

    /// Drains the deltas pushed to `id` since the last drain (seal
    /// order). Empty deltas are delivered too.
    pub fn standing_deltas(
        &mut self,
        id: crate::standing::StandingQueryId,
    ) -> Vec<crate::standing::StandingDelta> {
        self.standing.drain_deltas(id)
    }

    /// The accumulated matches of standing query `id` over every
    /// sealed epoch, sorted ascending. `None` for an unknown id.
    #[must_use]
    pub fn standing_matches(&self, id: crate::standing::StandingQueryId) -> Option<Vec<Glsn>> {
        self.standing.matches(id)
    }

    /// The standing-query registry (read access for reporting).
    #[must_use]
    pub fn standing(&self) -> &crate::standing::StandingRegistry {
        &self.standing
    }

    /// Evaluates every registered standing query against the freshly
    /// sealed `epoch`.
    fn emit_standing_deltas(&mut self, epoch: EpochId) -> Result<(), AuditError> {
        for id in self.standing.ids() {
            self.emit_standing_delta_for(id, epoch)?;
        }
        Ok(())
    }

    /// Evaluates standing query `id` over exactly `epoch`'s glsn range
    /// and pushes the resulting delta. Idempotent per (query, epoch).
    /// Runs under the cluster's ARQ configuration so seals during lossy
    /// operation still deliver deltas.
    fn emit_standing_delta_for(
        &mut self,
        id: crate::standing::StandingQueryId,
        epoch: EpochId,
    ) -> Result<(), AuditError> {
        if self.standing.evaluated(id, epoch) {
            return Ok(());
        }
        let clamp = {
            let stats = self
                .epoch_stats
                .get(&epoch)
                .expect("delta for an observed epoch");
            if stats.deposits == 0 {
                (Glsn(1), Glsn(0))
            } else {
                (stats.glsn_lo, stats.glsn_hi)
            }
        };
        let normalized = self
            .standing
            .normalized(id)
            .expect("delta for a registered query");
        let partition = self.effective_partition();
        let plan = crate::plan::plan(&normalized, &partition)?;
        // Deterministic per (cluster, query, epoch): re-evaluations and
        // restarted clusters replay identical protocol transcripts.
        let seed_digest = dla_crypto::sha256::digest_parts(&[
            b"dla-standing-seed",
            &self.seed.to_be_bytes(),
            &id.0.to_be_bytes(),
            &epoch.0.to_be_bytes(),
        ]);
        let query_seed = u64::from_be_bytes(seed_digest[..8].try_into().expect("sliced to 8"));
        let result = {
            let reliable = dla_net::Reliable::with_config(self.shared_net(), self.retransmit);
            crate::exec::execute_on_clamped(
                self,
                &reliable,
                &plan,
                true,
                crate::exec::ExecMode::default(),
                query_seed,
                Some(clamp),
            )?
        };
        let matched = result.glsns.len();
        self.standing.push_delta(id, epoch, result.glsns);
        dla_telemetry::record(dla_telemetry::CostKind::StandingDelta, 1);
        self.meta_log(
            "cluster",
            "standing-delta",
            format!("query={id} epoch={epoch} matches={matched}"),
        );
        Ok(())
    }

    /// Verifies the **non-repudiation** of a record: the logging user's
    /// signature over the deposited accumulator value. A `true` verdict
    /// plus a passing [`crate::integrity::check_record`] circulation
    /// means the user undeniably vouched for exactly the stored
    /// fragments.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Integrity`] if no origin record exists for
    /// `glsn`.
    pub fn verify_origin(&self, glsn: Glsn) -> Result<bool, AuditError> {
        let (public, signature) = self.origins.get(&glsn).ok_or_else(|| {
            AuditError::Integrity(format!("no origin attestation for glsn {glsn}"))
        })?;
        let deposit = self
            .deposits
            .get(&glsn)
            .ok_or_else(|| AuditError::Integrity(format!("no deposit for glsn {glsn}")))?;
        Ok(dla_crypto::schnorr::verify(
            &self.ctx.group,
            public,
            &origin_message(glsn, deposit),
            signature,
        ))
    }

    /// Logs a batch of records through the batched deposit pipeline:
    /// per-record network behavior is identical to logging one at a
    /// time, but journal fsyncs and accumulator folds are amortized —
    /// one `append_batch` and one fold per touched epoch for the whole
    /// call.
    ///
    /// # Errors
    ///
    /// As [`DlaCluster::log_record`]; stops at the first failure (the
    /// records already shipped are still committed and flushed).
    pub fn log_records(
        &mut self,
        user: &AppUser,
        records: &[LogRecord],
    ) -> Result<Vec<Glsn>, AuditError> {
        let mut glsns = Vec::with_capacity(records.len());
        let mut blobs = Vec::new();
        let mut groups: BTreeMap<EpochId, Vec<Vec<u8>>> = BTreeMap::new();
        let mut failure = None;
        for record in records {
            match self.ship_one(user, record, &mut blobs, &mut groups) {
                Ok(glsn) => glsns.push(glsn),
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        self.flush_deposit_batch(blobs, groups)?;
        match failure {
            Some(e) => Err(e),
            None => Ok(glsns),
        }
    }

    /// Parses, normalizes, plans and executes an auditing query,
    /// returning the satisfying glsns (computed distributively; see
    /// [`crate::exec`]).
    ///
    /// # Errors
    ///
    /// Returns [`AuditError`] on parse/plan/protocol failures.
    pub fn query(&mut self, criteria: &str) -> Result<crate::exec::QueryResult, AuditError> {
        let parsed = crate::parser::parse(criteria, &self.ctx.schema)
            .map_err(|e| AuditError::Parse(e.to_string()))?;
        self.query_criteria(&parsed)
    }

    /// Plans and executes an already-built criteria tree.
    ///
    /// # Errors
    ///
    /// As [`DlaCluster::query`].
    pub fn query_criteria(
        &mut self,
        criteria: &crate::query::Criteria,
    ) -> Result<crate::exec::QueryResult, AuditError> {
        criteria
            .check(&self.ctx.schema)
            .map_err(|e| AuditError::Parse(e.to_string()))?;
        let normalized = crate::normal::normalize(criteria);
        let plan = crate::plan::plan(&normalized, &self.ctx.partition)?;
        crate::exec::execute(self, &plan)
    }

    /// Like [`DlaCluster::query`], but on a **shared** reference, so
    /// many auditors can issue queries from separate threads at once.
    /// Every subquery (and the final conjunction) runs in its own
    /// transport session; per-query randomness derives from the cluster
    /// seed and an atomic query counter instead of the exclusive RNG.
    ///
    /// # Errors
    ///
    /// As [`DlaCluster::query`].
    pub fn query_shared(&self, criteria: &str) -> Result<crate::exec::QueryResult, AuditError> {
        let parsed = crate::parser::parse(criteria, &self.ctx.schema)
            .map_err(|e| AuditError::Parse(e.to_string()))?;
        parsed
            .check(&self.ctx.schema)
            .map_err(|e| AuditError::Parse(e.to_string()))?;
        let normalized = crate::normal::normalize(&parsed);
        let plan = crate::plan::plan(&normalized, &self.ctx.partition)?;
        let mut index = self.next_query_index().wrapping_add(0xA5A5_5A5A);
        let query_seed = self.seed ^ rand::splitmix64(&mut index);
        crate::exec::execute_shared(
            self,
            &plan,
            true,
            crate::exec::ExecMode::Concurrent,
            query_seed,
        )
    }

    /// Like [`DlaCluster::query`], but executed through the
    /// fault-tolerant ladder: ARQ-protected transport, whole-query
    /// retry with virtual-time backoff, failure detection, and
    /// degraded-mode re-planning over the survivor set (see
    /// [`crate::exec::execute_resilient`]).
    ///
    /// # Errors
    ///
    /// As [`DlaCluster::query`], plus a terminal network error once
    /// `policy.max_attempts` whole-query attempts are exhausted.
    pub fn query_resilient(
        &mut self,
        criteria: &str,
        policy: &crate::exec::ResilientPolicy,
    ) -> Result<crate::exec::ResilientOutcome, AuditError> {
        let parsed = crate::parser::parse(criteria, &self.ctx.schema)
            .map_err(|e| AuditError::Parse(e.to_string()))?;
        parsed
            .check(&self.ctx.schema)
            .map_err(|e| AuditError::Parse(e.to_string()))?;
        let normalized = crate::normal::normalize(&parsed);
        crate::exec::execute_resilient(self, &normalized, policy)
    }

    /// Whether standby fragment replication is enabled.
    #[must_use]
    pub fn standby_replication(&self) -> bool {
        self.standby_replication
    }

    /// Indices of nodes retired from service (declared dead and
    /// re-replicated away from).
    #[must_use]
    pub fn retired_nodes(&self) -> BTreeSet<usize> {
        self.retired.iter().map(|&(dead, _)| dead).collect()
    }

    /// The partition queries should currently be planned against: the
    /// configured partition with every retired node's attributes
    /// reassigned to its adopter, in retirement order.
    #[must_use]
    pub fn effective_partition(&self) -> Partition {
        let mut partition = self.ctx.partition.clone();
        for &(dead, adopter) in &self.retired {
            partition = partition
                .reassign(dead, adopter)
                .expect("retirement log records valid distinct node indices");
        }
        partition
    }

    /// The first surviving node clockwise from `dead`, skipping nodes
    /// in `also_dead` and already-retired nodes.
    fn adopter_of(&self, dead: usize, also_dead: &BTreeSet<usize>) -> Option<usize> {
        let n = self.nodes.len();
        let retired = self.retired_nodes();
        (1..n)
            .map(|k| (dead + k) % n)
            .find(|i| !also_dead.contains(i) && !retired.contains(i))
    }

    /// Re-replicates lost fragments after the nodes in `dead` are
    /// declared dead: each dead node's ring successor (first surviving
    /// one) promotes its standby copies to served **adopted** fragments,
    /// and every logged record is then re-verified by circulating the
    /// one-way accumulator over the survivor set
    /// ([`crate::integrity::check_record_among`]). A passing check
    /// proves the repaired copies are exactly the fragments the logging
    /// user deposited — re-replication cannot silently substitute data.
    ///
    /// Verification circulations retry a few times per record so that
    /// injected message loss does not masquerade as a failed repair.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Config`] if no survivor remains to adopt,
    /// or a store/network error from promotion and verification.
    pub fn rereplicate(
        &mut self,
        dead: &BTreeSet<usize>,
    ) -> Result<RereplicationReport, AuditError> {
        let n = self.nodes.len();
        if let Some(&bad) = dead.iter().find(|&&d| d >= n) {
            return Err(AuditError::Config(format!(
                "cannot retire node {bad}: cluster has {n} nodes"
            )));
        }
        let mut adoptions = Vec::new();
        for &d in dead {
            if self.retired_nodes().contains(&d) {
                continue;
            }
            let adopter = self
                .adopter_of(d, dead)
                .ok_or_else(|| AuditError::Config("no surviving node left to adopt".into()))?;
            let promoted = self.nodes[adopter]
                .store_mut()
                .promote_standby(d)
                .map_err(|e| AuditError::Log(e.to_string()))?;
            adoptions.push(NodeAdoption {
                dead: d,
                adopter,
                promoted: promoted.len(),
            });
            self.retired.push((d, adopter));
        }

        let retired = self.retired_nodes();
        let survivors: BTreeSet<usize> = (0..n).filter(|i| !retired.contains(i)).collect();
        let initiator = *survivors
            .iter()
            .next()
            .ok_or_else(|| AuditError::Config("no surviving node left to verify".into()))?;
        let mut verified = Vec::new();
        let mut failed = Vec::new();
        for glsn in self.logged_glsns() {
            let mut verdict = None;
            for _ in 0..5 {
                match crate::integrity::check_record_among(self, glsn, initiator, &survivors) {
                    Ok(v) => {
                        verdict = Some(v.ok);
                        break;
                    }
                    // Injected loss can eat a circulation hop; a fresh
                    // circulation is stateless, so just run it again.
                    Err(AuditError::Net(_)) => continue,
                    Err(e) => return Err(e),
                }
            }
            match verdict {
                Some(true) => verified.push(glsn),
                _ => failed.push(glsn),
            }
        }
        self.meta_log(
            "cluster",
            "rereplicate",
            format!(
                "dead={dead:?} adoptions={} verified={} failed={}",
                adoptions.len(),
                verified.len(),
                failed.len()
            ),
        );
        Ok(RereplicationReport {
            adoptions,
            verified,
            failed,
        })
    }

    /// Retrieves and reassembles a full record for its owner: each
    /// node's fragment is fetched under the user's ticket (ACL
    /// enforced per node).
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Log`] if any node denies access or the
    /// glsn is unknown.
    pub fn retrieve_record(&mut self, user: &AppUser, glsn: Glsn) -> Result<LogRecord, AuditError> {
        let mut frags = Vec::with_capacity(self.nodes.len());
        for node in 0..self.nodes.len() {
            // Request over the network (accounted)…
            let mut w = Writer::new();
            w.put_u8(0x22).put_u64(glsn.0);
            let mut net = self.net.lock();
            net.send(user.node, NodeId(node), w.finish());
            let _ = net
                .recv_from(NodeId(node), user.node)
                .map_err(AuditError::Net)?;
            drop(net);
            // …and serve under the ACL.
            let frag = self.nodes[node]
                .store()
                .read(&user.ticket, glsn)
                .map_err(|e| AuditError::Log(e.to_string()))?
                .clone();
            frags.push(frag);
        }
        dla_logstore::fragment::reassemble(&frags).map_err(|e| AuditError::Log(e.to_string()))
    }
}

/// Cluster-journal blob tags.
const BLOB_DEPOSIT: u8 = 0x01;
const BLOB_TICKET_COUNTER: u8 = 0x02;
const BLOB_EPOCH_SEAL: u8 = 0x03;

fn encode_deposit_blob(
    glsn: Glsn,
    deposit: &Ubig,
    public: &dla_crypto::schnorr::SchnorrPublicKey,
    signature: &dla_crypto::schnorr::Signature,
    time: Option<u64>,
) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(glsn.0)
        .put_bytes(&deposit.to_bytes_be())
        .put_bytes(&public.to_bytes())
        .put_bytes(&signature.e.to_bytes_be())
        .put_bytes(&signature.s.to_bytes_be());
    // Optional record timestamp (feeds the per-epoch time index on
    // restart). Appended after the original fields so pre-epoch blobs
    // stay decodable.
    match time {
        Some(t) => {
            w.put_u8(1).put_u64(t);
        }
        None => {
            w.put_u8(0);
        }
    }
    w.finish().to_vec()
}

type DepositBlob = (
    Glsn,
    Ubig,
    dla_crypto::schnorr::SchnorrPublicKey,
    dla_crypto::schnorr::Signature,
    Option<u64>,
);

fn decode_deposit_blob(bytes: &[u8]) -> Result<DepositBlob, AuditError> {
    let mut r = Reader::new(bytes);
    let parse = |e: dla_net::wire::WireError| AuditError::Config(format!("deposit blob: {e}"));
    let glsn = Glsn(r.get_u64().map_err(parse)?);
    let deposit = Ubig::from_bytes_be(r.get_bytes().map_err(parse)?);
    let public = dla_crypto::schnorr::SchnorrPublicKey::from_element(Ubig::from_bytes_be(
        r.get_bytes().map_err(parse)?,
    ));
    let e = Ubig::from_bytes_be(r.get_bytes().map_err(parse)?);
    let s = Ubig::from_bytes_be(r.get_bytes().map_err(parse)?);
    // Legacy blobs end here; current ones carry a time presence flag.
    let time = match r.get_u8() {
        Ok(1) => Some(r.get_u64().map_err(parse)?),
        Ok(_) => None,
        Err(_) => None,
    };
    r.finish().map_err(parse)?;
    Ok((
        glsn,
        deposit,
        public,
        dla_crypto::schnorr::Signature { e, s },
        time,
    ))
}

/// Canonical bytes the logging user signs for non-repudiation.
fn origin_message(glsn: Glsn, deposit: &Ubig) -> Vec<u8> {
    let mut out = Vec::with_capacity(80);
    out.extend_from_slice(b"dla-origin");
    out.extend_from_slice(&glsn.0.to_be_bytes());
    out.extend_from_slice(&deposit.to_bytes_be());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_logstore::gen::paper_table1;

    fn cluster() -> DlaCluster {
        let schema = Schema::paper_example();
        let partition = Partition::paper_example(&schema);
        DlaCluster::new(
            ClusterConfig::new(4, schema)
                .with_partition(partition)
                .with_seed(42),
        )
        .unwrap()
    }

    #[test]
    fn construction_assigns_attributes() {
        let c = cluster();
        assert_eq!(c.num_nodes(), 4);
        assert_eq!(c.node(0).supported_attributes(), &[AttrName::new("time")]);
        assert_eq!(c.node(1).supported_attributes().len(), 2);
        // No node supports the full universe.
        for node in c.nodes() {
            assert!(node.supported_attributes().len() < c.schema().len());
        }
    }

    #[test]
    fn default_partition_is_round_robin() {
        let c = DlaCluster::new(ClusterConfig::new(3, Schema::paper_example())).unwrap();
        assert_eq!(c.partition().num_nodes(), 3);
    }

    #[test]
    fn mismatched_partition_rejected() {
        let schema = Schema::paper_example();
        let partition = Partition::paper_example(&schema); // 4 nodes
        let err =
            DlaCluster::new(ClusterConfig::new(3, schema).with_partition(partition)).unwrap_err();
        assert!(err.to_string().contains("partition covers 4"));
    }

    #[test]
    fn zero_nodes_rejected() {
        assert!(DlaCluster::new(ClusterConfig::new(0, Schema::paper_example())).is_err());
    }

    #[test]
    fn logging_fragments_across_all_nodes() {
        let mut c = cluster();
        let user = c.register_user("u0").unwrap();
        let glsns = c.log_records(&user, &paper_table1()).unwrap();
        assert_eq!(glsns.len(), 5);
        for node in c.nodes() {
            assert_eq!(node.store().len(), 5, "every node holds 5 fragments");
        }
        // Deposits recorded for every record.
        for glsn in glsns {
            assert!(c.deposit(glsn).is_some());
        }
    }

    #[test]
    fn logging_generates_network_traffic() {
        let mut c = cluster();
        let user = c.register_user("u0").unwrap();
        let before = c.net().stats().messages_sent;
        c.log_record(&user, &paper_table1()[0]).unwrap();
        // 4 fragments + 4 deposit messages.
        assert_eq!(c.net().stats().messages_sent - before, 8);
    }

    #[test]
    fn glsns_are_fresh_regardless_of_input() {
        let mut c = cluster();
        let user = c.register_user("u0").unwrap();
        let records = paper_table1();
        let g1 = c.log_record(&user, &records[0]).unwrap();
        let g2 = c.log_record(&user, &records[0]).unwrap();
        assert_ne!(g1, g2);
    }

    #[test]
    fn schema_violation_rejected_at_logging() {
        let mut c = cluster();
        let user = c.register_user("u0").unwrap();
        let bad = LogRecord::new(Glsn(0)).with("salary", dla_logstore::model::AttrValue::Int(1));
        assert!(c.log_record(&user, &bad).is_err());
    }

    #[test]
    fn owner_retrieves_full_record() {
        let mut c = cluster();
        let user = c.register_user("u0").unwrap();
        let record = paper_table1().remove(0);
        let glsn = c.log_record(&user, &record).unwrap();
        let fetched = c.retrieve_record(&user, glsn).unwrap();
        assert_eq!(fetched.len(), record.len());
        assert_eq!(fetched.get(&"c2".into()), record.get(&"c2".into()));
    }

    #[test]
    fn stranger_cannot_retrieve_foreign_record() {
        let mut c = cluster();
        let owner = c.register_user("owner").unwrap();
        let stranger = c.register_user("stranger").unwrap();
        let glsn = c.log_record(&owner, &paper_table1()[0]).unwrap();
        assert!(c.retrieve_record(&stranger, glsn).is_err());
    }

    #[test]
    fn user_capacity_enforced() {
        let schema = Schema::paper_example();
        let mut c = DlaCluster::new(ClusterConfig::new(2, schema).with_max_users(1)).unwrap();
        assert!(c.register_user("a").is_ok());
        assert!(c.register_user("b").is_err());
    }

    #[test]
    fn origin_signature_verifies_for_logged_records() {
        let mut c = cluster();
        let user = c.register_user("u0").unwrap();
        let glsns = c.log_records(&user, &paper_table1()).unwrap();
        for glsn in glsns {
            assert!(c.verify_origin(glsn).unwrap(), "non-repudiation for {glsn}");
        }
        assert!(c.verify_origin(Glsn(0xdead)).is_err());
    }

    #[test]
    fn origin_is_bound_to_the_user() {
        // The signature verifies only under the logging user's key; a
        // forged deposit breaks it.
        let mut c = cluster();
        let user = c.register_user("u0").unwrap();
        let glsn = c.log_record(&user, &paper_table1()[0]).unwrap();
        assert!(c.verify_origin(glsn).unwrap());
        // Tamper with the stored deposit: the signature no longer matches.
        let forged = Ubig::from_u64(12345);
        c.deposits.insert(glsn, forged);
        assert!(!c.verify_origin(glsn).unwrap());
    }

    #[test]
    fn special_node_ids_are_disjoint() {
        let c = cluster();
        assert_eq!(c.auditor_node(), NodeId(4));
        assert_eq!(c.ttp_node(), NodeId(5));
        assert_ne!(c.auditor_node(), c.dla_node_id(3));
    }

    fn standby_cluster() -> (DlaCluster, Vec<Glsn>) {
        let schema = Schema::paper_example();
        let partition = Partition::paper_example(&schema);
        let mut c = DlaCluster::new(
            ClusterConfig::new(4, schema)
                .with_partition(partition)
                .with_seed(42)
                .with_standby_replication(),
        )
        .unwrap();
        let user = c.register_user("u0").unwrap();
        let glsns = c.log_records(&user, &paper_table1()).unwrap();
        (c, glsns)
    }

    #[test]
    fn standby_replication_populates_ring_successors() {
        let (c, glsns) = standby_cluster();
        assert_eq!(glsns.len(), 5);
        for node in 0..4 {
            // Each node holds a standby copy of its predecessor's
            // fragment for every record.
            assert_eq!(c.node(node).store().standby_count(), 5, "node {node}");
        }
    }

    #[test]
    fn rereplicate_promotes_standbys_and_verifies_them() {
        let (mut c, glsns) = standby_cluster();
        let report = c.rereplicate(&[2].into_iter().collect()).unwrap();
        assert_eq!(
            report.adoptions,
            vec![NodeAdoption {
                dead: 2,
                adopter: 3,
                promoted: 5
            }]
        );
        assert!(report.is_fully_verified());
        assert_eq!(report.verified.len(), glsns.len());
        assert_eq!(c.retired_nodes(), [2].into_iter().collect());
        // The effective partition routes node 2's attributes to node 3.
        let effective = c.effective_partition();
        assert!(effective.attrs_of(2).is_empty());
        assert!(effective
            .attrs_of(3)
            .contains(&dla_logstore::model::AttrName::new("tid")));
    }

    #[test]
    fn rereplicate_without_standbys_fails_the_accumulator_check() {
        let mut c = cluster();
        let user = c.register_user("u0").unwrap();
        let glsns = c.log_records(&user, &paper_table1()).unwrap();
        let report = c.rereplicate(&[2].into_iter().collect()).unwrap();
        assert!(!report.is_fully_verified());
        assert_eq!(report.failed.len(), glsns.len());
    }

    #[test]
    fn rereplicate_skips_dead_successor_when_picking_the_adopter() {
        let (mut c, _) = standby_cluster();
        let report = c.rereplicate(&[2, 3].into_iter().collect()).unwrap();
        let adopters: Vec<usize> = report.adoptions.iter().map(|a| a.adopter).collect();
        // Node 2's successor (3) is dead too, so node 0 adopts; node
        // 3's successor is node 0 as well.
        assert_eq!(adopters, vec![0, 0]);
        // Node 2's standbys lived on dead node 3, so its fragments are
        // unrecoverable and the accumulator check says so.
        assert!(!report.is_fully_verified());
    }

    #[test]
    fn queries_keep_their_answers_after_a_node_loss() {
        let (mut c, _) = standby_cluster();
        let reference = c.query("tid = 'T1100267' and c2 > 100.00").unwrap().glsns;
        assert!(!reference.is_empty());
        c.rereplicate(&[2].into_iter().collect()).unwrap();
        // Planned against the effective partition, the same query is
        // served by the survivors from the promoted copies.
        let policy = crate::exec::ResilientPolicy::default();
        let outcome = c
            .query_resilient("tid = 'T1100267' and c2 > 100.00", &policy)
            .unwrap();
        assert_eq!(outcome.result.glsns, reference);
        assert_eq!(outcome.attempts, 1);
        assert_eq!(outcome.excluded, [2].into_iter().collect());
    }

    #[test]
    fn query_resilient_detects_kills_and_replans() {
        let (mut c, _) = standby_cluster();
        let reference = c.query("tid = 'T1100267' and c2 > 100.00").unwrap().glsns;
        // Kill node 2 at the network level without telling the cluster:
        // the ladder has to notice via timeout + health probes.
        c.net_mut().faults_mut().kill_node(2);
        let policy = crate::exec::ResilientPolicy::default();
        let outcome = c
            .query_resilient("tid = 'T1100267' and c2 > 100.00", &policy)
            .unwrap();
        assert_eq!(outcome.result.glsns, reference);
        assert!(outcome.attempts > 1, "first attempt must have timed out");
        assert_eq!(outcome.replans, 1);
        assert_eq!(outcome.excluded, [2].into_iter().collect());
        assert!(outcome.repairs[0].is_fully_verified());
    }

    fn epoch_cluster(epoch_length: u64) -> DlaCluster {
        let schema = Schema::paper_example();
        let partition = Partition::paper_example(&schema);
        DlaCluster::new(
            ClusterConfig::new(4, schema)
                .with_partition(partition)
                .with_seed(42)
                .with_epoch_length(epoch_length),
        )
        .unwrap()
    }

    #[test]
    fn epochs_roll_and_seal_as_glsns_advance() {
        let mut c = epoch_cluster(2);
        let user = c.register_user("u0").unwrap();
        c.log_records(&user, &paper_table1()).unwrap();
        // 5 records, 2 per epoch: epochs 0 and 1 sealed, epoch 2 open.
        let stats: Vec<&EpochStats> = c.epoch_stats().collect();
        assert_eq!(stats.len(), 3);
        assert!(stats[0].sealed && stats[1].sealed && !stats[2].sealed);
        assert_eq!(stats[0].deposits, 2);
        assert_eq!(stats[2].deposits, 1);
        assert!(stats[0].time_lo.is_some());
        assert_eq!(c.checkpoint_chain().len(), 2);
        assert!(c.checkpoint_chain().verify_links());
        assert_eq!(c.trail_items(), 5);
        // Node manifests agree on sealing.
        for node in c.nodes() {
            assert!(node.store().is_sealed(EpochId(0)));
            assert!(!node.store().is_sealed(EpochId(2)));
        }
        // The sealed checkpoint digest is the epoch accumulator.
        let cp = c.checkpoint_chain().get(0).unwrap();
        assert_eq!(cp.digest, c.epoch_stat(EpochId(0)).unwrap().acc);
        assert_eq!(cp.items, 2);
    }

    #[test]
    fn batched_and_single_logging_agree_on_trail_state() {
        let records = paper_table1();
        let mut batched = epoch_cluster(2);
        let user = batched.register_user("u0").unwrap();
        batched.log_records(&user, &records).unwrap();
        let mut single = epoch_cluster(2);
        let user = single.register_user("u0").unwrap();
        for r in &records {
            single.log_record(&user, r).unwrap();
        }
        assert_eq!(batched.trail_accumulator(), single.trail_accumulator());
        assert_eq!(
            batched.checkpoint_chain().head_link(),
            single.checkpoint_chain().head_link()
        );
        assert_eq!(batched.logged_glsns(), single.logged_glsns());
        for (a, b) in batched.epoch_stats().zip(single.epoch_stats()) {
            assert_eq!(a.acc, b.acc);
            assert_eq!(a.deposits, b.deposits);
            assert_eq!(a.sealed, b.sealed);
        }
    }

    #[test]
    fn glsn_window_restricts_to_intersecting_epochs() {
        let mut c = epoch_cluster(2);
        let user = c.register_user("u0").unwrap();
        let glsns = c.log_records(&user, &paper_table1()).unwrap();
        // Epoch 0 holds Table 1's first two records (20:18:35, 20:20:35).
        let e0 = c.epoch_stat(EpochId(0)).unwrap();
        let window = crate::plan::TimeWindow {
            lo: Some(e0.time_lo.unwrap()),
            hi: Some(e0.time_hi.unwrap()),
        };
        let (lo, hi) = c.glsn_window_for(&window).unwrap();
        assert_eq!((lo, hi), (glsns[0], glsns[1]));
        // Unbounded → no pruning; disjoint → empty sentinel.
        assert!(c
            .glsn_window_for(&crate::plan::TimeWindow::unbounded())
            .is_none());
        let disjoint = crate::plan::TimeWindow {
            lo: Some(1),
            hi: Some(2),
        };
        let (lo, hi) = c.glsn_window_for(&disjoint).unwrap();
        assert!(lo > hi, "disjoint window yields the empty sentinel");
    }

    #[test]
    fn epoch_state_survives_restart() {
        let mut dir = std::env::temp_dir();
        dir.push(format!(
            "dla-cluster-epoch-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let build = || {
            let schema = Schema::paper_example();
            let partition = Partition::paper_example(&schema);
            DlaCluster::new(
                ClusterConfig::new(4, schema)
                    .with_partition(partition)
                    .with_seed(42)
                    .with_epoch_length(2)
                    .with_journal_dir(&dir),
            )
            .unwrap()
        };
        let mut c = build();
        let user = c.register_user("u0").unwrap();
        c.log_records(&user, &paper_table1()).unwrap();
        let chain_before = c.checkpoint_chain().clone();
        let trail_before = c.trail_accumulator().clone();
        let stats_before: Vec<(EpochId, u64, bool)> = c
            .epoch_stats()
            .map(|s| (s.epoch, s.deposits, s.sealed))
            .collect();
        drop(c);

        let c = build();
        assert_eq!(c.checkpoint_chain(), &chain_before);
        assert!(c.checkpoint_chain().verify_links());
        assert_eq!(c.trail_accumulator(), &trail_before);
        assert_eq!(c.trail_items(), 5);
        let stats_after: Vec<(EpochId, u64, bool)> = c
            .epoch_stats()
            .map(|s| (s.epoch, s.deposits, s.sealed))
            .collect();
        assert_eq!(stats_after, stats_before);
        // The rebuilt time index still prunes.
        let e0 = c.epoch_stat(EpochId(0)).unwrap();
        assert!(e0.time_lo.is_some());
        for node in c.nodes() {
            assert!(node.store().is_sealed(EpochId(0)));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
