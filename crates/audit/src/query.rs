//! Auditing criteria (paper §2): predicates `A θ (B|c)` composed with
//! `∧`, `∨`, `¬`.
//!
//! "The auditing predicate whose terms are of the form A θ (B|c), where
//! A, B are audit trail attributes …; c is a constant, and θ is one of
//! the arithmetic comparison operators <, >, =, ≠, ≤, ≥. Furthermore,
//! the auditing predicate does not contain any quantifiers."

use dla_logstore::model::{AttrName, AttrValue, LogRecord};
use dla_logstore::schema::Schema;
use std::cmp::Ordering;
use std::fmt;

/// A comparison operator `θ`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `=`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// The logical negation (`¬(a < b) ≡ a >= b` …), used when pushing
    /// `¬` into predicates during normalization.
    #[must_use]
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
        }
    }

    /// Applies the operator to an ordering.
    #[must_use]
    pub fn test(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
        };
        write!(f, "{s}")
    }
}

/// The right-hand side of a predicate: another attribute (`B`) or a
/// constant (`c`).
#[derive(Clone, PartialEq, Debug)]
pub enum Operand {
    /// Another audit-trail attribute.
    Attr(AttrName),
    /// A constant.
    Const(AttrValue),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Attr(a) => write!(f, "{a}"),
            Operand::Const(v) => match v {
                AttrValue::Text(s) => write!(f, "'{s}'"),
                other => write!(f, "{other}"),
            },
        }
    }
}

/// An atomic auditing predicate `A θ (B|c)`.
#[derive(Clone, PartialEq, Debug)]
pub struct Predicate {
    /// Left attribute `A`.
    pub lhs: AttrName,
    /// Operator `θ`.
    pub op: CmpOp,
    /// Right side `B` or `c`.
    pub rhs: Operand,
}

impl Predicate {
    /// Builds `A θ c`.
    #[must_use]
    pub fn with_const(lhs: impl Into<AttrName>, op: CmpOp, c: AttrValue) -> Self {
        Predicate {
            lhs: lhs.into(),
            op,
            rhs: Operand::Const(c),
        }
    }

    /// Builds `A θ B`.
    #[must_use]
    pub fn with_attr(lhs: impl Into<AttrName>, op: CmpOp, rhs: impl Into<AttrName>) -> Self {
        Predicate {
            lhs: lhs.into(),
            op,
            rhs: Operand::Attr(rhs.into()),
        }
    }

    /// Whether the predicate compares two attributes (`A θ B`).
    #[must_use]
    pub fn is_attr_attr(&self) -> bool {
        matches!(self.rhs, Operand::Attr(_))
    }

    /// The attributes referenced.
    #[must_use]
    pub fn attributes(&self) -> Vec<&AttrName> {
        match &self.rhs {
            Operand::Attr(b) => vec![&self.lhs, b],
            Operand::Const(_) => vec![&self.lhs],
        }
    }

    /// Evaluates against a complete record.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] if a referenced attribute is missing from
    /// the record or the two sides have incomparable types.
    pub fn eval(&self, record: &LogRecord) -> Result<bool, EvalError> {
        let lhs = record
            .get(&self.lhs)
            .ok_or_else(|| EvalError::MissingAttribute(self.lhs.clone()))?;
        let rhs_value = match &self.rhs {
            Operand::Const(c) => c,
            Operand::Attr(b) => record
                .get(b)
                .ok_or_else(|| EvalError::MissingAttribute(b.clone()))?,
        };
        let ord = lhs
            .try_cmp(rhs_value)
            .ok_or_else(|| EvalError::TypeMismatch {
                lhs: self.lhs.clone(),
                detail: format!("{lhs:?} vs {rhs_value:?}"),
            })?;
        Ok(self.op.test(ord))
    }

    /// Type-checks against a schema.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError`] for unknown attributes or incomparable
    /// operand types.
    pub fn check(&self, schema: &Schema) -> Result<(), EvalError> {
        let lhs_def = schema
            .get(&self.lhs)
            .ok_or_else(|| EvalError::MissingAttribute(self.lhs.clone()))?;
        match &self.rhs {
            Operand::Attr(b) => {
                let rhs_def = schema
                    .get(b)
                    .ok_or_else(|| EvalError::MissingAttribute(b.clone()))?;
                if lhs_def.attr_type() != rhs_def.attr_type() {
                    return Err(EvalError::TypeMismatch {
                        lhs: self.lhs.clone(),
                        detail: format!("{} vs {}", lhs_def.attr_type(), rhs_def.attr_type()),
                    });
                }
            }
            Operand::Const(c) => {
                if lhs_def.attr_type() != c.attr_type() {
                    return Err(EvalError::TypeMismatch {
                        lhs: self.lhs.clone(),
                        detail: format!("{} vs {}", lhs_def.attr_type(), c.attr_type()),
                    });
                }
            }
        }
        Ok(())
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

/// An auditing criterion: predicates under `∧`, `∨`, `¬`.
#[derive(Clone, PartialEq, Debug)]
pub enum Criteria {
    /// An atomic predicate.
    Pred(Predicate),
    /// Conjunction.
    And(Box<Criteria>, Box<Criteria>),
    /// Disjunction.
    Or(Box<Criteria>, Box<Criteria>),
    /// Negation.
    Not(Box<Criteria>),
}

impl Criteria {
    /// Wraps a predicate.
    #[must_use]
    pub fn pred(p: Predicate) -> Self {
        Criteria::Pred(p)
    }

    /// `self ∧ other`.
    #[must_use]
    pub fn and(self, other: Criteria) -> Self {
        Criteria::And(Box::new(self), Box::new(other))
    }

    /// `self ∨ other`.
    #[must_use]
    pub fn or(self, other: Criteria) -> Self {
        Criteria::Or(Box::new(self), Box::new(other))
    }

    /// `¬self`.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Self {
        Criteria::Not(Box::new(self))
    }

    /// Evaluates against a complete record (the reference semantics the
    /// distributed executor must match).
    ///
    /// # Errors
    ///
    /// Propagates predicate evaluation failures.
    pub fn eval(&self, record: &LogRecord) -> Result<bool, EvalError> {
        match self {
            Criteria::Pred(p) => p.eval(record),
            Criteria::And(a, b) => Ok(a.eval(record)? && b.eval(record)?),
            Criteria::Or(a, b) => Ok(a.eval(record)? || b.eval(record)?),
            Criteria::Not(inner) => Ok(!inner.eval(record)?),
        }
    }

    /// Type-checks every predicate.
    ///
    /// # Errors
    ///
    /// Propagates predicate check failures.
    pub fn check(&self, schema: &Schema) -> Result<(), EvalError> {
        match self {
            Criteria::Pred(p) => p.check(schema),
            Criteria::And(a, b) | Criteria::Or(a, b) => {
                a.check(schema)?;
                b.check(schema)
            }
            Criteria::Not(inner) => inner.check(schema),
        }
    }

    /// Number of atomic predicates (the `s` of Eq. 11).
    #[must_use]
    pub fn atom_count(&self) -> usize {
        match self {
            Criteria::Pred(_) => 1,
            Criteria::And(a, b) | Criteria::Or(a, b) => a.atom_count() + b.atom_count(),
            Criteria::Not(inner) => inner.atom_count(),
        }
    }
}

impl fmt::Display for Criteria {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Criteria::Pred(p) => write!(f, "{p}"),
            Criteria::And(a, b) => write!(f, "({a} AND {b})"),
            Criteria::Or(a, b) => write!(f, "({a} OR {b})"),
            Criteria::Not(inner) => write!(f, "(NOT {inner})"),
        }
    }
}

/// Errors from evaluating or type-checking criteria.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A referenced attribute is absent (from the record or schema).
    MissingAttribute(AttrName),
    /// Operand types cannot be compared.
    TypeMismatch {
        /// The predicate's left attribute.
        lhs: AttrName,
        /// Human-readable description of the mismatch.
        detail: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::MissingAttribute(a) => write!(f, "attribute {a} not available"),
            EvalError::TypeMismatch { lhs, detail } => {
                write!(f, "type mismatch at {lhs}: {detail}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_logstore::model::Glsn;

    fn record() -> LogRecord {
        LogRecord::new(Glsn(1))
            .with("id", AttrValue::text("U1"))
            .with("c1", AttrValue::Int(20))
            .with("c2", AttrValue::Fixed2(2345))
            .with("protocol", AttrValue::text("UDP"))
    }

    #[test]
    fn const_predicates_evaluate() {
        let r = record();
        assert!(Predicate::with_const("c1", CmpOp::Eq, AttrValue::Int(20))
            .eval(&r)
            .unwrap());
        assert!(Predicate::with_const("c1", CmpOp::Lt, AttrValue::Int(21))
            .eval(&r)
            .unwrap());
        assert!(!Predicate::with_const("c1", CmpOp::Gt, AttrValue::Int(20))
            .eval(&r)
            .unwrap());
        assert!(
            Predicate::with_const("id", CmpOp::Ne, AttrValue::text("U2"))
                .eval(&r)
                .unwrap()
        );
        assert!(Predicate::with_const("c1", CmpOp::Ge, AttrValue::Int(20))
            .eval(&r)
            .unwrap());
        assert!(Predicate::with_const("c1", CmpOp::Le, AttrValue::Int(19))
            .eval(&r)
            .map(|b| !b)
            .unwrap());
    }

    #[test]
    fn attr_attr_predicates_evaluate() {
        let r = LogRecord::new(Glsn(1))
            .with("c1", AttrValue::Int(20))
            .with("c4", AttrValue::Int(30));
        assert!(Predicate::with_attr("c1", CmpOp::Lt, "c4")
            .eval(&r)
            .unwrap());
        assert!(!Predicate::with_attr("c1", CmpOp::Eq, "c4")
            .eval(&r)
            .unwrap());
    }

    #[test]
    fn missing_attribute_is_an_error() {
        let r = record();
        let err = Predicate::with_const("salary", CmpOp::Eq, AttrValue::Int(1))
            .eval(&r)
            .unwrap_err();
        assert!(matches!(err, EvalError::MissingAttribute(_)));
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let r = record();
        let err = Predicate::with_const("id", CmpOp::Eq, AttrValue::Int(1))
            .eval(&r)
            .unwrap_err();
        assert!(matches!(err, EvalError::TypeMismatch { .. }));
    }

    #[test]
    fn connectives_follow_boolean_semantics() {
        let r = record();
        let p_true = Criteria::pred(Predicate::with_const("c1", CmpOp::Eq, AttrValue::Int(20)));
        let p_false = Criteria::pred(Predicate::with_const("c1", CmpOp::Eq, AttrValue::Int(99)));
        assert!(p_true.clone().and(p_true.clone()).eval(&r).unwrap());
        assert!(!p_true.clone().and(p_false.clone()).eval(&r).unwrap());
        assert!(p_true.clone().or(p_false.clone()).eval(&r).unwrap());
        assert!(!p_false.clone().or(p_false.clone()).eval(&r).unwrap());
        assert!(p_false.clone().not().eval(&r).unwrap());
        assert!(!p_true.not().eval(&r).unwrap());
        let _ = p_false;
    }

    #[test]
    fn op_negation_is_involutive_and_correct() {
        for op in [
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
            CmpOp::Eq,
            CmpOp::Ne,
        ] {
            assert_eq!(op.negate().negate(), op);
            for ord in [Ordering::Less, Ordering::Equal, Ordering::Greater] {
                assert_eq!(op.test(ord), !op.negate().test(ord), "{op} {ord:?}");
            }
        }
    }

    #[test]
    fn schema_check_catches_unknown_and_mistyped() {
        let schema = Schema::paper_example();
        assert!(Predicate::with_const("c1", CmpOp::Gt, AttrValue::Int(5))
            .check(&schema)
            .is_ok());
        assert!(Predicate::with_const("nope", CmpOp::Gt, AttrValue::Int(5))
            .check(&schema)
            .is_err());
        assert!(Predicate::with_const("c1", CmpOp::Gt, AttrValue::text("x"))
            .check(&schema)
            .is_err());
        assert!(
            Predicate::with_attr("c1", CmpOp::Lt, "c2")
                .check(&schema)
                .is_err(),
            "int vs fixed2"
        );
        assert!(
            Predicate::with_attr("id", CmpOp::Eq, "c3")
                .check(&schema)
                .is_ok(),
            "text vs text"
        );
    }

    #[test]
    fn atom_count_counts_predicates() {
        let p = Criteria::pred(Predicate::with_const("c1", CmpOp::Gt, AttrValue::Int(1)));
        let q = p.clone().and(p.clone().or(p.clone()).not());
        assert_eq!(q.atom_count(), 3);
    }

    #[test]
    fn display_round_readable() {
        let p = Predicate::with_const("c1", CmpOp::Ge, AttrValue::Int(20));
        assert_eq!(p.to_string(), "c1 >= 20");
        let q = Criteria::pred(p).not();
        assert_eq!(q.to_string(), "(NOT c1 >= 20)");
        let t = Predicate::with_const("id", CmpOp::Eq, AttrValue::text("U1"));
        assert_eq!(t.to_string(), "id = 'U1'");
        let ab = Predicate::with_attr("c1", CmpOp::Lt, "c4");
        assert_eq!(ab.to_string(), "c1 < c4");
    }
}
