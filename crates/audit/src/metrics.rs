//! The paper's confidentiality metrics (§5, Eqs. 10–13).
//!
//! * **Store confidentiality** (Eq. 10): `C_store(Log) = v·u / w`,
//!   where `w` is the number of attributes in the record, `v` the
//!   number of *undefined* attributes among them, and `u` the minimum
//!   number of DLA nodes needed to cover all of the record's
//!   attributes. More private attributes and wider fragmentation both
//!   raise it.
//! * **Auditing confidentiality** (Eq. 11):
//!   `C_auditing(Q) = (t + q) / (s + q)` over the normalized query,
//!   with `s` total atomic predicates, `t` atomic predicates belonging
//!   to cross subqueries, and `q` conjunctive connectives. A query
//!   answered purely by local scans exposes its whole shape to single
//!   nodes (low score); one dominated by cross subqueries keeps every
//!   node partially blind (high score).
//! * **Query confidentiality** (Eq. 12): the product of the two.
//! * **DLA confidentiality** (Eq. 13): the average query
//!   confidentiality over a workload.

use crate::plan::QueryPlan;
use dla_logstore::fragment::Partition;
use dla_logstore::model::LogRecord;
use dla_logstore::schema::Schema;

/// The §5 worked values of the paper for the Table 1 schema under the
/// four-node example partition — pinned so experiments can compare
/// empirically measured confidentiality against the published numbers.
pub mod paper {
    /// `C_store` of a Table 1 record: `v·u/w = 3·4/7` (Eq. 10).
    pub const C_STORE: f64 = 12.0 / 7.0;
    /// `C_auditing` of the Fig. 3 query
    /// `c1 > 30 AND id = 'U1' AND protocol = 'TCP'`:
    /// `(t+q)/(s+q) = (0+2)/(3+2)` (Eq. 11).
    pub const C_AUDITING_FIG3: f64 = 2.0 / 5.0;
    /// `C_auditing` of the worked cross-subquery example
    /// `c1 > 40 OR id = 'U2'`: `(2+0)/(2+0)` (Eq. 11).
    pub const C_AUDITING_CROSS: f64 = 1.0;
    /// `C_query` of the Fig. 3 query (Eq. 12).
    pub const C_QUERY_FIG3: f64 = 24.0 / 35.0;
    /// `C_DLA` of the two-query §5 workload:
    /// `12/7 · (2/5 + 1)/2` (Eq. 13).
    pub const C_DLA: f64 = 6.0 / 5.0;
}

/// `C_store(Log)` (Eq. 10).
///
/// Returns 0 for an empty record.
#[must_use]
pub fn store_confidentiality(record: &LogRecord, schema: &Schema, partition: &Partition) -> f64 {
    let w = record.len();
    if w == 0 {
        return 0.0;
    }
    let v = record
        .iter()
        .filter(|(name, _)| schema.get(name).is_some_and(|d| d.is_undefined()))
        .count();
    let u = partition.covering_nodes(record);
    (v as f64) * (u as f64) / (w as f64)
}

/// `C_auditing(Q)` (Eq. 11), computed from a plan's `(s, t, q)`.
///
/// Returns 0 for a plan with no predicates.
#[must_use]
pub fn auditing_confidentiality(plan: &QueryPlan) -> f64 {
    let s = plan.atom_count;
    let t = plan.cross_atom_count;
    let q = plan.conjunct_count;
    if s + q == 0 {
        return 0.0;
    }
    (t + q) as f64 / (s + q) as f64
}

/// `C_query(Q, Log)` (Eq. 12).
#[must_use]
pub fn query_confidentiality(
    plan: &QueryPlan,
    record: &LogRecord,
    schema: &Schema,
    partition: &Partition,
) -> f64 {
    auditing_confidentiality(plan) * store_confidentiality(record, schema, partition)
}

/// `C_DLA(I, P)` (Eq. 13): the mean of [`query_confidentiality`] over a
/// workload of (plan, record) pairs.
///
/// Returns 0 for an empty workload.
#[must_use]
pub fn dla_confidentiality(
    workload: &[(QueryPlan, LogRecord)],
    schema: &Schema,
    partition: &Partition,
) -> f64 {
    if workload.is_empty() {
        return 0.0;
    }
    let total: f64 = workload
        .iter()
        .map(|(plan, record)| query_confidentiality(plan, record, schema, partition))
        .sum();
    total / workload.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal::normalize;
    use crate::parser::parse;
    use crate::plan::plan;
    use dla_logstore::gen::paper_table1;
    use dla_logstore::model::{AttrValue, Glsn};

    fn env() -> (Schema, Partition) {
        let schema = Schema::paper_example();
        let partition = Partition::paper_example(&schema);
        (schema, partition)
    }

    fn planned(src: &str, schema: &Schema, partition: &Partition) -> QueryPlan {
        plan(&normalize(&parse(src, schema).unwrap()), partition).unwrap()
    }

    #[test]
    fn store_confidentiality_of_table1_records() {
        let (schema, partition) = env();
        for record in paper_table1() {
            // w = 7, v = 3 (c1, c2, c3), u = 4 (paper partition).
            let c = store_confidentiality(&record, &schema, &partition);
            assert!((c - 3.0 * 4.0 / 7.0).abs() < 1e-12);
        }
    }

    #[test]
    fn store_confidentiality_rises_with_undefined_attrs() {
        let (schema, partition) = env();
        let few = LogRecord::new(Glsn(1))
            .with("time", AttrValue::Time(0))
            .with("id", AttrValue::text("U1"));
        let many = LogRecord::new(Glsn(2))
            .with("c1", AttrValue::Int(1))
            .with("c2", AttrValue::Fixed2(1));
        assert!(
            store_confidentiality(&many, &schema, &partition)
                > store_confidentiality(&few, &schema, &partition)
        );
    }

    #[test]
    fn store_confidentiality_rises_with_fragmentation() {
        let schema = Schema::paper_example();
        let wide = Partition::paper_example(&schema); // 4 nodes
        let narrow = Partition::round_robin(&schema, 1).unwrap(); // 1 node
        let record = paper_table1().remove(0);
        assert!(
            store_confidentiality(&record, &schema, &wide)
                > store_confidentiality(&record, &schema, &narrow)
        );
    }

    #[test]
    fn empty_record_scores_zero() {
        let (schema, partition) = env();
        assert_eq!(
            store_confidentiality(&LogRecord::new(Glsn(1)), &schema, &partition),
            0.0
        );
    }

    #[test]
    fn auditing_confidentiality_local_query_is_low() {
        let (schema, partition) = env();
        // Single local predicate: s=1, t=0, q=0 → 0.
        let p = planned("c1 > 5", &schema, &partition);
        assert_eq!(auditing_confidentiality(&p), 0.0);
    }

    #[test]
    fn auditing_confidentiality_cross_query_is_high() {
        let (schema, partition) = env();
        // One cross clause: s=2, t=2, q=0 → 1.0.
        let p = planned("c1 > 5 OR id = 'U1'", &schema, &partition);
        assert_eq!(auditing_confidentiality(&p), 1.0);
    }

    #[test]
    fn auditing_confidentiality_mixed_query() {
        let (schema, partition) = env();
        // (cross: c1 OR id → t=2) AND (local: c2) → s=3, t=2, q=1 → 3/4.
        let p = planned("(c1 > 5 OR id = 'U1') AND c2 < 9.00", &schema, &partition);
        assert!((auditing_confidentiality(&p) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn query_confidentiality_is_product() {
        let (schema, partition) = env();
        let p = planned("(c1 > 5 OR id = 'U1') AND c2 < 9.00", &schema, &partition);
        let record = paper_table1().remove(0);
        let expect =
            auditing_confidentiality(&p) * store_confidentiality(&record, &schema, &partition);
        assert_eq!(
            query_confidentiality(&p, &record, &schema, &partition),
            expect
        );
    }

    /// §5 worked end-to-end on the paper's running example: every one
    /// of Eqs. 10–13 pinned to its exact closed-form value.
    #[test]
    fn paper_section5_worked_example_pins_all_four_metrics() {
        let (schema, partition) = env();
        let record = paper_table1().remove(0);

        // Eq. 10 on a Table 1 record: w = 7 attributes, v = 3
        // undefined ones (c1, c2, c3), u = 4 covering nodes under the
        // Tables 2–5 partition → C_store = 3·4/7 = 12/7.
        let c_store = store_confidentiality(&record, &schema, &partition);
        assert!((c_store - 12.0 / 7.0).abs() < 1e-12, "C_store = {c_store}");

        // Eq. 11 on the Fig. 3 conjunctive query: three local atoms on
        // three different nodes → s = 3, t = 0, q = 2 → C_auditing =
        // (0 + 2)/(3 + 2) = 2/5.
        let fig3 = planned(
            "c1 > 30 AND id = 'U1' AND protocol = 'TCP'",
            &schema,
            &partition,
        );
        let c_auditing = auditing_confidentiality(&fig3);
        assert!(
            (c_auditing - 0.4).abs() < 1e-12,
            "C_auditing = {c_auditing}"
        );

        // Eq. 12: the product — (2/5)·(12/7) = 24/35.
        let c_query = query_confidentiality(&fig3, &record, &schema, &partition);
        assert!((c_query - 24.0 / 35.0).abs() < 1e-12, "C_query = {c_query}");

        // Eq. 13 over the two-query workload {Fig. 3 query, one cross
        // disjunction (s = 2, t = 2, q = 0 → C_auditing = 1)}:
        // (2/5 + 1)/2 · 12/7 = 6/5 exactly.
        let cross = planned("c1 > 40 OR id = 'U2'", &schema, &partition);
        let workload = vec![(fig3, record.clone()), (cross, record)];
        let c_dla = dla_confidentiality(&workload, &schema, &partition);
        assert!((c_dla - 1.2).abs() < 1e-12, "C_DLA = {c_dla}");
    }

    #[test]
    fn dla_confidentiality_averages() {
        let (schema, partition) = env();
        let record = paper_table1().remove(0);
        let high = planned("c1 > 5 OR id = 'U1'", &schema, &partition);
        let low = planned("c1 > 5", &schema, &partition);
        let workload = vec![(high, record.clone()), (low, record)];
        let avg = dla_confidentiality(&workload, &schema, &partition);
        let each: Vec<f64> = workload
            .iter()
            .map(|(p, r)| query_confidentiality(p, r, &schema, &partition))
            .collect();
        assert!((avg - (each[0] + each[1]) / 2.0).abs() < 1e-12);
        assert_eq!(dla_confidentiality(&[], &schema, &partition), 0.0);
    }
}
