//! Standing audit queries — long-lived subscriptions over the sealed
//! trail.
//!
//! Production auditors run the same compliance queries continuously;
//! re-planning and re-scanning the whole trail per poll is the exact
//! access pattern the epoch-sealed trail (§4.1) was built to amortize.
//! A standing query is registered **once**
//! ([`crate::cluster::DlaCluster::register_standing`]): the CNF is
//! parsed, normalized and validated up front, and from then on every
//! epoch seal evaluates the query against *only the just-sealed
//! epoch's glsn range* (via [`crate::exec::execute_on_clamped`], under
//! the cluster's ARQ configuration) and pushes the incremental
//! [`StandingDelta`] to the subscriber. The accumulated union of
//! deltas equals a fresh [`crate::cluster::DlaCluster::query_shared`]
//! restricted to sealed epochs — proven byte-identical under chaos in
//! `standing_chaos.rs`.
//!
//! Registration after the fact is not a gap: the registry catches a
//! late subscriber up by evaluating every already-sealed epoch, so
//! subscribers converge on the same accumulated answer regardless of
//! when they joined.

use crate::normal::NormalizedQuery;
use dla_logstore::epoch::EpochId;
use dla_logstore::model::Glsn;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Identifier of a registered standing query, unique per cluster.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Hash)]
pub struct StandingQueryId(pub u64);

impl fmt::Display for StandingQueryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQ#{}", self.0)
    }
}

/// One incremental result pushed to a standing query's subscriber when
/// an epoch seals: the satisfying glsns *within that epoch*.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StandingDelta {
    /// The subscribed query.
    pub query: StandingQueryId,
    /// The epoch whose seal triggered this delta.
    pub epoch: EpochId,
    /// Satisfying glsns inside the epoch, sorted ascending. Empty
    /// deltas are delivered too — "nothing new matched" is itself an
    /// auditing signal.
    pub glsns: Vec<Glsn>,
}

/// One registered subscription.
struct StandingEntry {
    criteria: String,
    normalized: NormalizedQuery,
    /// Accumulated union of all delta glsns.
    matches: BTreeSet<Glsn>,
    /// Deltas emitted but not yet drained by the subscriber.
    pending: Vec<StandingDelta>,
    /// Epochs already folded in — the seal path and the registration
    /// catch-up are both idempotent against this set.
    evaluated: BTreeSet<EpochId>,
}

/// The cluster's registry of standing queries. Held by
/// [`crate::cluster::DlaCluster`]; all evaluation is driven from the
/// seal path there — this type only owns subscription state.
#[derive(Default)]
pub struct StandingRegistry {
    next: u64,
    entries: BTreeMap<StandingQueryId, StandingEntry>,
}

impl StandingRegistry {
    /// Registers a parsed-and-normalized query, returning its id.
    pub fn register(&mut self, criteria: &str, normalized: NormalizedQuery) -> StandingQueryId {
        let id = StandingQueryId(self.next);
        self.next += 1;
        self.entries.insert(
            id,
            StandingEntry {
                criteria: criteria.to_owned(),
                normalized,
                matches: BTreeSet::new(),
                pending: Vec::new(),
                evaluated: BTreeSet::new(),
            },
        );
        id
    }

    /// Ids of every registered query, ascending.
    #[must_use]
    pub fn ids(&self) -> Vec<StandingQueryId> {
        self.entries.keys().copied().collect()
    }

    /// Number of registered queries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no query is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The original criteria text of `id`.
    #[must_use]
    pub fn criteria(&self, id: StandingQueryId) -> Option<&str> {
        self.entries.get(&id).map(|e| e.criteria.as_str())
    }

    /// The normalized form of `id` (cloned so the seal path can plan
    /// against it while holding `&mut` cluster state).
    #[must_use]
    pub fn normalized(&self, id: StandingQueryId) -> Option<NormalizedQuery> {
        self.entries.get(&id).map(|e| e.normalized.clone())
    }

    /// Whether `id` has already folded `epoch` in.
    #[must_use]
    pub fn evaluated(&self, id: StandingQueryId, epoch: EpochId) -> bool {
        self.entries
            .get(&id)
            .is_some_and(|e| e.evaluated.contains(&epoch))
    }

    /// Records `epoch`'s evaluation outcome for `id`: appends the
    /// pending delta and folds the glsns into the accumulated matches.
    pub fn push_delta(&mut self, id: StandingQueryId, epoch: EpochId, glsns: Vec<Glsn>) {
        let Some(entry) = self.entries.get_mut(&id) else {
            return;
        };
        if !entry.evaluated.insert(epoch) {
            return;
        }
        entry.matches.extend(glsns.iter().copied());
        entry.pending.push(StandingDelta {
            query: id,
            epoch,
            glsns,
        });
    }

    /// Drains the deltas pushed since the last drain, in seal order.
    pub fn drain_deltas(&mut self, id: StandingQueryId) -> Vec<StandingDelta> {
        self.entries
            .get_mut(&id)
            .map(|e| std::mem::take(&mut e.pending))
            .unwrap_or_default()
    }

    /// The accumulated matches of `id` over every evaluated epoch,
    /// sorted ascending.
    #[must_use]
    pub fn matches(&self, id: StandingQueryId) -> Option<Vec<Glsn>> {
        self.entries
            .get(&id)
            .map(|e| e.matches.iter().copied().collect())
    }

    /// Epochs `id` has folded in, ascending.
    #[must_use]
    pub fn evaluated_epochs(&self, id: StandingQueryId) -> Vec<EpochId> {
        self.entries
            .get(&id)
            .map(|e| e.evaluated.iter().copied().collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn normalized(criteria: &str) -> NormalizedQuery {
        let schema = dla_logstore::schema::Schema::paper_example();
        let parsed = crate::parser::parse(criteria, &schema).unwrap();
        crate::normal::normalize(&parsed)
    }

    #[test]
    fn registry_accumulates_and_drains_deltas() {
        let mut reg = StandingRegistry::default();
        let id = reg.register("protocol = 'UDP'", normalized("protocol = 'UDP'"));
        assert_eq!(reg.criteria(id), Some("protocol = 'UDP'"));
        assert!(!reg.evaluated(id, EpochId(0)));

        reg.push_delta(id, EpochId(0), vec![Glsn(3), Glsn(1)]);
        reg.push_delta(id, EpochId(1), vec![Glsn(7)]);
        // Re-pushing an evaluated epoch is ignored (idempotent seals).
        reg.push_delta(id, EpochId(0), vec![Glsn(99)]);

        assert!(reg.evaluated(id, EpochId(0)));
        assert_eq!(reg.matches(id), Some(vec![Glsn(1), Glsn(3), Glsn(7)]));
        assert_eq!(reg.evaluated_epochs(id), vec![EpochId(0), EpochId(1)]);

        let deltas = reg.drain_deltas(id);
        assert_eq!(deltas.len(), 2);
        assert_eq!(deltas[0].epoch, EpochId(0));
        assert_eq!(deltas[0].glsns, vec![Glsn(3), Glsn(1)]);
        assert!(reg.drain_deltas(id).is_empty(), "drained once");
        // Accumulated matches survive the drain.
        assert_eq!(reg.matches(id), Some(vec![Glsn(1), Glsn(3), Glsn(7)]));
    }

    #[test]
    fn ids_are_unique_and_ordered() {
        let mut reg = StandingRegistry::default();
        let a = reg.register("c1 > 5", normalized("c1 > 5"));
        let b = reg.register("c1 > 9", normalized("c1 > 9"));
        assert_ne!(a, b);
        assert_eq!(reg.ids(), vec![a, b]);
        assert_eq!(reg.len(), 2);
        assert_eq!(a.to_string(), "SQ#0");
    }
}
