//! Normalization of auditing criteria to the paper's conjunctive form
//! (§2): `(SQ₁) ∧ … ∧ (SQ_m)`, where each subquery `SQ_i` can be
//! "independently processed by a DLA node" (local) or by a small group
//! of nodes (cross).
//!
//! Pipeline: negations are pushed onto predicates (operator flipping —
//! `¬(a < b) ≡ a ≥ b` — so no `¬` survives), then `∨` is distributed
//! over `∧`, yielding a conjunction of disjunctive clauses. Each clause
//! becomes one subquery.

use crate::query::{Criteria, Predicate};
use dla_logstore::model::{AttrName, LogRecord};
use std::collections::BTreeSet;
use std::fmt;

/// One subquery `SQ_i`: a disjunction of atomic predicates.
#[derive(Clone, PartialEq, Debug)]
pub struct Clause {
    literals: Vec<Predicate>,
}

impl Clause {
    /// The disjoined predicates.
    #[must_use]
    pub fn literals(&self) -> &[Predicate] {
        &self.literals
    }

    /// All attributes referenced by the clause.
    #[must_use]
    pub fn attributes(&self) -> BTreeSet<AttrName> {
        self.literals
            .iter()
            .flat_map(|p| p.attributes().into_iter().cloned())
            .collect()
    }

    /// Whether any literal compares two attributes.
    #[must_use]
    pub fn has_attr_attr(&self) -> bool {
        self.literals.iter().any(Predicate::is_attr_attr)
    }

    /// Evaluates the disjunction on a complete record.
    ///
    /// # Errors
    ///
    /// Propagates predicate evaluation failures.
    pub fn eval(&self, record: &LogRecord) -> Result<bool, crate::query::EvalError> {
        for literal in &self.literals {
            if literal.eval(record)? {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.literals.iter().enumerate() {
            if i > 0 {
                write!(f, " OR ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

/// The conjunctive normal form `Q_N = SQ₁ ∧ … ∧ SQ_m`.
#[derive(Clone, PartialEq, Debug)]
pub struct NormalizedQuery {
    clauses: Vec<Clause>,
}

impl NormalizedQuery {
    /// The subqueries.
    #[must_use]
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Number of conjuncts (`q + 1` in the paper's Eq. 11 indexing;
    /// we expose the plain count).
    #[must_use]
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether there are no clauses (only for degenerate input).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Total number of atomic predicates across clauses (the `s` of
    /// Eq. 11, counted post-normalization).
    #[must_use]
    pub fn atom_count(&self) -> usize {
        self.clauses.iter().map(|c| c.literals.len()).sum()
    }

    /// Evaluates the conjunction on a complete record — must agree with
    /// the original criteria's [`Criteria::eval`].
    ///
    /// # Errors
    ///
    /// Propagates predicate evaluation failures.
    pub fn eval(&self, record: &LogRecord) -> Result<bool, crate::query::EvalError> {
        for clause in &self.clauses {
            if !clause.eval(record)? {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

impl fmt::Display for NormalizedQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Negation-normal-form intermediate: `¬` already eliminated.
#[derive(Clone, Debug)]
enum Nnf {
    Pred(Predicate),
    And(Box<Nnf>, Box<Nnf>),
    Or(Box<Nnf>, Box<Nnf>),
}

fn to_nnf(criteria: &Criteria, negated: bool) -> Nnf {
    match criteria {
        Criteria::Pred(p) => {
            let mut p = p.clone();
            if negated {
                p.op = p.op.negate();
            }
            Nnf::Pred(p)
        }
        Criteria::Not(inner) => to_nnf(inner, !negated),
        Criteria::And(a, b) => {
            let (na, nb) = (Box::new(to_nnf(a, negated)), Box::new(to_nnf(b, negated)));
            if negated {
                Nnf::Or(na, nb) // De Morgan
            } else {
                Nnf::And(na, nb)
            }
        }
        Criteria::Or(a, b) => {
            let (na, nb) = (Box::new(to_nnf(a, negated)), Box::new(to_nnf(b, negated)));
            if negated {
                Nnf::And(na, nb) // De Morgan
            } else {
                Nnf::Or(na, nb)
            }
        }
    }
}

/// CNF as a list of clauses, each a list of literals.
fn to_cnf(nnf: &Nnf) -> Vec<Vec<Predicate>> {
    match nnf {
        Nnf::Pred(p) => vec![vec![p.clone()]],
        Nnf::And(a, b) => {
            let mut clauses = to_cnf(a);
            clauses.extend(to_cnf(b));
            clauses
        }
        Nnf::Or(a, b) => {
            // Distribute: (A₁∧…∧A_m) ∨ (B₁∧…∧B_k) = ∧_{i,j} (A_i ∨ B_j).
            let left = to_cnf(a);
            let right = to_cnf(b);
            let mut clauses = Vec::with_capacity(left.len() * right.len());
            for l in &left {
                for r in &right {
                    let mut merged = l.clone();
                    merged.extend(r.iter().cloned());
                    clauses.push(merged);
                }
            }
            clauses
        }
    }
}

/// Normalizes criteria to conjunctive form.
///
/// Duplicate literals within a clause and duplicate clauses are
/// removed (they change neither semantics nor the paper's metric
/// definitions materially, but keep plans small).
#[must_use]
pub fn normalize(criteria: &Criteria) -> NormalizedQuery {
    let nnf = to_nnf(criteria, false);
    let mut clauses: Vec<Clause> = Vec::new();
    for mut literals in to_cnf(&nnf) {
        // Dedup literals (order-insensitive).
        let mut seen: Vec<Predicate> = Vec::new();
        literals.retain(|p| {
            if seen.contains(p) {
                false
            } else {
                seen.push(p.clone());
                true
            }
        });
        let clause = Clause { literals };
        if !clauses.contains(&clause) {
            clauses.push(clause);
        }
    }
    NormalizedQuery { clauses }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use dla_logstore::gen::{generate, WorkloadConfig};
    use dla_logstore::schema::Schema;
    use rand::SeedableRng;

    fn norm(src: &str) -> NormalizedQuery {
        normalize(&parse(src, &Schema::paper_example()).unwrap())
    }

    #[test]
    fn single_predicate_is_one_clause() {
        let n = norm("c1 > 5");
        assert_eq!(n.len(), 1);
        assert_eq!(n.atom_count(), 1);
        assert_eq!(n.to_string(), "(c1 > 5)");
    }

    #[test]
    fn conjunction_splits_into_clauses() {
        let n = norm("c1 > 5 AND id = 'U1' AND c2 < 10.00");
        assert_eq!(n.len(), 3);
        assert_eq!(n.atom_count(), 3);
    }

    #[test]
    fn disjunction_stays_one_clause() {
        let n = norm("c1 > 5 OR id = 'U1'");
        assert_eq!(n.len(), 1);
        assert_eq!(n.clauses()[0].literals().len(), 2);
    }

    #[test]
    fn distribution_of_or_over_and() {
        // a OR (b AND c) → (a OR b) AND (a OR c)
        let n = norm("c1 > 5 OR (id = 'U1' AND c2 < 10.00)");
        assert_eq!(n.len(), 2);
        assert_eq!(
            n.to_string(),
            "(c1 > 5 OR id = 'U1') AND (c1 > 5 OR c2 < 10.00)"
        );
    }

    #[test]
    fn negation_flips_operators() {
        let n = norm("NOT c1 > 5");
        assert_eq!(n.to_string(), "(c1 <= 5)");
        let n = norm("NOT (c1 > 5 AND id = 'U1')");
        assert_eq!(n.to_string(), "(c1 <= 5 OR id != 'U1')");
        let n = norm("NOT (c1 > 5 OR id = 'U1')");
        assert_eq!(n.to_string(), "(c1 <= 5) AND (id != 'U1')");
        let n = norm("NOT NOT c1 > 5");
        assert_eq!(n.to_string(), "(c1 > 5)");
    }

    #[test]
    fn duplicates_are_removed() {
        let n = norm("c1 > 5 AND c1 > 5");
        assert_eq!(n.len(), 1);
        let n = norm("c1 > 5 OR c1 > 5");
        assert_eq!(n.clauses()[0].literals().len(), 1);
    }

    #[test]
    fn clause_attribute_collection() {
        let n = norm("c1 > 5 OR id = c3");
        let attrs = n.clauses()[0].attributes();
        assert!(attrs.contains(&"c1".into()));
        assert!(attrs.contains(&"id".into()));
        assert!(attrs.contains(&"c3".into()));
        assert!(n.clauses()[0].has_attr_attr());
        assert!(!norm("c1 > 5").clauses()[0].has_attr_attr());
    }

    #[test]
    fn normalized_form_preserves_semantics_on_random_workload() {
        let schema = Schema::paper_example();
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        let records = generate(
            &WorkloadConfig {
                records: 200,
                ..WorkloadConfig::default()
            },
            &mut rng,
        );
        let queries = [
            "c1 > 50",
            "c1 > 50 AND protocol = 'TCP'",
            "NOT (c1 > 50 OR protocol = 'TCP')",
            "(id = 'U1' OR id = 'U2') AND c2 >= 100.00",
            "NOT (NOT c1 > 10 AND NOT (protocol = 'UDP' OR c2 < 50.00))",
            "c1 > 20 OR (c1 <= 20 AND protocol = 'TCP') OR id = 'U3'",
        ];
        for src in queries {
            let q = parse(src, &schema).unwrap();
            let n = normalize(&q);
            for r in &records {
                assert_eq!(
                    q.eval(r).unwrap(),
                    n.eval(r).unwrap(),
                    "query {src} diverged on {r:?}"
                );
            }
        }
    }

    #[test]
    fn deeply_nested_negations() {
        let n = norm("NOT (NOT (NOT c1 > 5))");
        assert_eq!(n.to_string(), "(c1 <= 5)");
    }
}
