//! Confidential aggregate auditing (paper §1: "the auditor can
//! retrieve certain aggregated system information e.g., number of
//! transactions, total of volumes … without having to access the full
//! log data").
//!
//! * [`count_matching`] — how many records satisfy a criterion. The
//!   query pipeline runs **without the final reveal**, so the auditor
//!   learns a number, not which records.
//! * [`sum_matching`] — the total of a numeric attribute over the
//!   matching records. The attribute's owner node computes its partial
//!   total locally, and the cluster runs the §3.5 secure-sum protocol
//!   (every node contributes; non-owners contribute 0) so the auditor
//!   receives only the reconstructed aggregate — it cannot tell which
//!   node(s) contributed, and no per-record value ever leaves its
//!   owner.
//! * [`windowed_bucket_aggregate`] — count/sum over one predicate
//!   bucket (`attr = 'value'`) restricted to a time window, answered
//!   from the per-epoch partials materialized at seal time: a window
//!   query combines O(epochs-in-window) precomputed partials instead
//!   of rescanning fragments, falling back to an epoch-local scan only
//!   where the cache cannot prove coverage. Cached partials are
//!   integrity-checked against the aggregate commitment folded into
//!   each epoch's checkpoint link before they are believed.

use crate::cluster::{epoch_aggregates_digest, DlaCluster};
use crate::exec;
use crate::plan::TimeWindow;
use crate::AuditError;
use dla_bigint::F61;
use dla_logstore::epoch::EpochId;
use dla_logstore::model::{AttrName, AttrValue, Glsn};
use dla_mpc::report::ProtocolReport;
use dla_mpc::sum::secure_sum;
use dla_net::wire::{Reader, Writer};
use dla_net::NodeId;

/// Result of a confidential count.
#[derive(Debug)]
pub struct CountOutcome {
    /// Number of satisfying records.
    pub count: usize,
    /// Protocol cost reports.
    pub reports: Vec<ProtocolReport>,
}

/// Counts records satisfying `criteria` without revealing which.
///
/// # Errors
///
/// Returns [`AuditError`] on parse/plan/protocol failures.
pub fn count_matching(
    cluster: &mut DlaCluster,
    criteria: &str,
) -> Result<CountOutcome, AuditError> {
    let parsed = crate::parser::parse(criteria, cluster.schema())
        .map_err(|e| AuditError::Parse(e.to_string()))?;
    let normalized = crate::normal::normalize(&parsed);
    let plan = crate::plan::plan(&normalized, cluster.partition())?;
    let result = exec::execute_with_reveal(cluster, &plan, false)?;
    debug_assert!(result.glsns.is_empty(), "count must not reveal glsns");
    Ok(CountOutcome {
        count: result.cardinality,
        reports: result.reports,
    })
}

/// Result of a confidential aggregate sum.
#[derive(Debug)]
pub struct SumOutcome {
    /// The aggregate, in the attribute's native unit (hundredths for
    /// fixed-point attributes).
    pub total: u64,
    /// Number of contributing records.
    pub count: usize,
    /// Protocol cost reports.
    pub reports: Vec<ProtocolReport>,
}

/// Sums `attr` over all records satisfying `criteria`.
///
/// Only non-negative `Int` and `Fixed2` attributes can be aggregated
/// (they are the paper's counts and volumes).
///
/// # Errors
///
/// Returns [`AuditError`] on parse/plan/protocol failures, if `attr`
/// is not numeric, or a value is negative.
pub fn sum_matching(
    cluster: &mut DlaCluster,
    criteria: &str,
    attr: &AttrName,
) -> Result<SumOutcome, AuditError> {
    let owner = cluster.partition().node_of(attr).ok_or_else(|| {
        AuditError::Planning(format!("attribute {attr} is not served by any node"))
    })?;

    // Phase 1: the matching glsn set, revealed to the auditor engine.
    let parsed = crate::parser::parse(criteria, cluster.schema())
        .map_err(|e| AuditError::Parse(e.to_string()))?;
    let normalized = crate::normal::normalize(&parsed);
    let plan = crate::plan::plan(&normalized, cluster.partition())?;
    let result = exec::execute_with_reveal(cluster, &plan, true)?;
    let mut reports = result.reports;
    let glsns = result.glsns;

    // Phase 2: the auditor ships the glsn list to the owner, which
    // computes its partial total locally.
    let auditor = cluster.auditor_node();
    let mut w = Writer::new();
    w.put_u8(0x70).put_list(&glsns, |w, g| {
        w.put_u64(g.0);
    });
    cluster.net_mut().send(auditor, NodeId(owner), w.finish());
    let envelope = cluster
        .net_mut()
        .recv_from(NodeId(owner), auditor)
        .map_err(AuditError::Net)?;
    let mut r = Reader::new(&envelope.payload);
    let _ = r.get_u8().map_err(|e| AuditError::Parse(e.to_string()))?;
    let requested: Vec<Glsn> = r
        .get_list(|r| r.get_u64().map(Glsn))
        .map_err(|e| AuditError::Parse(e.to_string()))?;

    let mut partial: u64 = 0;
    let owner_store = cluster.node(owner).store();
    for glsn in &requested {
        let Some(frag) = owner_store.get_local(*glsn) else {
            continue;
        };
        match frag.values.get(attr) {
            Some(AttrValue::Int(v)) | Some(AttrValue::Fixed2(v)) => {
                if *v < 0 {
                    return Err(AuditError::Planning(format!(
                        "negative value in aggregate over {attr}"
                    )));
                }
                partial += *v as u64;
            }
            Some(_) => {
                return Err(AuditError::Planning(format!(
                    "attribute {attr} is not numeric"
                )));
            }
            None => {}
        }
    }
    drop(owner_store);

    // Phase 3: the §3.5 secure sum over all nodes (owner contributes
    // its partial, everyone else 0), reconstructed by the auditor.
    let n = cluster.num_nodes();
    let parties: Vec<NodeId> = (0..n).map(NodeId).collect();
    let inputs: Vec<F61> = (0..n)
        .map(|i| {
            if i == owner {
                F61::new(partial)
            } else {
                F61::ZERO
            }
        })
        .collect();
    let k = (n / 2 + 1).min(n);
    let (mut net, rng) = cluster.net_and_rng();
    let sum = secure_sum(&mut net, &parties, &inputs, k, auditor, rng).map_err(AuditError::Mpc)?;
    reports.push(sum.report.clone());

    Ok(SumOutcome {
        total: sum.total.value(),
        count: glsns.len(),
        reports,
    })
}

/// Which machinery answers a [`windowed_bucket_aggregate`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AggregatePath {
    /// Combine sealed epochs' materialized partials where coverage is
    /// provable, scanning only the epochs the cache cannot answer.
    #[default]
    Cached,
    /// Ignore the cache entirely: scan the owner's whole trail. The
    /// baseline the cached path must agree with byte for byte.
    Rescan,
}

/// Result of a [`windowed_bucket_aggregate`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WindowedAggregate {
    /// Records in the bucket inside the window.
    pub count: u64,
    /// Sum of the requested numeric attribute over those records
    /// (`None` when no sum attribute was requested).
    pub sum: Option<i64>,
    /// Epochs answered from cached partials.
    pub epochs_cached: usize,
    /// Epochs answered by scanning fragments.
    pub epochs_scanned: usize,
    /// Fragments visited by scanning (the work the cache avoids).
    pub fragments_scanned: u64,
}

/// Whether `t` satisfies the window's inclusive bounds.
fn in_window(window: &TimeWindow, t: u64) -> bool {
    window.lo.is_none_or(|lo| t >= lo) && window.hi.is_none_or(|hi| t <= hi)
}

/// Whether the window contains the *entire* inclusive range `[lo, hi]`.
fn window_covers(window: &TimeWindow, lo: u64, hi: u64) -> bool {
    window.lo.is_none_or(|w| lo >= w) && window.hi.is_none_or(|w| hi <= w)
}

/// Counts (and optionally sums over) the records whose `attr` equals
/// the text `value`, restricted to `window` over the `time` attribute.
/// Records without a `time` are excluded whenever the window is
/// bounded, mirroring strict predicate evaluation.
///
/// Under [`AggregatePath::Cached`] each sealed epoch whose observed
/// time extent the window fully covers — and whose every deposit
/// carried a time — is answered from its materialized
/// [`dla_logstore::epoch::EpochPartials`], after re-deriving the
/// cluster-wide aggregate commitment and checking it against the
/// epoch's checkpoint. Everything else (open epochs, boundary-straddled
/// epochs) is scanned fragment by fragment, so both paths return
/// identical answers by construction — the bench and chaos suites
/// assert it empirically.
///
/// # Errors
///
/// Returns [`AuditError::Planning`] if `attr` is unserved, or if
/// `sum_attr` is not co-located with `attr` (per-record pairing happens
/// at the owner); [`AuditError::Integrity`] if a cached partial fails
/// its checkpoint commitment.
pub fn windowed_bucket_aggregate(
    cluster: &DlaCluster,
    attr: &AttrName,
    value: &str,
    sum_attr: Option<&AttrName>,
    window: &TimeWindow,
    path: AggregatePath,
) -> Result<WindowedAggregate, AuditError> {
    let owner = cluster.partition().node_of(attr).ok_or_else(|| {
        AuditError::Planning(format!("attribute {attr} is not served by any node"))
    })?;
    if let Some(sa) = sum_attr {
        let sum_owner = cluster.partition().node_of(sa).ok_or_else(|| {
            AuditError::Planning(format!("attribute {sa} is not served by any node"))
        })?;
        if sum_owner != owner {
            return Err(AuditError::Planning(format!(
                "sum attribute {sa} (node {sum_owner}) is not co-located with \
                 bucket attribute {attr} (node {owner}); partial aggregation \
                 pairs them per record at the owner"
            )));
        }
    }
    let time_attr = AttrName::new("time");
    let time_owner = cluster.partition().node_of(&time_attr);

    let mut out = WindowedAggregate {
        count: 0,
        sum: sum_attr.map(|_| 0),
        epochs_cached: 0,
        epochs_scanned: 0,
        fragments_scanned: 0,
    };
    if window.is_empty() {
        return Ok(out);
    }

    // The record's time lives at its own owner node, not necessarily
    // beside the bucket attribute.
    let record_time = |glsn| -> Option<u64> {
        let store = cluster.node(time_owner?).store();
        match store.get_local(glsn).and_then(|f| f.values.get(&time_attr)) {
            Some(AttrValue::Time(t)) => Some(*t),
            _ => None,
        }
    };
    let bounded = !window.is_unbounded();

    // One epoch's contribution by scanning the owner's fragments over
    // the epoch's nominal glsn range (the partials' own scan surface).
    let scan_epoch = |epoch: EpochId, out: &mut WindowedAggregate| {
        let (lo, hi) = cluster.epoch_policy().glsn_range(epoch);
        let store = cluster.node(owner).store();
        for frag in store.scan_window(lo, hi) {
            out.fragments_scanned += 1;
            if frag.values.get(attr) != Some(&AttrValue::text(value)) {
                continue;
            }
            if bounded {
                let Some(t) = record_time(frag.glsn) else {
                    continue;
                };
                if !in_window(window, t) {
                    continue;
                }
            }
            out.count += 1;
            if let (Some(sa), Some(total)) = (sum_attr, out.sum.as_mut()) {
                if let Some(AttrValue::Int(v) | AttrValue::Fixed2(v)) = frag.values.get(sa) {
                    *total = total.wrapping_add(*v);
                }
            }
        }
        out.epochs_scanned += 1;
    };

    match path {
        AggregatePath::Rescan => {
            // The linear baseline: every observed epoch is scanned.
            let epochs: Vec<EpochId> = cluster.epoch_stats().map(|s| s.epoch).collect();
            for epoch in epochs {
                scan_epoch(epoch, &mut out);
            }
        }
        AggregatePath::Cached => {
            for stats in cluster.epoch_stats() {
                if bounded {
                    // A bounded window needs timed records; an epoch
                    // with none, or whose extent misses the window,
                    // contributes nothing.
                    let (Some(t_lo), Some(t_hi)) = (stats.time_lo, stats.time_hi) else {
                        continue;
                    };
                    if !window.intersects(t_lo, t_hi) {
                        continue;
                    }
                    let fully_covered =
                        window_covers(window, t_lo, t_hi) && stats.timed == stats.deposits;
                    if !(stats.sealed && fully_covered) {
                        scan_epoch(stats.epoch, &mut out);
                        continue;
                    }
                } else if !stats.sealed {
                    scan_epoch(stats.epoch, &mut out);
                    continue;
                }
                // Cached leg. The commitment folded into the checkpoint
                // link endorses exactly these partials; verify before
                // believing them.
                let store = cluster.node(owner).store();
                let Some(partials) = store.epoch_partials(stats.epoch) else {
                    drop(store);
                    scan_epoch(stats.epoch, &mut out);
                    continue;
                };
                let committed = cluster
                    .checkpoint_chain()
                    .get(stats.epoch.0)
                    .map(|c| c.aggregates);
                let (count, sum) = match partials.bucket(attr, value) {
                    Some(bucket) => (
                        bucket.count,
                        sum_attr.map(|sa| bucket.sums.get(sa).map_or(0, |p| p.total)),
                    ),
                    None => (0, sum_attr.map(|_| 0)),
                };
                drop(store);
                let derived = epoch_aggregates_digest(cluster.nodes(), stats.epoch);
                if committed != Some(derived) {
                    return Err(AuditError::Integrity(format!(
                        "epoch {} cached partials do not match the checkpointed \
                         aggregate commitment",
                        stats.epoch
                    )));
                }
                out.count += count;
                if let (Some(total), Some(s)) = (out.sum.as_mut(), sum) {
                    *total = total.wrapping_add(s);
                }
                out.epochs_cached += 1;
                dla_telemetry::record(dla_telemetry::CostKind::PartialCombine, 1);
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use dla_logstore::fragment::Partition;
    use dla_logstore::gen::paper_table1;
    use dla_logstore::schema::Schema;

    fn loaded() -> DlaCluster {
        let schema = Schema::paper_example();
        let partition = Partition::paper_example(&schema);
        let mut cluster = DlaCluster::new(
            ClusterConfig::new(4, schema)
                .with_partition(partition)
                .with_seed(77),
        )
        .unwrap();
        let user = cluster.register_user("u").unwrap();
        cluster.log_records(&user, &paper_table1()).unwrap();
        cluster
    }

    #[test]
    fn count_without_reveal() {
        let mut cluster = loaded();
        let outcome = count_matching(&mut cluster, "protocol = 'UDP'").unwrap();
        assert_eq!(outcome.count, 3);
        let outcome = count_matching(&mut cluster, "c1 > 1000").unwrap();
        assert_eq!(outcome.count, 0);
    }

    #[test]
    fn sum_of_volumes_matches_table1() {
        let mut cluster = loaded();
        // Total volume (c2) over UDP transactions: 23.45+345.11+235.00.
        let outcome = sum_matching(&mut cluster, "protocol = 'UDP'", &"c2".into()).unwrap();
        assert_eq!(outcome.total, 2345 + 34511 + 23500);
        assert_eq!(outcome.count, 3);
    }

    #[test]
    fn sum_of_counts() {
        let mut cluster = loaded();
        // Sum of c1 over everything: 20+34+45+18+53 = 170.
        let outcome = sum_matching(&mut cluster, "c1 >= 0", &"c1".into()).unwrap();
        assert_eq!(outcome.total, 170);
        assert_eq!(outcome.count, 5);
    }

    #[test]
    fn sum_over_empty_match_is_zero() {
        let mut cluster = loaded();
        let outcome = sum_matching(&mut cluster, "c1 > 1000", &"c1".into()).unwrap();
        assert_eq!(outcome.total, 0);
        assert_eq!(outcome.count, 0);
    }

    #[test]
    fn sum_rejects_text_attribute() {
        let mut cluster = loaded();
        let err = sum_matching(&mut cluster, "c1 > 0", &"c3".into()).unwrap_err();
        assert!(err.to_string().contains("not numeric"));
    }

    #[test]
    fn sum_rejects_unknown_attribute() {
        let mut cluster = loaded();
        assert!(sum_matching(&mut cluster, "c1 > 0", &"nope".into()).is_err());
    }

    #[test]
    fn aggregate_uses_secure_sum_protocol() {
        let mut cluster = loaded();
        let outcome = sum_matching(&mut cluster, "c1 > 0", &"c1".into()).unwrap();
        assert!(outcome.reports.iter().any(|r| r.protocol == "secure-sum"));
    }

    fn epoch_loaded(
        epoch_length: u64,
        records: usize,
    ) -> (DlaCluster, Vec<dla_logstore::model::LogRecord>) {
        use rand::SeedableRng;
        let schema = Schema::paper_example();
        let partition = Partition::paper_example(&schema);
        let mut cluster = DlaCluster::new(
            ClusterConfig::new(4, schema)
                .with_partition(partition)
                .with_seed(42)
                .with_epoch_length(epoch_length),
        )
        .unwrap();
        let user = cluster.register_user("u").unwrap();
        let workload = dla_logstore::gen::generate(
            &dla_logstore::gen::WorkloadConfig {
                records,
                ..Default::default()
            },
            &mut rand::rngs::StdRng::seed_from_u64(5),
        );
        cluster.log_records(&user, &workload).unwrap();
        (cluster, workload)
    }

    fn record_time(record: &dla_logstore::model::LogRecord) -> u64 {
        match record.get(&"time".into()) {
            Some(AttrValue::Time(t)) => *t,
            other => panic!("workload records carry a time, got {other:?}"),
        }
    }

    #[test]
    fn windowed_bucket_aggregate_cached_equals_rescan() {
        let (cluster, workload) = epoch_loaded(4, 24);
        let times: Vec<u64> = workload.iter().map(record_time).collect();
        let window = TimeWindow {
            lo: Some(times[3]),
            hi: Some(times[19]),
        };
        let attr: AttrName = "protocol".into();
        let sum_attr: AttrName = "c1".into();
        for value in ["UDP", "TCP"] {
            let cached = windowed_bucket_aggregate(
                &cluster,
                &attr,
                value,
                Some(&sum_attr),
                &window,
                AggregatePath::Cached,
            )
            .unwrap();
            let rescan = windowed_bucket_aggregate(
                &cluster,
                &attr,
                value,
                Some(&sum_attr),
                &window,
                AggregatePath::Rescan,
            )
            .unwrap();
            assert_eq!((cached.count, cached.sum), (rescan.count, rescan.sum));
            assert!(
                cached.epochs_cached > 0,
                "a fully-covered sealed epoch must be answered from cache"
            );
            assert!(
                cached.fragments_scanned < rescan.fragments_scanned,
                "cache must reduce scan work: {} vs {}",
                cached.fragments_scanned,
                rescan.fragments_scanned
            );
            // Reference: count by hand from the workload.
            let expected: u64 = workload
                .iter()
                .filter(|r| {
                    r.get(&attr) == Some(&AttrValue::text(value))
                        && (times[3]..=times[19]).contains(&record_time(r))
                })
                .count() as u64;
            assert_eq!(cached.count, expected);
        }
    }

    #[test]
    fn windowed_bucket_aggregate_unbounded_counts_everything() {
        let (cluster, workload) = epoch_loaded(4, 12);
        let attr: AttrName = "id".into();
        let sum_attr: AttrName = "c2".into();
        let value = match workload[0].get(&attr) {
            Some(AttrValue::Text(s)) => s.clone(),
            other => panic!("id is text, got {other:?}"),
        };
        let cached = windowed_bucket_aggregate(
            &cluster,
            &attr,
            &value,
            Some(&sum_attr),
            &TimeWindow::unbounded(),
            AggregatePath::Cached,
        )
        .unwrap();
        let rescan = windowed_bucket_aggregate(
            &cluster,
            &attr,
            &value,
            Some(&sum_attr),
            &TimeWindow::unbounded(),
            AggregatePath::Rescan,
        )
        .unwrap();
        assert_eq!((cached.count, cached.sum), (rescan.count, rescan.sum));
        let expected: i64 = workload
            .iter()
            .filter(|r| r.get(&attr) == Some(&AttrValue::text(&value)))
            .map(|r| match r.get(&sum_attr) {
                Some(AttrValue::Fixed2(v) | AttrValue::Int(v)) => *v,
                other => panic!("c2 is numeric, got {other:?}"),
            })
            .sum();
        assert_eq!(cached.sum, Some(expected));
    }

    #[test]
    fn windowed_bucket_aggregate_rejects_non_colocated_sum() {
        let (cluster, _) = epoch_loaded(4, 8);
        // protocol lives on P3, c2 on P1.
        let err = windowed_bucket_aggregate(
            &cluster,
            &"protocol".into(),
            "UDP",
            Some(&"c2".into()),
            &TimeWindow::unbounded(),
            AggregatePath::Cached,
        )
        .unwrap_err();
        assert!(err.to_string().contains("co-located"), "{err}");
    }

    #[test]
    fn tampered_cached_partials_fail_the_checkpoint_commitment() {
        let (cluster, _) = epoch_loaded(4, 16);
        let owner = cluster.partition().node_of(&"protocol".into()).unwrap();
        // Tamper the cached partials of a sealed epoch directly in the
        // owner's manifest.
        {
            let mut store = cluster.node(owner).store_mut();
            let epoch = store
                .epoch_manifests()
                .find(|m| m.sealed && m.partials.is_some())
                .map(|m| m.epoch)
                .expect("a sealed epoch with partials");
            let mut partials = store.epoch_partials(epoch).unwrap().clone();
            partials.fragments += 1;
            assert!(store.tamper_partials(epoch, partials));
        }
        let err = windowed_bucket_aggregate(
            &cluster,
            &"protocol".into(),
            "UDP",
            None,
            &TimeWindow::unbounded(),
            AggregatePath::Cached,
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("aggregate commitment"),
            "cached partials must be integrity-checked: {err}"
        );
    }
}
