//! Confidential aggregate auditing (paper §1: "the auditor can
//! retrieve certain aggregated system information e.g., number of
//! transactions, total of volumes … without having to access the full
//! log data").
//!
//! * [`count_matching`] — how many records satisfy a criterion. The
//!   query pipeline runs **without the final reveal**, so the auditor
//!   learns a number, not which records.
//! * [`sum_matching`] — the total of a numeric attribute over the
//!   matching records. The attribute's owner node computes its partial
//!   total locally, and the cluster runs the §3.5 secure-sum protocol
//!   (every node contributes; non-owners contribute 0) so the auditor
//!   receives only the reconstructed aggregate — it cannot tell which
//!   node(s) contributed, and no per-record value ever leaves its
//!   owner.

use crate::cluster::DlaCluster;
use crate::exec;
use crate::AuditError;
use dla_bigint::F61;
use dla_logstore::model::{AttrName, AttrValue, Glsn};
use dla_mpc::report::ProtocolReport;
use dla_mpc::sum::secure_sum;
use dla_net::wire::{Reader, Writer};
use dla_net::NodeId;

/// Result of a confidential count.
#[derive(Debug)]
pub struct CountOutcome {
    /// Number of satisfying records.
    pub count: usize,
    /// Protocol cost reports.
    pub reports: Vec<ProtocolReport>,
}

/// Counts records satisfying `criteria` without revealing which.
///
/// # Errors
///
/// Returns [`AuditError`] on parse/plan/protocol failures.
pub fn count_matching(
    cluster: &mut DlaCluster,
    criteria: &str,
) -> Result<CountOutcome, AuditError> {
    let parsed = crate::parser::parse(criteria, cluster.schema())
        .map_err(|e| AuditError::Parse(e.to_string()))?;
    let normalized = crate::normal::normalize(&parsed);
    let plan = crate::plan::plan(&normalized, cluster.partition())?;
    let result = exec::execute_with_reveal(cluster, &plan, false)?;
    debug_assert!(result.glsns.is_empty(), "count must not reveal glsns");
    Ok(CountOutcome {
        count: result.cardinality,
        reports: result.reports,
    })
}

/// Result of a confidential aggregate sum.
#[derive(Debug)]
pub struct SumOutcome {
    /// The aggregate, in the attribute's native unit (hundredths for
    /// fixed-point attributes).
    pub total: u64,
    /// Number of contributing records.
    pub count: usize,
    /// Protocol cost reports.
    pub reports: Vec<ProtocolReport>,
}

/// Sums `attr` over all records satisfying `criteria`.
///
/// Only non-negative `Int` and `Fixed2` attributes can be aggregated
/// (they are the paper's counts and volumes).
///
/// # Errors
///
/// Returns [`AuditError`] on parse/plan/protocol failures, if `attr`
/// is not numeric, or a value is negative.
pub fn sum_matching(
    cluster: &mut DlaCluster,
    criteria: &str,
    attr: &AttrName,
) -> Result<SumOutcome, AuditError> {
    let owner = cluster.partition().node_of(attr).ok_or_else(|| {
        AuditError::Planning(format!("attribute {attr} is not served by any node"))
    })?;

    // Phase 1: the matching glsn set, revealed to the auditor engine.
    let parsed = crate::parser::parse(criteria, cluster.schema())
        .map_err(|e| AuditError::Parse(e.to_string()))?;
    let normalized = crate::normal::normalize(&parsed);
    let plan = crate::plan::plan(&normalized, cluster.partition())?;
    let result = exec::execute_with_reveal(cluster, &plan, true)?;
    let mut reports = result.reports;
    let glsns = result.glsns;

    // Phase 2: the auditor ships the glsn list to the owner, which
    // computes its partial total locally.
    let auditor = cluster.auditor_node();
    let mut w = Writer::new();
    w.put_u8(0x70).put_list(&glsns, |w, g| {
        w.put_u64(g.0);
    });
    cluster.net_mut().send(auditor, NodeId(owner), w.finish());
    let envelope = cluster
        .net_mut()
        .recv_from(NodeId(owner), auditor)
        .map_err(AuditError::Net)?;
    let mut r = Reader::new(&envelope.payload);
    let _ = r.get_u8().map_err(|e| AuditError::Parse(e.to_string()))?;
    let requested: Vec<Glsn> = r
        .get_list(|r| r.get_u64().map(Glsn))
        .map_err(|e| AuditError::Parse(e.to_string()))?;

    let mut partial: u64 = 0;
    let owner_store = cluster.node(owner).store();
    for glsn in &requested {
        let Some(frag) = owner_store.get_local(*glsn) else {
            continue;
        };
        match frag.values.get(attr) {
            Some(AttrValue::Int(v)) | Some(AttrValue::Fixed2(v)) => {
                if *v < 0 {
                    return Err(AuditError::Planning(format!(
                        "negative value in aggregate over {attr}"
                    )));
                }
                partial += *v as u64;
            }
            Some(_) => {
                return Err(AuditError::Planning(format!(
                    "attribute {attr} is not numeric"
                )));
            }
            None => {}
        }
    }
    drop(owner_store);

    // Phase 3: the §3.5 secure sum over all nodes (owner contributes
    // its partial, everyone else 0), reconstructed by the auditor.
    let n = cluster.num_nodes();
    let parties: Vec<NodeId> = (0..n).map(NodeId).collect();
    let inputs: Vec<F61> = (0..n)
        .map(|i| {
            if i == owner {
                F61::new(partial)
            } else {
                F61::ZERO
            }
        })
        .collect();
    let k = (n / 2 + 1).min(n);
    let (mut net, rng) = cluster.net_and_rng();
    let sum = secure_sum(&mut net, &parties, &inputs, k, auditor, rng).map_err(AuditError::Mpc)?;
    reports.push(sum.report.clone());

    Ok(SumOutcome {
        total: sum.total.value(),
        count: glsns.len(),
        reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use dla_logstore::fragment::Partition;
    use dla_logstore::gen::paper_table1;
    use dla_logstore::schema::Schema;

    fn loaded() -> DlaCluster {
        let schema = Schema::paper_example();
        let partition = Partition::paper_example(&schema);
        let mut cluster = DlaCluster::new(
            ClusterConfig::new(4, schema)
                .with_partition(partition)
                .with_seed(77),
        )
        .unwrap();
        let user = cluster.register_user("u").unwrap();
        cluster.log_records(&user, &paper_table1()).unwrap();
        cluster
    }

    #[test]
    fn count_without_reveal() {
        let mut cluster = loaded();
        let outcome = count_matching(&mut cluster, "protocol = 'UDP'").unwrap();
        assert_eq!(outcome.count, 3);
        let outcome = count_matching(&mut cluster, "c1 > 1000").unwrap();
        assert_eq!(outcome.count, 0);
    }

    #[test]
    fn sum_of_volumes_matches_table1() {
        let mut cluster = loaded();
        // Total volume (c2) over UDP transactions: 23.45+345.11+235.00.
        let outcome = sum_matching(&mut cluster, "protocol = 'UDP'", &"c2".into()).unwrap();
        assert_eq!(outcome.total, 2345 + 34511 + 23500);
        assert_eq!(outcome.count, 3);
    }

    #[test]
    fn sum_of_counts() {
        let mut cluster = loaded();
        // Sum of c1 over everything: 20+34+45+18+53 = 170.
        let outcome = sum_matching(&mut cluster, "c1 >= 0", &"c1".into()).unwrap();
        assert_eq!(outcome.total, 170);
        assert_eq!(outcome.count, 5);
    }

    #[test]
    fn sum_over_empty_match_is_zero() {
        let mut cluster = loaded();
        let outcome = sum_matching(&mut cluster, "c1 > 1000", &"c1".into()).unwrap();
        assert_eq!(outcome.total, 0);
        assert_eq!(outcome.count, 0);
    }

    #[test]
    fn sum_rejects_text_attribute() {
        let mut cluster = loaded();
        let err = sum_matching(&mut cluster, "c1 > 0", &"c3".into()).unwrap_err();
        assert!(err.to_string().contains("not numeric"));
    }

    #[test]
    fn sum_rejects_unknown_attribute() {
        let mut cluster = loaded();
        assert!(sum_matching(&mut cluster, "c1 > 0", &"nope".into()).is_err());
    }

    #[test]
    fn aggregate_uses_secure_sum_protocol() {
        let mut cluster = loaded();
        let outcome = sum_matching(&mut cluster, "c1 > 0", &"c1".into()).unwrap();
        assert!(outcome.reports.iter().any(|r| r.protocol == "secure-sum"));
    }
}
