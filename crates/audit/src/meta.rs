//! Cluster-level meta-audit trail: "who audits the auditor".
//!
//! The cluster journals its own privileged actions — deposits accepted,
//! users registered, re-replications performed, degraded-mode decisions
//! taken by the resilient executor — in a [`MetaJournal`] chained with
//! the system's SHA-256, and *additionally* folds every link into the
//! paper's one-way accumulator (§4.1), the same primitive users deposit
//! record digests with. An operator holding the `(chain head,
//! accumulated value)` pair can hand the journal to a third party and
//! have truncation, reordering or rewriting of the cluster's activity
//! history detected.
//!
//! The accumulator is quasi-commutative, so the fold alone would accept
//! a reordered journal; each item is therefore the digest of the record
//! *bound to its position* ([`MetaRecord::encode_at`]), making the
//! accumulated value order-sensitive.

use crate::AuditError;
use dla_bigint::Ubig;
use dla_crypto::accumulator::AccumulatorParams;
use dla_crypto::sha256;
use dla_telemetry::{MetaJournal, MetaRecord};

/// SHA-256 adapter for the dependency-free journal's injected hasher.
fn sha256_chain(data: &[u8]) -> Vec<u8> {
    sha256::digest(data).to_vec()
}

/// Position-bound accumulator item for the record at `index`.
fn item_at(record: &MetaRecord, index: u64) -> Vec<u8> {
    sha256_chain(&record.encode_at(index))
}

/// The cluster's tamper-evident activity journal: a SHA-256 hash chain
/// plus a one-way-accumulator digest of the same records.
pub struct MetaAuditTrail {
    journal: MetaJournal,
    params: AccumulatorParams,
    acc: Ubig,
}

impl std::fmt::Debug for MetaAuditTrail {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetaAuditTrail")
            .field("records", &self.journal.len())
            .finish()
    }
}

impl MetaAuditTrail {
    /// Empty trail over the cluster's accumulator parameters.
    #[must_use]
    pub fn new(params: AccumulatorParams) -> Self {
        let acc = params.accumulate(std::iter::empty());
        MetaAuditTrail {
            journal: MetaJournal::new(sha256_chain),
            params,
            acc,
        }
    }

    /// Journals one action at virtual time `at_ns`, advancing both the
    /// hash chain and the accumulated value.
    pub fn record(
        &mut self,
        at_ns: u64,
        actor: impl Into<String>,
        action: impl Into<String>,
        detail: impl Into<String>,
    ) -> &MetaRecord {
        let record = self.journal.append(at_ns, actor, action, detail);
        let seq = record.seq;
        let item = item_at(record, seq);
        self.acc = self.params.fold(&self.acc, &item);
        self.journal.records().last().expect("just appended")
    }

    /// All journaled actions in append order.
    #[must_use]
    pub fn records(&self) -> &[MetaRecord] {
        self.journal.records()
    }

    /// Number of journaled actions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.journal.len()
    }

    /// True when nothing has been journaled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.journal.is_empty()
    }

    /// The SHA-256 chain head.
    #[must_use]
    pub fn head(&self) -> &[u8] {
        self.journal.head()
    }

    /// The accumulated value over all position-bound record digests.
    #[must_use]
    pub fn accumulator(&self) -> &Ubig {
        &self.acc
    }

    /// Verifies the trail's own records against its own commitments.
    ///
    /// # Errors
    ///
    /// As [`MetaAuditTrail::verify_presented`].
    pub fn verify(&self) -> Result<(), AuditError> {
        Self::verify_presented(self.records(), self.head(), &self.acc, &self.params)
    }

    /// Verifies a presented journal against an expected `(chain head,
    /// accumulated value)` commitment pair: the accumulator is refolded
    /// from the presented order and the hash chain recomputed.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Integrity`] when the refolded accumulator
    /// disagrees with `expected_acc` (truncated, reordered or rewritten
    /// journal) or the hash chain fails.
    pub fn verify_presented(
        records: &[MetaRecord],
        expected_head: &[u8],
        expected_acc: &Ubig,
        params: &AccumulatorParams,
    ) -> Result<(), AuditError> {
        let refolded = records
            .iter()
            .enumerate()
            .fold(params.accumulate(std::iter::empty()), |acc, (i, r)| {
                params.fold(&acc, &item_at(r, i as u64))
            });
        if refolded != *expected_acc {
            return Err(AuditError::Integrity(
                "meta-audit accumulator mismatch: journal truncated, reordered or rewritten".into(),
            ));
        }
        MetaJournal::verify(records, expected_head, sha256_chain)
            .map_err(|e| AuditError::Integrity(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trail() -> MetaAuditTrail {
        let mut trail = MetaAuditTrail::new(AccumulatorParams::fixed_512());
        trail.record(100, "cluster", "deposit", "glsn=G0");
        trail.record(250, "cluster", "deposit", "glsn=G1");
        trail.record(900, "executor", "degraded-replan", "dead={2}");
        trail.record(1400, "cluster", "rereplicate", "adopted=1 verified=2");
        trail
    }

    #[test]
    fn untampered_trail_verifies() {
        let trail = sample_trail();
        trail.verify().expect("clean trail verifies");
        assert_eq!(trail.len(), 4);
        assert_eq!(trail.records()[2].action, "degraded-replan");
    }

    #[test]
    fn truncation_fails_the_accumulator_check() {
        let trail = sample_trail();
        let err = MetaAuditTrail::verify_presented(
            &trail.records()[..trail.len() - 1],
            trail.head(),
            trail.accumulator(),
            &AccumulatorParams::fixed_512(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("accumulator mismatch"), "{err}");
    }

    #[test]
    fn reordering_fails_despite_quasi_commutativity() {
        // The raw accumulator is order-independent; position binding in
        // the items must still make a swapped journal refold to a
        // different value, even with the seq fields patched up.
        let trail = sample_trail();
        let mut swapped = trail.records().to_vec();
        swapped.swap(0, 1);
        let (a, b) = (swapped[0].seq, swapped[1].seq);
        swapped[0].seq = b.min(a);
        swapped[1].seq = b.max(a);
        let err = MetaAuditTrail::verify_presented(
            &swapped,
            trail.head(),
            trail.accumulator(),
            &AccumulatorParams::fixed_512(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("accumulator mismatch"), "{err}");
    }

    #[test]
    fn rewrite_fails_verification() {
        let trail = sample_trail();
        let mut edited = trail.records().to_vec();
        edited[3].detail = "adopted=1 verified=99".into();
        assert!(MetaAuditTrail::verify_presented(
            &edited,
            trail.head(),
            trail.accumulator(),
            &AccumulatorParams::fixed_512(),
        )
        .is_err());
    }

    #[test]
    fn empty_trail_verifies_and_commits_to_x0() {
        let trail = MetaAuditTrail::new(AccumulatorParams::fixed_512());
        assert!(trail.is_empty());
        trail.verify().expect("empty trail verifies");
    }
}
