//! The centralized auditing baseline (paper §2, Figure 1).
//!
//! "The operational information systems submit the logging data to a
//! log repository subsystem, and then the auditor uses the log
//! repository to generate the auditing reports." One auditor, absolute
//! trust, full visibility: every record arrives in the clear and every
//! query is answered locally. This is the system the DLA cluster
//! replaces; benchmarks compare against it for cost *and* for the
//! confidentiality metrics (which are identically zero here — the
//! auditor sees everything).

use crate::query::Criteria;
use crate::AuditError;
use dla_logstore::model::{Glsn, LogRecord};
use dla_logstore::schema::Schema;
use dla_logstore::store::GlsnAllocator;
use dla_net::wire::Writer;
use dla_net::{NetConfig, NodeId, SimNet};
use std::collections::BTreeMap;

/// The Figure 1 auditor: one repository, plaintext storage, local
/// query answering.
pub struct CentralizedAuditor {
    schema: Schema,
    records: BTreeMap<Glsn, LogRecord>,
    allocator: GlsnAllocator,
    net: SimNet,
    users: usize,
    max_users: usize,
}

impl std::fmt::Debug for CentralizedAuditor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CentralizedAuditor({} records)", self.records.len())
    }
}

impl CentralizedAuditor {
    /// Creates the auditor. Network layout: index 0 is the repository,
    /// `1..=max_users` are user endpoints.
    #[must_use]
    pub fn new(schema: Schema, max_users: usize) -> Self {
        CentralizedAuditor {
            schema,
            records: BTreeMap::new(),
            allocator: GlsnAllocator::default(),
            net: SimNet::new(1 + max_users, NetConfig::ideal()),
            users: 0,
            max_users,
        }
    }

    /// Registers a user endpoint.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Config`] when capacity is exhausted.
    pub fn register_user(&mut self) -> Result<NodeId, AuditError> {
        if self.users >= self.max_users {
            return Err(AuditError::Config("user capacity exhausted".into()));
        }
        self.users += 1;
        Ok(NodeId(self.users))
    }

    /// Logs a record: the **whole plaintext record** ships to the
    /// repository (the confidentiality cost of Figure 1) in a single
    /// message.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Log`] on schema violations or network
    /// failure.
    pub fn log_record(&mut self, user: NodeId, record: &LogRecord) -> Result<Glsn, AuditError> {
        self.schema
            .validate(record)
            .map_err(|e| AuditError::Log(e.to_string()))?;
        let glsn = self.allocator.allocate();
        let mut stamped = LogRecord::new(glsn);
        for (name, value) in record.iter() {
            stamped.insert(name.clone(), value.clone());
        }
        let mut w = Writer::new();
        w.put_u8(0x50).put_bytes(&stamped.to_canonical_bytes());
        self.net.send(user, NodeId(0), w.finish());
        let _ = self
            .net
            .recv_from(NodeId(0), user)
            .map_err(AuditError::Net)?;
        self.records.insert(glsn, stamped);
        Ok(glsn)
    }

    /// Answers a query locally (no collaboration, no confidentiality).
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Parse`] on evaluation failures.
    pub fn query(&mut self, criteria: &Criteria) -> Result<Vec<Glsn>, AuditError> {
        let mut out = Vec::new();
        for (glsn, record) in &self.records {
            let matched = criteria
                .eval(record)
                .map_err(|e| AuditError::Parse(e.to_string()))?;
            if matched {
                out.push(*glsn);
            }
        }
        Ok(out)
    }

    /// Parses and answers a textual query.
    ///
    /// # Errors
    ///
    /// As [`CentralizedAuditor::query`], plus parse errors.
    pub fn query_text(&mut self, criteria: &str) -> Result<Vec<Glsn>, AuditError> {
        let parsed = crate::parser::parse(criteria, &self.schema)
            .map_err(|e| AuditError::Parse(e.to_string()))?;
        self.query(&parsed)
    }

    /// Number of stored records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the repository is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The network (for traffic comparison against the DLA cluster).
    #[must_use]
    pub fn net(&self) -> &SimNet {
        &self.net
    }

    /// **The Figure 1 problem, as an API**: the auditor can read any
    /// record wholesale, no ticket required. The DLA cluster has no
    /// such method — that asymmetry *is* the paper's contribution.
    pub fn read_everything(&self) -> impl Iterator<Item = (&Glsn, &LogRecord)> {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_logstore::gen::paper_table1;

    fn loaded() -> CentralizedAuditor {
        let mut auditor = CentralizedAuditor::new(Schema::paper_example(), 3);
        let user = auditor.register_user().unwrap();
        for record in paper_table1() {
            auditor.log_record(user, &record).unwrap();
        }
        auditor
    }

    #[test]
    fn queries_match_reference_semantics() {
        let mut auditor = loaded();
        assert_eq!(auditor.query_text("c1 > 30").unwrap().len(), 3);
        assert_eq!(
            auditor
                .query_text("protocol = 'TCP' AND c2 < 100.00")
                .unwrap()
                .len(),
            1
        );
        assert_eq!(auditor.query_text("c1 > 1000").unwrap().len(), 0);
    }

    #[test]
    fn logging_ships_whole_records() {
        let auditor = loaded();
        assert_eq!(auditor.len(), 5);
        // 5 log messages, each carrying a full canonical record.
        assert_eq!(auditor.net().stats().messages_sent, 5);
        assert!(auditor.net().stats().bytes_sent > 5 * 100);
    }

    #[test]
    fn auditor_sees_everything() {
        let auditor = loaded();
        let visible: Vec<_> = auditor.read_everything().collect();
        assert_eq!(visible.len(), 5);
        assert_eq!(visible[0].1.len(), 7, "full records, every attribute");
    }

    #[test]
    fn schema_still_enforced() {
        let mut auditor = CentralizedAuditor::new(Schema::paper_example(), 1);
        let user = auditor.register_user().unwrap();
        let bad = LogRecord::new(Glsn(0)).with("salary", dla_logstore::model::AttrValue::Int(1));
        assert!(auditor.log_record(user, &bad).is_err());
    }

    #[test]
    fn capacity_enforced() {
        let mut auditor = CentralizedAuditor::new(Schema::paper_example(), 1);
        assert!(auditor.register_user().is_ok());
        assert!(auditor.register_user().is_err());
    }
}
