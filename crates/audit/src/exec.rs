//! The distributed confidential query executor (paper §2, Figure 3).
//!
//! Each planned subquery produces a set of satisfying glsns:
//!
//! * **local** subqueries by a single node scanning its own fragments;
//! * **cross** subqueries by the involved nodes collaborating — local
//!   scans for constant predicates, a commutative-encryption equality
//!   join for `A = B` across nodes, blind-TTP masked comparison for
//!   `A < B` and friends, and a secure set *union* to take the clause's
//!   disjunction without revealing which node matched what.
//!
//! Finally, "the conjunction of SQ_i is processed by a secure set
//! intersection with glsn as the set element", and only the resulting
//! glsn list reaches the auditor engine.
//!
//! # Scheduling
//!
//! Subqueries are mutually independent (Fig. 3's SQ0..SQ3 touch
//! disjoint protocol state), so the executor runs each one in its own
//! **transport session** ([`dla_net::Session`]). Under
//! [`ExecMode::Concurrent`] — the default — a scheduler drives the
//! sessions from scoped worker threads over the cluster's
//! [`dla_net::SharedNet`]; per-session virtual clocks make the query's
//! network makespan the *maximum* of the subquery latencies instead of
//! their sum. [`ExecMode::Serial`] preserves the legacy one-at-a-time
//! execution on the root session for comparison and debugging; both
//! modes return identical glsn sets (protocol results are independent
//! of scheduling and randomness).

use crate::cluster::DlaCluster;
use crate::plan::{LiteralStep, QueryPlan, Subquery, SubqueryKind};
use crate::query::{EvalError, Predicate};
use crate::AuditError;
use dla_crypto::affine::{MonotoneMasker, MONOTONE_MAX_INPUT};
use dla_crypto::sha256;
use dla_logstore::model::{AttrValue, Glsn};
use dla_mpc::report::ProtocolReport;
use dla_mpc::{SsiSession, UnionSession};
use dla_net::topology::Ring;
use dla_net::wire::{Reader, Writer};
use dla_net::{NodeId, Reliable, ReliableConfig, Session, SessionId, SimTime, Transport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};

/// How the executor schedules independent subqueries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One subquery at a time on the root session (legacy behavior).
    Serial,
    /// Each subquery in its own session on its own worker thread,
    /// joined at the ∧-combiner.
    #[default]
    Concurrent,
}

/// The outcome of a distributed query.
#[derive(Debug)]
pub struct QueryResult {
    /// Satisfying glsns, sorted ascending (empty when the query ran
    /// without reveal).
    pub glsns: Vec<Glsn>,
    /// Number of satisfying records (known even without reveal).
    pub cardinality: usize,
    /// The plan that was executed.
    pub plan: QueryPlan,
    /// Reports of the MPC sub-protocol runs.
    pub reports: Vec<ProtocolReport>,
    /// `C_auditing` of the executed plan (Eq. 11).
    pub auditing_confidentiality: f64,
    /// Total messages attributable to this query.
    pub messages: u64,
    /// Total payload bytes attributable to this query.
    pub bytes: u64,
    /// Simulated network makespan of the query: sum of subquery
    /// latencies under [`ExecMode::Serial`], max under
    /// [`ExecMode::Concurrent`] (plus the ∧-combiner in both).
    pub elapsed: SimTime,
    /// The transport sessions the subqueries ran on (empty in serial
    /// mode, which stays on the root session).
    pub sessions: Vec<SessionId>,
}

type GlsnSet = BTreeSet<Glsn>;

/// Deterministic per-subquery RNG seed: independent of scheduling
/// order, so serial and concurrent runs are byte-identical per session.
fn subquery_seed(query_seed: u64, index: u64) -> u64 {
    let mut x = index.wrapping_add(0x9E37_79B9_7F4A_7C15);
    query_seed ^ rand::splitmix64(&mut x)
}

/// Recovers a glsn from a revealed set element. Group decoding strips
/// leading zero bytes, so the element is right-aligned into its
/// original `total_len` before the 8-byte glsn prefix is read. An
/// over-long element means the protocol ran over garbled traffic (e.g.
/// a mis-sequenced duplicate on an unprotected lossy link) and is
/// surfaced as a protocol error instead of a panic.
fn glsn_from_item(bytes: &[u8], total_len: usize) -> Result<Glsn, AuditError> {
    if bytes.len() > total_len {
        return Err(AuditError::Mpc(dla_mpc::MpcError::Protocol(format!(
            "revealed set element is {} bytes, expected at most {total_len}",
            bytes.len()
        ))));
    }
    let mut buf = vec![0u8; total_len];
    buf[total_len - bytes.len()..].copy_from_slice(bytes);
    Ok(Glsn(u64::from_be_bytes(
        buf[..8].try_into().expect("8 bytes"),
    )))
}

/// Executes a plan on the cluster (concurrent scheduler, with reveal).
///
/// # Errors
///
/// Returns [`AuditError`] on protocol failures, type errors during
/// scanning, or unsupported cross-node operations (text ordering).
pub fn execute(cluster: &mut DlaCluster, plan: &QueryPlan) -> Result<QueryResult, AuditError> {
    execute_with_reveal(cluster, plan, true)
}

/// Like [`execute`], but with the final reveal optional: with
/// `reveal = false` the auditor learns only the **cardinality** of the
/// result (the confidential "number of transactions" aggregate) and
/// `QueryResult::glsns` stays empty.
///
/// # Errors
///
/// As [`execute`].
pub fn execute_with_reveal(
    cluster: &mut DlaCluster,
    plan: &QueryPlan,
    reveal: bool,
) -> Result<QueryResult, AuditError> {
    execute_with_options(cluster, plan, reveal, ExecMode::default())
}

/// [`execute_with_reveal`] with an explicit [`ExecMode`].
///
/// # Errors
///
/// As [`execute`].
pub fn execute_with_options(
    cluster: &mut DlaCluster,
    plan: &QueryPlan,
    reveal: bool,
    mode: ExecMode,
) -> Result<QueryResult, AuditError> {
    use rand::Rng;
    let query_seed: u64 = cluster.rng_mut().gen();
    execute_shared(cluster, plan, reveal, mode, query_seed)
}

/// The shared-reference executor: runs a plan against `&DlaCluster`,
/// deriving all randomness from `query_seed`, so multiple auditors can
/// execute queries from separate threads simultaneously.
///
/// # Errors
///
/// As [`execute`].
///
/// # Panics
///
/// Panics if a subquery worker thread panics.
pub fn execute_shared(
    cluster: &DlaCluster,
    plan: &QueryPlan,
    reveal: bool,
    mode: ExecMode,
    query_seed: u64,
) -> Result<QueryResult, AuditError> {
    execute_on(
        cluster,
        cluster.shared_net(),
        plan,
        reveal,
        mode,
        query_seed,
    )
}

/// [`execute_shared`] over an explicit transport. Session management
/// (allocation, clock sync, accounting) always runs on the cluster's
/// own network; `transport` only carries the protocol traffic — pass a
/// [`dla_net::Reliable`] wrapper around [`DlaCluster::shared_net`] to
/// run the same query with ARQ protection on a lossy network.
///
/// # Errors
///
/// As [`execute`], plus [`dla_net::NetError::Timeout`] (wrapped in
/// [`AuditError`]) when the reliable layer exhausts its retries.
///
/// # Panics
///
/// Panics if a subquery worker thread panics.
pub fn execute_on(
    cluster: &DlaCluster,
    transport: &(dyn Transport + Sync),
    plan: &QueryPlan,
    reveal: bool,
    mode: ExecMode,
    query_seed: u64,
) -> Result<QueryResult, AuditError> {
    execute_on_clamped(cluster, transport, plan, reveal, mode, query_seed, None)
}

/// Intersection of two optional inclusive glsn windows (`None` = no
/// restriction). May produce an inverted (empty) range — scans treat
/// that as the empty sentinel.
#[must_use]
pub(crate) fn intersect_glsn_windows(
    a: Option<(Glsn, Glsn)>,
    b: Option<(Glsn, Glsn)>,
) -> Option<(Glsn, Glsn)> {
    match (a, b) {
        (None, w) | (w, None) => w,
        (Some((al, ah)), Some((bl, bh))) => Some((al.max(bl), ah.min(bh))),
    }
}

/// [`execute_on`] with an additional glsn `clamp` intersected into the
/// plan's own epoch-pruning window. The standing-query engine uses this
/// to evaluate a registered query against *one just-sealed epoch's*
/// glsn range — the incremental delta — without touching the rest of
/// the trail.
///
/// # Errors
///
/// As [`execute_on`].
///
/// # Panics
///
/// Panics if a subquery worker thread panics.
#[allow(clippy::too_many_arguments)]
pub fn execute_on_clamped(
    cluster: &DlaCluster,
    transport: &(dyn Transport + Sync),
    plan: &QueryPlan,
    reveal: bool,
    mode: ExecMode,
    query_seed: u64,
    clamp: Option<(Glsn, Glsn)>,
) -> Result<QueryResult, AuditError> {
    let net = cluster.shared_net();
    let (start_messages, start_bytes, start_elapsed) = {
        let n = net.lock();
        (n.stats().messages_sent, n.stats().bytes_sent, n.elapsed())
    };
    let query_span = dla_telemetry::span("query", "execute", start_elapsed.as_nanos());
    let subq_span = dla_telemetry::span("phase", "subqueries", start_elapsed.as_nanos());

    // Epoch pruning: if the plan proves a time window, restrict every
    // node scan to the glsn range of the epochs that window overlaps.
    // Conjunct-derived bounds hold for every answer record, so pruning
    // cannot change the result — only how much trail is touched. An
    // explicit caller clamp narrows it further.
    let window = intersect_glsn_windows(cluster.glsn_window_for(&plan.time_window), clamp);

    // Phase 1: independent subqueries — the scheduler.
    let mut sessions: Vec<SessionId> = Vec::new();
    let mut per_subquery: Vec<(usize, GlsnSet, Vec<ProtocolReport>)> =
        Vec::with_capacity(plan.subqueries.len());
    let combine_session;
    match mode {
        ExecMode::Serial => {
            for (i, subquery) in plan.subqueries.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(subquery_seed(query_seed, i as u64));
                let session = Session::root(transport);
                per_subquery.push(run_subquery(cluster, &session, subquery, &mut rng, window)?);
            }
            combine_session = SessionId::ROOT;
        }
        ExecMode::Concurrent => {
            // Allocate sessions deterministically *before* spawning so
            // ids (and so per-session RNG streams and accounting) do
            // not depend on thread interleaving.
            sessions = {
                let mut n = net.lock();
                plan.subqueries.iter().map(|_| n.open_session()).collect()
            };
            // Workers do not inherit the spawner's telemetry
            // destination: hand the current recorder (if any) into each
            // thread and install it there.
            let recorder = dla_telemetry::current();
            let outcomes = crossbeam::scope(|s| {
                let handles: Vec<_> = plan
                    .subqueries
                    .iter()
                    .enumerate()
                    .map(|(i, subquery)| {
                        let sid = sessions[i];
                        let recorder = recorder.clone();
                        s.spawn(move || {
                            let _telemetry = recorder.map(|r| r.install());
                            let mut rng =
                                StdRng::seed_from_u64(subquery_seed(query_seed, i as u64));
                            let session = Session::new(transport, sid);
                            run_subquery(cluster, &session, subquery, &mut rng, window)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("subquery worker panicked"))
                    .collect::<Vec<_>>()
            })
            .expect("subquery scheduler scope");
            for outcome in outcomes {
                per_subquery.push(outcome?);
            }

            // ∧-join barrier: the conjunction can only start once every
            // subquery session has delivered, so open the combiner
            // session and advance it to the latest subquery finish.
            // The transport may keep its own timeline (a wall-clock
            // socket mesh reports real elapsed time; the cluster's
            // SharedNet reports the same virtual clocks read below) —
            // fold its view in as well, reading it *before* taking the
            // SimNet lock because on SharedNet both sides are the same
            // non-reentrant mutex.
            let transport_join = sessions
                .iter()
                .map(|&sid| transport.elapsed(sid))
                .max()
                .unwrap_or_default();
            let mut n = net.lock();
            let join_at = sessions
                .iter()
                .map(|&sid| n.session_elapsed(sid))
                .max()
                .unwrap_or(start_elapsed)
                .max(transport_join);
            combine_session = n.open_session();
            n.sync_session(combine_session, join_at);
        }
    }

    let join_ns = if subq_span.is_recording() {
        let n = net.lock();
        n.session_elapsed(combine_session).as_nanos()
    } else {
        0
    };
    subq_span.end(join_ns);
    let combine_span = dla_telemetry::span("phase", "combine", join_ns);

    let mut reports = Vec::new();
    let mut holder_sets: BTreeMap<usize, Vec<GlsnSet>> = BTreeMap::new();
    for (holder, set, mut subreports) in per_subquery {
        holder_sets.entry(holder).or_default().push(set);
        reports.append(&mut subreports);
    }

    // Phase 2: each holder intersects its own subquery results locally;
    // the cross-holder conjunction runs as a secure set intersection
    // with glsn as the element, revealed to the auditor engine.
    let mut holders: Vec<usize> = holder_sets.keys().copied().collect();
    holders.sort_unstable();
    let inputs: Vec<Vec<Vec<u8>>> = holders
        .iter()
        .map(|h| {
            let sets = &holder_sets[h];
            let mut iter = sets.iter();
            let first = iter.next().cloned().unwrap_or_default();
            let local: GlsnSet = iter.fold(first, |acc, s| &acc & s);
            local.iter().map(|g| g.0.to_be_bytes().to_vec()).collect()
        })
        .collect();

    let ring = Ring::new(holders.iter().map(|&h| NodeId(h)).collect());
    let mut rng = StdRng::seed_from_u64(subquery_seed(query_seed, u64::MAX));
    let session = Session::new(transport, combine_session);
    let outcome = SsiSession::new(session, &ring, cluster.domain(), cluster.auditor_node())
        .reveal(reveal)
        .batch(cluster.ctx().batch_mode())
        .run(&inputs, &mut rng)
        .map_err(AuditError::Mpc)?;
    reports.push(outcome.report.clone());

    let cardinality = outcome.cardinality();
    let mut glsns: Vec<Glsn> = outcome
        .common_items
        .unwrap_or_default()
        .iter()
        .map(|bytes| glsn_from_item(bytes, 8))
        .collect::<Result<_, _>>()?;
    glsns.sort_unstable();

    let (messages, bytes, elapsed, end_ns) = {
        let mut n = net.lock();
        // Fold the query's finish time back into the root timeline so
        // cluster-level elapsed time reflects completed queries.
        let end = n.session_elapsed(combine_session);
        n.sync_session(SessionId::ROOT, end);
        (
            n.stats().messages_sent - start_messages,
            n.stats().bytes_sent - start_bytes,
            end - start_elapsed,
            end.as_nanos(),
        )
    };
    combine_span.end(end_ns);
    query_span.end(end_ns);

    Ok(QueryResult {
        glsns,
        cardinality,
        plan: plan.clone(),
        auditing_confidentiality: crate::metrics::auditing_confidentiality(plan),
        messages,
        bytes,
        elapsed,
        sessions,
        reports,
    })
}

/// Tuning for [`execute_resilient`]'s retry / degrade ladder.
#[derive(Debug, Clone)]
pub struct ResilientPolicy {
    /// ARQ configuration for the reliable transport wrapper, or `None`
    /// to run unprotected (the ladder then only retries whole queries).
    pub reliable: Option<ReliableConfig>,
    /// Whole-query attempts before the last network error is terminal.
    pub max_attempts: u32,
    /// Failure-detector tuning for the health probes run after a
    /// timed-out attempt.
    pub health: crate::health::HealthConfig,
    /// Subquery scheduling mode.
    pub mode: ExecMode,
    /// Whether the final glsn set is revealed to the auditor.
    pub reveal: bool,
}

impl Default for ResilientPolicy {
    fn default() -> Self {
        ResilientPolicy {
            reliable: Some(ReliableConfig::default()),
            max_attempts: 4,
            health: crate::health::HealthConfig::default(),
            mode: ExecMode::default(),
            reveal: true,
        }
    }
}

/// What [`execute_resilient`] did to get an answer.
#[derive(Debug)]
pub struct ResilientOutcome {
    /// The successful query result.
    pub result: QueryResult,
    /// Whole-query attempts used (1 = first try succeeded).
    pub attempts: u32,
    /// How many attempts triggered a re-plan over the survivor set.
    pub replans: u32,
    /// Nodes retired from service by the time the query succeeded.
    pub excluded: BTreeSet<usize>,
    /// Re-replication reports produced along the way.
    pub repairs: Vec<crate::cluster::RereplicationReport>,
}

/// A network error worth retrying: a reliable-layer timeout or a
/// dropped message surfacing as an empty inbox.
fn retryable(e: &AuditError) -> bool {
    use dla_net::NetError;
    let net = match e {
        AuditError::Net(n) => n,
        AuditError::Mpc(dla_mpc::MpcError::Net(n)) => n,
        _ => return false,
    };
    matches!(net, NetError::Timeout(_) | NetError::EmptyInbox(_))
}

/// The fault-tolerant executor ladder. Each attempt plans the query
/// against the cluster's **effective partition** (retired nodes'
/// attributes reassigned to their adopters) and runs it — through a
/// [`Reliable`] ARQ wrapper when the policy asks for one. On a
/// retryable network failure the ladder probes cluster health; nodes
/// the detector declares dead are re-replicated
/// ([`DlaCluster::rereplicate`]) and the query re-planned over the
/// survivor set, otherwise the failure is treated as transient and the
/// attempt simply repeated (the reliable layer has already charged its
/// backoff in virtual time).
///
/// # Errors
///
/// Returns the terminal error once `policy.max_attempts` attempts are
/// exhausted, or immediately for non-network failures. A repair that
/// fails its survivor-set accumulator check aborts the ladder with
/// [`AuditError::Integrity`]: the lost fragments are unrecoverable, and
/// answering without them would be silently wrong.
pub fn execute_resilient(
    cluster: &mut DlaCluster,
    normalized: &crate::normal::NormalizedQuery,
    policy: &ResilientPolicy,
) -> Result<ResilientOutcome, AuditError> {
    use rand::Rng;
    let mut monitor = crate::health::HealthMonitor::new(cluster, policy.health.clone());
    for node in cluster.retired_nodes() {
        monitor.mark_dead(node);
    }
    let mut repairs = Vec::new();
    let mut replans = 0;
    let mut attempt = 0;
    loop {
        attempt += 1;
        let partition = cluster.effective_partition();
        let plan = crate::plan::plan(normalized, &partition)?;
        let query_seed: u64 = cluster.rng_mut().gen();
        let run = {
            let net = cluster.shared_net();
            match &policy.reliable {
                Some(config) => {
                    let reliable = Reliable::with_config(net, *config);
                    execute_on(
                        cluster,
                        &reliable,
                        &plan,
                        policy.reveal,
                        policy.mode,
                        query_seed,
                    )
                }
                None => execute_on(cluster, net, &plan, policy.reveal, policy.mode, query_seed),
            }
        };
        match run {
            Ok(result) => {
                return Ok(ResilientOutcome {
                    result,
                    attempts: attempt,
                    replans,
                    excluded: cluster.retired_nodes(),
                    repairs,
                });
            }
            Err(e) if retryable(&e) && attempt < policy.max_attempts => {
                monitor.settle(cluster)?;
                let newly_dead: BTreeSet<usize> = monitor
                    .dead()
                    .difference(&cluster.retired_nodes())
                    .copied()
                    .collect();
                if !newly_dead.is_empty() {
                    // Degraded-mode decision: the executor chooses to
                    // retire nodes and re-plan over the survivor set —
                    // exactly the kind of privileged call the
                    // meta-audit trail exists to make undeniable.
                    cluster.meta_log(
                        "executor",
                        "degraded-replan",
                        format!("attempt={attempt} dead={newly_dead:?}"),
                    );
                    let report = cluster.rereplicate(&newly_dead)?;
                    // A repair the accumulator cannot verify means the
                    // survivors do NOT hold the deposited fragments —
                    // answering from them would be silently wrong.
                    if !report.is_fully_verified() {
                        return Err(AuditError::Integrity(format!(
                            "re-replication after losing {newly_dead:?} left {} record(s) \
                             unverified against their accumulator deposits",
                            report.failed.len()
                        )));
                    }
                    repairs.push(report);
                    replans += 1;
                }
            }
            Err(e) => return Err(e),
        }
    }
}

/// Runs one subquery on `session`; returns (holder node, glsn set,
/// protocol reports).
fn run_subquery(
    cluster: &DlaCluster,
    session: &Session<'_>,
    subquery: &Subquery,
    rng: &mut StdRng,
    window: Option<(Glsn, Glsn)>,
) -> Result<(usize, GlsnSet, Vec<ProtocolReport>), AuditError> {
    let _scope = dla_telemetry::scope("subquery", session.id().0);
    let kind = match &subquery.kind {
        SubqueryKind::Local { .. } => "local",
        SubqueryKind::Cross { .. } => "cross",
    };
    let span = dla_telemetry::span("subquery", kind, session.elapsed().as_nanos());
    let result = match &subquery.kind {
        SubqueryKind::Local { node } => {
            let set = scan_clause_local(cluster, *node, subquery, window)?;
            Ok((*node, set, Vec::new()))
        }
        SubqueryKind::Cross { nodes } => {
            execute_cross(cluster, session, subquery, nodes, rng, window)
        }
    };
    span.end(session.elapsed().as_nanos());
    result
}

/// Iterates a store's fragments, pruned to the epoch-derived glsn
/// window when one applies.
fn scan_pruned<'a>(
    store: &'a dla_logstore::store::FragmentStore,
    window: Option<(Glsn, Glsn)>,
) -> Box<dyn Iterator<Item = &'a dla_logstore::fragment::Fragment> + 'a> {
    match window {
        Some((lo, hi)) => Box::new(store.scan_window(lo, hi)),
        None => Box::new(store.scan_all()),
    }
}

/// A node evaluates a whole clause against its own fragments.
fn scan_clause_local(
    cluster: &DlaCluster,
    node: usize,
    subquery: &Subquery,
    window: Option<(Glsn, Glsn)>,
) -> Result<GlsnSet, AuditError> {
    let store = cluster.node(node).store();
    let mut out = GlsnSet::new();
    for frag in scan_pruned(&store, window) {
        let mut matched = false;
        for literal in subquery.clause.literals() {
            if eval_literal_lenient(literal, &frag.values)? {
                matched = true;
                break;
            }
        }
        if matched {
            out.insert(frag.glsn);
        }
    }
    Ok(out)
}

/// Evaluates a literal on a (possibly partial) fragment: a missing
/// attribute makes the literal false rather than an error — fragments
/// are partial by design.
fn eval_literal_lenient(
    literal: &Predicate,
    record: &dla_logstore::model::LogRecord,
) -> Result<bool, AuditError> {
    match literal.eval(record) {
        Ok(b) => Ok(b),
        Err(EvalError::MissingAttribute(_)) => Ok(false),
        Err(e @ EvalError::TypeMismatch { .. }) => Err(AuditError::Parse(e.to_string())),
    }
}

/// One node's glsn set for a single constant literal.
fn scan_literal(
    cluster: &DlaCluster,
    node: usize,
    literal: &Predicate,
    window: Option<(Glsn, Glsn)>,
) -> Result<GlsnSet, AuditError> {
    let store = cluster.node(node).store();
    let mut out = GlsnSet::new();
    for frag in scan_pruned(&store, window) {
        if eval_literal_lenient(literal, &frag.values)? {
            out.insert(frag.glsn);
        }
    }
    Ok(out)
}

/// glsns for which `node` stores a value of `attr`.
fn presence_set(
    cluster: &DlaCluster,
    node: usize,
    attr: &dla_logstore::model::AttrName,
    window: Option<(Glsn, Glsn)>,
) -> GlsnSet {
    let store = cluster.node(node).store();
    scan_pruned(&store, window)
        .filter(|f| f.values.get(attr).is_some())
        .map(|f| f.glsn)
        .collect()
}

/// (glsn, value) pairs a node stores for `attr`.
fn value_pairs(
    cluster: &DlaCluster,
    node: usize,
    attr: &dla_logstore::model::AttrName,
    window: Option<(Glsn, Glsn)>,
) -> Vec<(Glsn, AttrValue)> {
    let store = cluster.node(node).store();
    scan_pruned(&store, window)
        .filter_map(|f| f.values.get(attr).map(|v| (f.glsn, v.clone())))
        .collect()
}

fn execute_cross(
    cluster: &DlaCluster,
    session: &Session<'_>,
    subquery: &Subquery,
    nodes: &BTreeSet<usize>,
    rng: &mut StdRng,
    window: Option<(Glsn, Glsn)>,
) -> Result<(usize, GlsnSet, Vec<ProtocolReport>), AuditError> {
    let holder = *nodes.iter().next().expect("cross subquery has nodes");
    let mut reports = Vec::new();
    // literal-set accumulation per participating node.
    let mut per_node: BTreeMap<usize, GlsnSet> = BTreeMap::new();

    for step in &subquery.steps {
        match step {
            LiteralStep::LocalScan { node, literal } => {
                let set = scan_literal(
                    cluster,
                    *node,
                    &subquery.clause.literals()[*literal],
                    window,
                )?;
                per_node.entry(*node).or_default().extend(set);
            }
            LiteralStep::CrossEqualityJoin {
                left_node,
                right_node,
                literal,
                negated,
            } => {
                let (set, mut r) = equality_join(
                    cluster,
                    session,
                    *left_node,
                    *right_node,
                    &subquery.clause.literals()[*literal],
                    *negated,
                    rng,
                    window,
                )?;
                reports.append(&mut r);
                per_node.entry(*left_node).or_default().extend(set);
            }
            LiteralStep::CrossMaskedCompare {
                left_node,
                right_node,
                literal,
            } => {
                let set = masked_compare(
                    cluster,
                    session,
                    *left_node,
                    *right_node,
                    &subquery.clause.literals()[*literal],
                    rng,
                    window,
                )?;
                per_node.entry(*left_node).or_default().extend(set);
            }
        }
    }

    // Single contributing node: it already holds the clause set.
    if per_node.len() == 1 {
        let (node, set) = per_node.into_iter().next().expect("one entry");
        return Ok((node, set, reports));
    }

    // Disjunction across nodes: secure set union over the contributing
    // nodes, delivered to the holder.
    let mut contributing: Vec<usize> = per_node.keys().copied().collect();
    contributing.sort_unstable();
    let inputs: Vec<Vec<Vec<u8>>> = contributing
        .iter()
        .map(|n| {
            per_node[n]
                .iter()
                .map(|g| g.0.to_be_bytes().to_vec())
                .collect()
        })
        .collect();
    let ring = Ring::new(contributing.iter().map(|&n| NodeId(n)).collect());
    let outcome = UnionSession::new(*session, &ring, cluster.domain(), NodeId(holder))
        .batch(cluster.ctx().batch_mode())
        .run(&inputs, rng)
        .map_err(AuditError::Mpc)?;
    reports.push(outcome.report.clone());
    let set: GlsnSet = outcome
        .items
        .iter()
        .map(|bytes| glsn_from_item(bytes, 8))
        .collect::<Result<_, _>>()?;
    Ok((holder, set, reports))
}

/// Cross-node equality join: glsns where `left.attr == right.attr`,
/// computed as a secure set intersection on `glsn ‖ H(value)` items.
/// For `≠`, the complement within the joint presence set (obtained by
/// a second, values-free intersection).
#[allow(clippy::too_many_arguments)]
fn equality_join(
    cluster: &DlaCluster,
    session: &Session<'_>,
    left_node: usize,
    right_node: usize,
    literal: &Predicate,
    negated: bool,
    rng: &mut StdRng,
    window: Option<(Glsn, Glsn)>,
) -> Result<(GlsnSet, Vec<ProtocolReport>), AuditError> {
    let crate::query::Operand::Attr(rhs_attr) = &literal.rhs else {
        return Err(AuditError::Planning(
            "equality join on a constant predicate".into(),
        ));
    };
    let mut reports = Vec::new();

    let item = |glsn: Glsn, value: &AttrValue| {
        let mut out = Vec::with_capacity(24);
        out.extend_from_slice(&glsn.0.to_be_bytes());
        out.extend_from_slice(&sha256::digest(&value.to_canonical_bytes())[..16]);
        out
    };
    let left_items: Vec<Vec<u8>> = value_pairs(cluster, left_node, &literal.lhs, window)
        .iter()
        .map(|(g, v)| item(*g, v))
        .collect();
    let right_items: Vec<Vec<u8>> = value_pairs(cluster, right_node, rhs_attr, window)
        .iter()
        .map(|(g, v)| item(*g, v))
        .collect();

    let ring = Ring::new(vec![NodeId(left_node), NodeId(right_node)]);
    let outcome = SsiSession::new(*session, &ring, cluster.domain(), NodeId(left_node))
        .reveal(true)
        .batch(cluster.ctx().batch_mode())
        .run(&[left_items, right_items], rng)
        .map_err(AuditError::Mpc)?;
    reports.push(outcome.report.clone());
    let equal: GlsnSet = outcome
        .common_items
        .unwrap_or_default()
        .iter()
        .map(|b| glsn_from_item(b, 24))
        .collect::<Result<_, _>>()?;

    if !negated {
        return Ok((equal, reports));
    }

    // ≠: joint presence minus the equal set.
    let left_presence: Vec<Vec<u8>> = presence_set(cluster, left_node, &literal.lhs, window)
        .iter()
        .map(|g| g.0.to_be_bytes().to_vec())
        .collect();
    let right_presence: Vec<Vec<u8>> = presence_set(cluster, right_node, rhs_attr, window)
        .iter()
        .map(|g| g.0.to_be_bytes().to_vec())
        .collect();
    let ring = Ring::new(vec![NodeId(left_node), NodeId(right_node)]);
    let presence = SsiSession::new(*session, &ring, cluster.domain(), NodeId(left_node))
        .reveal(true)
        .batch(cluster.ctx().batch_mode())
        .run(&[left_presence, right_presence], rng)
        .map_err(AuditError::Mpc)?;
    reports.push(presence.report.clone());
    let joint: GlsnSet = presence
        .common_items
        .unwrap_or_default()
        .iter()
        .map(|b| glsn_from_item(b, 8))
        .collect::<Result<_, _>>()?;
    Ok((&joint - &equal, reports))
}

/// Maps a comparable attribute value onto the masker's ordinal domain,
/// order-preservingly.
fn to_ordinal(value: &AttrValue) -> Result<u64, AuditError> {
    const BIAS: i64 = 1 << 38;
    match value {
        AttrValue::Int(v) | AttrValue::Fixed2(v) => {
            if v.unsigned_abs() >= (1 << 38) {
                return Err(AuditError::Planning(format!(
                    "value {v} outside the maskable comparison domain"
                )));
            }
            Ok((v + BIAS) as u64)
        }
        AttrValue::Time(t) => {
            if *t > MONOTONE_MAX_INPUT {
                return Err(AuditError::Planning(format!(
                    "timestamp {t} outside the maskable comparison domain"
                )));
            }
            Ok(*t)
        }
        AttrValue::Text(_) => Err(AuditError::Planning(
            "ordering comparison of text attributes across nodes is unsupported".into(),
        )),
    }
}

/// Cross-node ordering comparison via order-preserving masking and the
/// cluster's blind TTP (§3.3 machinery applied per glsn).
fn masked_compare(
    cluster: &DlaCluster,
    session: &Session<'_>,
    left_node: usize,
    right_node: usize,
    literal: &Predicate,
    rng: &mut StdRng,
    window: Option<(Glsn, Glsn)>,
) -> Result<GlsnSet, AuditError> {
    let crate::query::Operand::Attr(rhs_attr) = &literal.rhs else {
        return Err(AuditError::Planning(
            "masked compare on a constant predicate".into(),
        ));
    };
    let op = literal.op;
    let left_pairs = value_pairs(cluster, left_node, &literal.lhs, window);
    let right_pairs = value_pairs(cluster, right_node, rhs_attr, window);
    let ttp = cluster.ttp_node();
    let (left_id, right_id) = (NodeId(left_node), NodeId(right_node));

    // Mask agreement between the two owners (sealed from the TTP).
    let mask = MonotoneMasker::random(rng);
    let mut w = Writer::new();
    w.put_u8(0x30).put_bytes(&mask.to_bytes());
    session.send(left_id, right_id, w.finish());
    let envelope = session
        .recv_from(right_id, left_id)
        .map_err(AuditError::Net)?;
    let mut r = Reader::new(&envelope.payload);
    let _ = r.get_u8().map_err(|e| AuditError::Parse(e.to_string()))?;
    let right_mask = MonotoneMasker::from_bytes(
        r.get_bytes()
            .map_err(|e| AuditError::Parse(e.to_string()))?,
    )
    .map_err(|e| AuditError::Parse(e.to_string()))?;

    // Both sides submit (glsn, masked ordinal) lists to the TTP.
    let submit = |net: &Session<'_>,
                  from: NodeId,
                  mask: &MonotoneMasker,
                  pairs: &[(Glsn, AttrValue)]|
     -> Result<(), AuditError> {
        let mut w = Writer::new();
        w.put_u8(0x31);
        let ordinals: Vec<(u64, u128)> = pairs
            .iter()
            .map(|(g, v)| Ok((g.0, mask.apply(to_ordinal(v)?))))
            .collect::<Result<_, AuditError>>()?;
        w.put_list(&ordinals, |w, &(g, m)| {
            w.put_u64(g);
            w.put_u128(m);
        });
        net.send(from, ttp, w.finish());
        Ok(())
    };
    submit(session, left_id, &mask, &left_pairs)?;
    submit(session, right_id, &right_mask, &right_pairs)?;

    let mut tables: Vec<BTreeMap<u64, u128>> = Vec::with_capacity(2);
    for from in [left_id, right_id] {
        let envelope = session.recv_from(ttp, from).map_err(AuditError::Net)?;
        let mut r = Reader::new(&envelope.payload);
        let _ = r.get_u8().map_err(|e| AuditError::Parse(e.to_string()))?;
        let list = r
            .get_list(|r| {
                let g = r.get_u64()?;
                let m = r.get_u128()?;
                Ok((g, m))
            })
            .map_err(|e| AuditError::Parse(e.to_string()))?;
        tables.push(list.into_iter().collect());
    }

    // The blind TTP compares per glsn and returns satisfying glsns to
    // the left owner.
    let right_table = tables.pop().expect("two tables");
    let left_table = tables.pop().expect("two tables");
    let satisfying: Vec<u64> = left_table
        .iter()
        .filter_map(|(g, wl)| {
            right_table.get(g).and_then(|wr| {
                let ord = wl.cmp(wr);
                op.test(ord).then_some(*g)
            })
        })
        .collect();
    let mut w = Writer::new();
    w.put_u8(0x32).put_list(&satisfying, |w, &g| {
        w.put_u64(g);
    });
    session.send(ttp, left_id, w.finish());
    let envelope = session.recv_from(left_id, ttp).map_err(AuditError::Net)?;
    let mut r = Reader::new(&envelope.payload);
    let _ = r.get_u8().map_err(|e| AuditError::Parse(e.to_string()))?;
    let glsns = r
        .get_list(|r| r.get_u64().map(Glsn))
        .map_err(|e| AuditError::Parse(e.to_string()))?;
    Ok(glsns.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{AppUser, ClusterConfig};
    use dla_logstore::fragment::Partition;
    use dla_logstore::gen::paper_table1;
    use dla_logstore::model::LogRecord;
    use dla_logstore::schema::Schema;

    /// Builds the paper cluster preloaded with Table 1.
    fn loaded_cluster() -> (DlaCluster, AppUser, Vec<Glsn>) {
        let schema = Schema::paper_example();
        let partition = Partition::paper_example(&schema);
        let mut cluster = DlaCluster::new(
            ClusterConfig::new(4, schema)
                .with_partition(partition)
                .with_seed(99),
        )
        .unwrap();
        let user = cluster.register_user("u0").unwrap();
        let glsns = cluster.log_records(&user, &paper_table1()).unwrap();
        (cluster, user, glsns)
    }

    /// Reference evaluation: run the criteria on the full records and
    /// return the matching Table 1 row indices.
    fn reference(query: &str) -> Vec<usize> {
        let schema = Schema::paper_example();
        let q = crate::parser::parse(query, &schema).unwrap();
        paper_table1()
            .iter()
            .enumerate()
            .filter(|(_, r)| q.eval(r).unwrap())
            .map(|(i, _)| i)
            .collect()
    }

    fn run(query: &str) -> (Vec<usize>, QueryResult) {
        let (mut cluster, _user, glsns) = loaded_cluster();
        let result = cluster.query(query).unwrap();
        let indices: Vec<usize> = result
            .glsns
            .iter()
            .map(|g| glsns.iter().position(|x| x == g).expect("known glsn"))
            .collect();
        (indices, result)
    }

    #[test]
    fn local_single_predicate() {
        let (matched, result) = run("c1 > 30");
        assert_eq!(matched, reference("c1 > 30"));
        assert_eq!(result.plan.local_count(), 1);
    }

    #[test]
    fn local_conjunction_across_nodes() {
        // Two local subqueries on different nodes, conjoined by SSI.
        let (matched, result) = run("c1 > 30 AND id = 'U1'");
        assert_eq!(matched, reference("c1 > 30 AND id = 'U1'"));
        assert_eq!(result.plan.subqueries.len(), 2);
    }

    #[test]
    fn cross_disjunction() {
        let q = "c1 > 40 OR id = 'U2'";
        let (matched, result) = run(q);
        assert_eq!(matched, reference(q));
        assert_eq!(result.plan.cross_count(), 1);
    }

    #[test]
    fn same_node_disjunction_stays_local() {
        let q = "id = 'U3' OR c2 > 300.00";
        let (matched, result) = run(q);
        assert_eq!(matched, reference(q));
        assert_eq!(result.plan.local_count(), 1);
    }

    #[test]
    fn time_range_query() {
        let q = "time > '20:20:00/05/12/2002' AND time < '20:24:00/05/12/2002'";
        let (matched, _) = run(q);
        assert_eq!(matched, reference(q));
        assert_eq!(matched.len(), 3); // rows 2, 3, 4
    }

    #[test]
    fn cross_equality_join_attr_attr() {
        // id (P1) vs c3 (P2) — never equal in Table 1.
        let (matched, _) = run("id = c3");
        assert!(matched.is_empty());
    }

    #[test]
    fn cross_inequality_join() {
        // id != c3 holds for every Table 1 row (values always differ).
        let (matched, _) = run("id != c3");
        assert_eq!(matched.len(), 5);
    }

    #[test]
    fn negation_and_nesting() {
        let q = "NOT (protocol = 'UDP' OR c1 >= 45)";
        let (matched, _) = run(q);
        assert_eq!(matched, reference(q));
        assert_eq!(matched.len(), 1); // only row 4 (TCP, c1=18)
    }

    #[test]
    fn empty_result_set() {
        let (matched, _) = run("c1 > 1000");
        assert!(matched.is_empty());
    }

    #[test]
    fn full_match() {
        let (matched, _) = run("c1 > 0");
        assert_eq!(matched.len(), 5);
    }

    #[test]
    fn query_accounts_network_traffic() {
        let (_, result) = run("c1 > 30 AND id = 'U1'");
        assert!(result.messages > 0);
        assert!(result.bytes > 0);
        assert!(!result.reports.is_empty());
    }

    #[test]
    fn concurrent_subqueries_run_in_separate_sessions() {
        let (mut cluster, _user, _glsns) = loaded_cluster();
        let parsed = crate::parser::parse("c1 > 30 AND id = 'U1'", cluster.schema()).unwrap();
        let normalized = crate::normal::normalize(&parsed);
        let plan = crate::plan::plan(&normalized, cluster.partition()).unwrap();
        let result = execute_with_options(&mut cluster, &plan, true, ExecMode::Concurrent).unwrap();
        assert_eq!(result.sessions.len(), plan.subqueries.len());
        let net = cluster.net();
        for &sid in &result.sessions {
            let s = net.stats().session(sid);
            // Local subqueries send nothing; cross sessions do. Either
            // way the session is tracked distinctly from the root.
            assert_ne!(sid, SessionId::ROOT);
            let _ = s;
        }
    }

    #[test]
    fn serial_and_concurrent_agree_on_paper_queries() {
        for q in [
            "c1 > 30",
            "c1 > 30 AND id = 'U1'",
            "c1 > 40 OR id = 'U2'",
            "id != c3",
            "NOT (protocol = 'UDP' OR c1 >= 45)",
        ] {
            let (mut cluster, _user, _) = loaded_cluster();
            let parsed = crate::parser::parse(q, cluster.schema()).unwrap();
            let normalized = crate::normal::normalize(&parsed);
            let plan = crate::plan::plan(&normalized, cluster.partition()).unwrap();
            let serial = execute_with_options(&mut cluster, &plan, true, ExecMode::Serial).unwrap();
            let concurrent =
                execute_with_options(&mut cluster, &plan, true, ExecMode::Concurrent).unwrap();
            assert_eq!(serial.glsns, concurrent.glsns, "query {q}");
            assert_eq!(serial.cardinality, concurrent.cardinality, "query {q}");
        }
    }

    #[test]
    fn concurrent_makespan_not_worse_under_latency() {
        // With per-link latency, the concurrent scheduler's makespan is
        // the max of the subquery latencies; serial pays the sum.
        let schema = Schema::paper_example();
        let partition = Partition::paper_example(&schema);
        let build = || {
            let mut c = DlaCluster::new(
                ClusterConfig::new(4, schema.clone())
                    .with_partition(partition.clone())
                    .with_seed(11)
                    .with_latency(dla_net::latency::LatencyModel::lan()),
            )
            .unwrap();
            let user = c.register_user("u").unwrap();
            c.log_records(&user, &paper_table1()).unwrap();
            c
        };
        let q = "c1 > 30 AND id = 'U1' AND protocol = 'TCP'";
        let plan_for = |c: &DlaCluster| {
            let parsed = crate::parser::parse(q, c.schema()).unwrap();
            crate::plan::plan(&crate::normal::normalize(&parsed), c.partition()).unwrap()
        };
        let mut serial_cluster = build();
        let plan = plan_for(&serial_cluster);
        let serial =
            execute_with_options(&mut serial_cluster, &plan, true, ExecMode::Serial).unwrap();
        let mut conc_cluster = build();
        let concurrent =
            execute_with_options(&mut conc_cluster, &plan, true, ExecMode::Concurrent).unwrap();
        assert_eq!(serial.glsns, concurrent.glsns);
        assert!(
            concurrent.elapsed <= serial.elapsed,
            "concurrent {} should not exceed serial {}",
            concurrent.elapsed,
            serial.elapsed
        );
    }

    #[test]
    fn masked_compare_across_nodes() {
        // Need two same-typed attributes on different nodes with an
        // ordering op: build a custom schema.
        use dla_logstore::model::AttrType;
        use dla_logstore::schema::AttrDef;
        let schema = Schema::new(vec![
            AttrDef::known("a", AttrType::Int),
            AttrDef::known("b", AttrType::Int),
        ])
        .unwrap();
        let partition = Partition::round_robin(&schema, 2).unwrap();
        let mut cluster = DlaCluster::new(
            ClusterConfig::new(2, schema)
                .with_partition(partition)
                .with_seed(7),
        )
        .unwrap();
        let user = cluster.register_user("u").unwrap();
        let data = [(10i64, 20i64), (30, 5), (7, 7), (-3, 2)];
        let mut glsns = Vec::new();
        for (a, b) in data {
            let record = LogRecord::new(Glsn(0))
                .with("a", AttrValue::Int(a))
                .with("b", AttrValue::Int(b));
            glsns.push(cluster.log_record(&user, &record).unwrap());
        }
        let result = cluster.query("a < b").unwrap();
        let matched: Vec<usize> = result
            .glsns
            .iter()
            .map(|g| glsns.iter().position(|x| x == g).unwrap())
            .collect();
        assert_eq!(matched, vec![0, 3]);

        let result = cluster.query("a >= b").unwrap();
        let matched: Vec<usize> = result
            .glsns
            .iter()
            .map(|g| glsns.iter().position(|x| x == g).unwrap())
            .collect();
        assert_eq!(matched, vec![1, 2]);
    }

    #[test]
    fn cross_protocols_robust_under_link_latency() {
        // Attr-attr comparison sends from two owners to the TTP whose
        // arrivals interleave under latency; selective receive keeps
        // the answer deterministic.
        use dla_logstore::model::AttrType;
        use dla_logstore::schema::AttrDef;
        for seed in 0..3u64 {
            let schema = Schema::new(vec![
                AttrDef::known("a", AttrType::Int),
                AttrDef::known("b", AttrType::Int),
            ])
            .unwrap();
            let partition = Partition::round_robin(&schema, 2).unwrap();
            let mut cluster = DlaCluster::new(
                ClusterConfig::new(2, schema)
                    .with_partition(partition)
                    .with_seed(seed)
                    .with_latency(dla_net::latency::LatencyModel::lan()),
            )
            .unwrap();
            let user = cluster.register_user("u").unwrap();
            for (a, b) in [(1i64, 2i64), (5, 3), (4, 4)] {
                let record = LogRecord::new(Glsn(0))
                    .with("a", AttrValue::Int(a))
                    .with("b", AttrValue::Int(b));
                cluster.log_record(&user, &record).unwrap();
            }
            let result = cluster.query("a < b").unwrap();
            assert_eq!(result.glsns.len(), 1, "seed {seed}");
        }
    }

    #[test]
    fn distributed_matches_centralized_on_random_workload() {
        use dla_logstore::gen::{generate, WorkloadConfig};
        use rand::SeedableRng;
        let schema = Schema::paper_example();
        let partition = Partition::paper_example(&schema);
        let mut cluster = DlaCluster::new(
            ClusterConfig::new(4, schema.clone())
                .with_partition(partition)
                .with_seed(123),
        )
        .unwrap();
        let user = cluster.register_user("u").unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(55);
        let records = generate(
            &WorkloadConfig {
                records: 40,
                ..WorkloadConfig::default()
            },
            &mut rng,
        );
        let glsns = cluster.log_records(&user, &records).unwrap();
        for q in [
            "c1 > 50",
            "c1 > 50 AND protocol = 'TCP'",
            "(id = 'U1' OR c1 > 80) AND c2 < 500.00",
            "NOT (protocol = 'UDP' OR c1 < 20)",
            "id != c3",
        ] {
            let parsed = crate::parser::parse(q, &schema).unwrap();
            let expect: BTreeSet<Glsn> = records
                .iter()
                .zip(&glsns)
                .filter(|(r, _)| {
                    let mut rr = LogRecord::new(Glsn(0));
                    for (n, v) in r.iter() {
                        rr.insert(n.clone(), v.clone());
                    }
                    parsed.eval(&rr).unwrap()
                })
                .map(|(_, g)| *g)
                .collect();
            let got: BTreeSet<Glsn> = cluster.query(q).unwrap().glsns.into_iter().collect();
            assert_eq!(got, expect, "query {q}");
        }
    }

    #[test]
    fn ordinal_mapping_preserves_order_and_bounds() {
        let vals = [AttrValue::Int(-100), AttrValue::Int(0), AttrValue::Int(100)];
        let ords: Vec<u64> = vals.iter().map(|v| to_ordinal(v).unwrap()).collect();
        assert!(ords[0] < ords[1] && ords[1] < ords[2]);
        assert!(to_ordinal(&AttrValue::Int(1 << 39)).is_err());
        assert!(to_ordinal(&AttrValue::text("x")).is_err());
        assert!(to_ordinal(&AttrValue::Time(1_021_234_715)).is_ok());
    }
}
