//! Threshold-signature attestation of audit results (paper §2: "DLA
//! nodes use secure multiparty computations, **threshold signature**
//! and distributed majority agreement to provide trusted and reliable
//! auditing").
//!
//! A result (a glsn list, a count, an aggregate sum) is only as
//! trustworthy as the nodes that produced it — so a **majority** of
//! DLA nodes jointly sign the result digest with a (⌈n/2⌉+1, n)
//! threshold Schnorr key. No minority of compromised nodes can forge
//! an attestation, and any user can verify it against the cluster's
//! single public attestation key.

use crate::cluster::DlaCluster;
use crate::AuditError;
use dla_crypto::schnorr::{self, SchnorrGroup, SchnorrPublicKey, Signature};
use dla_crypto::threshold::{
    self, NonceCommitment, PartialSignature, SigningSession, ThresholdKey,
};
use dla_net::wire::{Reader, Writer};
use dla_net::NodeId;
use rand::Rng;

/// The cluster-wide attestation apparatus: the dealt threshold key and
/// its public verification half.
pub struct Attestor {
    key: ThresholdKey,
}

impl std::fmt::Debug for Attestor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Attestor(threshold {} of {})",
            self.key.threshold(),
            self.key.shares().len()
        )
    }
}

/// A verified, signed audit result.
#[derive(Debug, Clone)]
pub struct Attestation {
    /// The attested message (canonical result bytes).
    pub message: Vec<u8>,
    /// The combined threshold signature.
    pub signature: Signature,
    /// Which DLA nodes participated.
    pub signers: Vec<usize>,
}

impl Attestor {
    /// Deals a majority-threshold key over the cluster's nodes.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Config`] if dealing fails.
    pub fn deal<R: Rng + ?Sized>(
        group: &SchnorrGroup,
        n: usize,
        rng: &mut R,
    ) -> Result<Self, AuditError> {
        let k = n / 2 + 1;
        let key =
            ThresholdKey::deal(group, k, n, rng).map_err(|e| AuditError::Config(e.to_string()))?;
        Ok(Attestor { key })
    }

    /// The threshold (majority size).
    #[must_use]
    pub fn threshold(&self) -> usize {
        self.key.threshold()
    }

    /// The public key attestations verify under.
    #[must_use]
    pub fn public(&self) -> &SchnorrPublicKey {
        self.key.public()
    }

    /// Runs the two-round signing protocol over the cluster network
    /// with the first `threshold` nodes as signers.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError`] on network or signing failures.
    pub fn attest(
        &self,
        cluster: &mut DlaCluster,
        message: &[u8],
    ) -> Result<Attestation, AuditError> {
        let k = self.key.threshold();
        let group = self.key.group().clone();
        let signers: Vec<usize> = (0..k).collect();
        let coordinator = cluster.auditor_node();

        // Round 1: each signer commits to a nonce and sends the
        // commitment to the coordinator.
        let (mut net, rng) = cluster.net_and_rng();
        let sessions: Vec<SigningSession> = signers
            .iter()
            .map(|&i| SigningSession::start(&group, &self.key.shares()[i], rng))
            .collect();
        let mut commitments: Vec<NonceCommitment> = Vec::with_capacity(k);
        for (session, &i) in sessions.iter().zip(&signers) {
            let c = session.commitment();
            let mut w = Writer::new();
            w.put_u8(0x60)
                .put_u64(c.index)
                .put_bytes(&c.r.to_bytes_be());
            net.send(NodeId(i), coordinator, w.finish());
            let envelope = net
                .recv_from(coordinator, NodeId(i))
                .map_err(AuditError::Net)?;
            let mut r = Reader::new(&envelope.payload);
            let _ = r.get_u8().map_err(|e| AuditError::Config(e.to_string()))?;
            let index = r.get_u64().map_err(|e| AuditError::Config(e.to_string()))?;
            let point = dla_bigint::Ubig::from_bytes_be(
                r.get_bytes()
                    .map_err(|e| AuditError::Config(e.to_string()))?,
            );
            commitments.push(NonceCommitment { index, r: point });
        }

        // Coordinator broadcasts the commitment set; signers respond.
        let mut partials: Vec<PartialSignature> = Vec::with_capacity(k);
        for (session, &i) in sessions.into_iter().zip(&signers) {
            let mut w = Writer::new();
            w.put_u8(0x61).put_list(&commitments, |w, c| {
                w.put_u64(c.index);
                w.put_bytes(&c.r.to_bytes_be());
            });
            net.send(coordinator, NodeId(i), w.finish());
            let _ = net
                .recv_from(NodeId(i), coordinator)
                .map_err(AuditError::Net)?;
            let partial = session
                .respond(&group, self.key.public(), &commitments, message)
                .map_err(|e| AuditError::Config(e.to_string()))?;
            let mut w = Writer::new();
            w.put_u8(0x62)
                .put_u64(partial.index)
                .put_bytes(&partial.s.to_bytes_be());
            net.send(NodeId(i), coordinator, w.finish());
            let _ = net
                .recv_from(coordinator, NodeId(i))
                .map_err(AuditError::Net)?;
            partials.push(partial);
        }

        let signature =
            threshold::combine(&group, self.key.public(), &commitments, &partials, message)
                .map_err(|e| AuditError::Config(e.to_string()))?;
        Ok(Attestation {
            message: message.to_vec(),
            signature,
            signers,
        })
    }

    /// Verifies an attestation.
    #[must_use]
    pub fn verify(&self, attestation: &Attestation) -> bool {
        schnorr::verify(
            self.key.group(),
            self.key.public(),
            &attestation.message,
            &attestation.signature,
        )
    }
}

/// Canonical result bytes for a glsn list (what gets attested after a
/// query).
#[must_use]
pub fn result_message(query: &str, glsns: &[dla_logstore::model::Glsn]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(b"dla-audit-result");
    out.extend_from_slice(&(query.len() as u64).to_be_bytes());
    out.extend_from_slice(query.as_bytes());
    for g in glsns {
        out.extend_from_slice(&g.0.to_be_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use dla_logstore::model::Glsn;
    use dla_logstore::schema::Schema;
    use rand::SeedableRng;

    fn setup() -> (DlaCluster, Attestor) {
        let cluster =
            DlaCluster::new(ClusterConfig::new(4, Schema::paper_example()).with_seed(5)).unwrap();
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let attestor = Attestor::deal(cluster.group(), 4, &mut rng).unwrap();
        (cluster, attestor)
    }

    #[test]
    fn majority_attestation_verifies() {
        let (mut cluster, attestor) = setup();
        assert_eq!(attestor.threshold(), 3);
        let msg = result_message("c1 > 5", &[Glsn(1), Glsn(2)]);
        let attestation = attestor.attest(&mut cluster, &msg).unwrap();
        assert!(attestor.verify(&attestation));
        assert_eq!(attestation.signers, vec![0, 1, 2]);
    }

    #[test]
    fn attestation_bound_to_result() {
        let (mut cluster, attestor) = setup();
        let msg = result_message("c1 > 5", &[Glsn(1)]);
        let mut attestation = attestor.attest(&mut cluster, &msg).unwrap();
        // Swap in a different result: verification fails.
        attestation.message = result_message("c1 > 5", &[Glsn(2)]);
        assert!(!attestor.verify(&attestation));
    }

    #[test]
    fn attestation_traffic_is_accounted() {
        let (mut cluster, attestor) = setup();
        let before = cluster.net().stats().messages_sent;
        let msg = result_message("q", &[]);
        let _ = attestor.attest(&mut cluster, &msg).unwrap();
        // 3 commitments + 3 broadcasts + 3 partials.
        assert_eq!(cluster.net().stats().messages_sent - before, 9);
    }

    #[test]
    fn result_message_is_injective() {
        assert_ne!(
            result_message("a", &[Glsn(1)]),
            result_message("a", &[Glsn(2)])
        );
        assert_ne!(result_message("a", &[]), result_message("b", &[]));
    }

    #[test]
    fn different_attestors_do_not_cross_verify() {
        let (mut cluster, attestor) = setup();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let other = Attestor::deal(cluster.group(), 4, &mut rng).unwrap();
        let msg = result_message("q", &[Glsn(9)]);
        let attestation = attestor.attest(&mut cluster, &msg).unwrap();
        assert!(!other.verify(&attestation));
    }
}
