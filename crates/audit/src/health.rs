//! Cluster health: heartbeat probing with a suspicion-based failure
//! detector.
//!
//! The auditor periodically pings every DLA node on a dedicated
//! session. A node that answers is `Alive`; consecutive missed probes
//! accumulate suspicion until the node is declared `Dead`. Death is
//! sticky — once declared, the node is excluded from probing and the
//! survivor set, and recovery flows through re-replication
//! ([`crate::cluster::DlaCluster::rereplicate`]) rather than silent
//! rejoin.

use std::collections::BTreeSet;
use std::sync::Arc;

use dla_net::wire::{Reader, Writer};
use dla_net::{Clock, NodeId, Session, SessionId, SimTime, Transport};

use crate::cluster::DlaCluster;
use crate::AuditError;

/// Heartbeat request tag (auditor → DLA node).
pub const TAG_PING: u8 = 0x50;
/// Heartbeat response tag (DLA node → auditor).
pub const TAG_PONG: u8 = 0x51;

/// Tuning for the failure detector.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Consecutive missed probes before a node is declared dead.
    pub suspicion_threshold: u32,
    /// Virtual time the auditor waits out for each missed probe.
    pub probe_timeout: SimTime,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            suspicion_threshold: 3,
            probe_timeout: SimTime::from_micros(500),
        }
    }
}

/// Detector verdict for one DLA node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeStatus {
    /// Responded to the most recent probe.
    Alive,
    /// Missed `misses` consecutive probes but is not yet declared dead.
    Suspected {
        /// Consecutive missed probes so far.
        misses: u32,
    },
    /// Missed [`HealthConfig::suspicion_threshold`] consecutive probes
    /// (or was declared dead explicitly). Terminal.
    Dead,
}

/// Heartbeat-driven failure detector over a cluster's DLA nodes.
///
/// Probes run on a dedicated network session so heartbeat traffic and
/// its virtual-time cost never mix with query or audit accounting.
#[derive(Debug)]
pub struct HealthMonitor {
    session: SessionId,
    config: HealthConfig,
    statuses: Vec<NodeStatus>,
    rounds: u64,
    /// Optional time driver. `None` keeps the legacy simulator
    /// semantics (missed probes only *charge* virtual time to the
    /// auditor's session clock). With a clock injected, each missed
    /// probe also advances the driver — a virtual clock ticks forward,
    /// a wall clock genuinely waits out the probe deadline — and
    /// telemetry events are stamped from it.
    clock: Option<Arc<dyn Clock>>,
}

impl HealthMonitor {
    /// Opens a dedicated heartbeat session on `cluster`'s network.
    #[must_use]
    pub fn new(cluster: &DlaCluster, config: HealthConfig) -> Self {
        let session = cluster.shared_net().open_session();
        HealthMonitor {
            session,
            config,
            statuses: vec![NodeStatus::Alive; cluster.num_nodes()],
            rounds: 0,
            clock: None,
        }
    }

    /// Injects a time driver: missed probes advance `clock` by the
    /// probe timeout (sleeping for real on a wall clock) and status
    /// transitions are stamped from it.
    #[must_use]
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// The dedicated heartbeat session id.
    #[must_use]
    pub fn session(&self) -> SessionId {
        self.session
    }

    /// Detector state for `node`.
    #[must_use]
    pub fn status(&self, node: usize) -> NodeStatus {
        self.statuses[node]
    }

    /// Whether `node` has been declared dead.
    #[must_use]
    pub fn is_dead(&self, node: usize) -> bool {
        self.statuses[node] == NodeStatus::Dead
    }

    /// Indices of nodes not declared dead.
    #[must_use]
    pub fn survivors(&self) -> BTreeSet<usize> {
        self.statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| **s != NodeStatus::Dead)
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of nodes declared dead.
    #[must_use]
    pub fn dead(&self) -> BTreeSet<usize> {
        self.statuses
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == NodeStatus::Dead)
            .map(|(i, _)| i)
            .collect()
    }

    /// Declares `node` dead without probing (operator knowledge, or a
    /// timeout observed on another session).
    pub fn mark_dead(&mut self, node: usize) {
        self.statuses[node] = NodeStatus::Dead;
    }

    /// Runs one heartbeat round: pings every not-yet-dead DLA node and
    /// updates its status from the outcome.
    ///
    /// # Errors
    ///
    /// Currently infallible in simulation; the `Result` reserves room
    /// for transports whose sends can fail.
    pub fn probe_round(&mut self, cluster: &DlaCluster) -> Result<(), AuditError> {
        self.rounds += 1;
        let auditor = cluster.auditor_node();
        let net: &dyn Transport = cluster.shared_net();
        let session = Session::new(net, self.session);
        for node in 0..self.statuses.len() {
            if self.statuses[node] == NodeStatus::Dead {
                continue;
            }
            let mut w = Writer::new();
            w.put_u8(TAG_PING).put_u64(self.rounds);
            session.send(auditor, NodeId(node), w.finish());
            if self.pong(&session, auditor, NodeId(node)) {
                self.transition(node, NodeStatus::Alive, &session);
            } else {
                // Model the auditor waiting out the probe deadline.
                session.charge(auditor, self.config.probe_timeout);
                if let Some(clock) = &self.clock {
                    clock.advance(self.config.probe_timeout);
                }
                let next = match self.statuses[node] {
                    NodeStatus::Alive => NodeStatus::Suspected { misses: 1 },
                    NodeStatus::Suspected { misses } => {
                        if misses + 1 >= self.config.suspicion_threshold {
                            NodeStatus::Dead
                        } else {
                            NodeStatus::Suspected { misses: misses + 1 }
                        }
                    }
                    NodeStatus::Dead => NodeStatus::Dead,
                };
                self.transition(node, next, &session);
            }
        }
        Ok(())
    }

    /// Applies a detector verdict, emitting a telemetry event on every
    /// status *change* so traces show suspicion building up and deaths
    /// being declared on the virtual timeline.
    fn transition(&mut self, node: usize, next: NodeStatus, session: &Session<'_>) {
        if dla_telemetry::is_active() && next != self.statuses[node] {
            let name = match next {
                NodeStatus::Alive => "health-alive",
                NodeStatus::Suspected { .. } => "health-suspect",
                NodeStatus::Dead => "health-dead",
            };
            // Stamp from the injected driver when present (real
            // timestamps on wall deployments), else from the session's
            // virtual makespan as before.
            let at = self
                .clock
                .as_ref()
                .map_or_else(|| session.elapsed(), |c| c.now());
            dla_telemetry::event(
                name,
                at.as_nanos(),
                &[
                    ("node", &node.to_string()),
                    ("round", &self.rounds.to_string()),
                ],
            );
        }
        self.statuses[node] = next;
    }

    /// Runs `rounds` consecutive heartbeat rounds.
    ///
    /// # Errors
    ///
    /// Propagates the first [`probe_round`](Self::probe_round) failure.
    pub fn probe_rounds(&mut self, cluster: &DlaCluster, rounds: u32) -> Result<(), AuditError> {
        for _ in 0..rounds {
            self.probe_round(cluster)?;
        }
        Ok(())
    }

    /// Probes until every currently suspected node is resolved to
    /// `Alive` or `Dead` (at most `suspicion_threshold` extra rounds).
    ///
    /// # Errors
    ///
    /// Propagates the first [`probe_round`](Self::probe_round) failure.
    pub fn settle(&mut self, cluster: &DlaCluster) -> Result<(), AuditError> {
        self.probe_rounds(cluster, self.config.suspicion_threshold)
    }

    /// Drives the probed node's half of the heartbeat: if the ping got
    /// through, the node answers and the auditor collects the pong.
    fn pong(&self, session: &Session<'_>, auditor: NodeId, node: NodeId) -> bool {
        let Ok(ping) = session.recv_from(node, auditor) else {
            return false;
        };
        let mut r = Reader::new(&ping.payload);
        let (Ok(TAG_PING), Ok(round)) = (r.get_u8(), r.get_u64()) else {
            return false;
        };
        let mut w = Writer::new();
        w.put_u8(TAG_PONG).put_u64(round);
        session.send(node, auditor, w.finish());
        match session.recv_from(auditor, node) {
            Ok(pong) => {
                let mut r = Reader::new(&pong.payload);
                matches!((r.get_u8(), r.get_u64()), (Ok(TAG_PONG), Ok(echo)) if echo == round)
            }
            Err(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use dla_logstore::schema::Schema;

    fn cluster() -> DlaCluster {
        DlaCluster::new(ClusterConfig::new(4, Schema::paper_example()).with_seed(7)).unwrap()
    }

    #[test]
    fn healthy_cluster_stays_alive() {
        let cluster = cluster();
        let mut monitor = HealthMonitor::new(&cluster, HealthConfig::default());
        monitor.probe_rounds(&cluster, 5).unwrap();
        assert_eq!(monitor.survivors(), (0..4).collect());
        assert!(monitor.dead().is_empty());
        assert!((0..4).all(|i| monitor.status(i) == NodeStatus::Alive));
    }

    #[test]
    fn killed_node_is_suspected_then_declared_dead() {
        let cluster = cluster();
        cluster.net_mut().faults_mut().kill_node(2);
        let mut monitor = HealthMonitor::new(&cluster, HealthConfig::default());
        monitor.probe_round(&cluster).unwrap();
        assert_eq!(monitor.status(2), NodeStatus::Suspected { misses: 1 });
        monitor.probe_round(&cluster).unwrap();
        assert_eq!(monitor.status(2), NodeStatus::Suspected { misses: 2 });
        monitor.probe_round(&cluster).unwrap();
        assert_eq!(monitor.status(2), NodeStatus::Dead);
        assert_eq!(monitor.survivors(), [0, 1, 3].into_iter().collect());
        assert_eq!(monitor.dead(), [2].into_iter().collect());
    }

    #[test]
    fn suspicion_clears_when_the_node_answers_again() {
        let cluster = cluster();
        cluster.net_mut().faults_mut().kill_node(1);
        let mut monitor = HealthMonitor::new(&cluster, HealthConfig::default());
        monitor.probe_rounds(&cluster, 2).unwrap();
        assert_eq!(monitor.status(1), NodeStatus::Suspected { misses: 2 });
        cluster.net_mut().faults_mut().revive_node(1);
        monitor.probe_round(&cluster).unwrap();
        assert_eq!(monitor.status(1), NodeStatus::Alive);
    }

    #[test]
    fn death_is_sticky_even_after_revival() {
        let cluster = cluster();
        cluster.net_mut().faults_mut().kill_node(3);
        let mut monitor = HealthMonitor::new(&cluster, HealthConfig::default());
        monitor.settle(&cluster).unwrap();
        assert!(monitor.is_dead(3));
        cluster.net_mut().faults_mut().revive_node(3);
        monitor.probe_round(&cluster).unwrap();
        assert!(monitor.is_dead(3), "declared death must not silently clear");
    }

    #[test]
    fn heartbeats_run_on_their_own_session() {
        let cluster = cluster();
        let mut monitor = HealthMonitor::new(&cluster, HealthConfig::default());
        assert_ne!(monitor.session(), SessionId::ROOT);
        let before = cluster.net().stats().messages_sent;
        monitor.probe_round(&cluster).unwrap();
        assert!(cluster.net().stats().messages_sent > before);
        // Root-session accounting is untouched by heartbeat traffic.
        let (root_msgs, _) = Session::root(cluster.shared_net()).counters();
        assert_eq!(root_msgs, 0);
    }

    #[test]
    fn injected_clock_advances_on_missed_probes() {
        let cluster = cluster();
        cluster.net_mut().faults_mut().kill_node(2);
        let clock = Arc::new(dla_net::VirtualClock::new());
        let mut monitor = HealthMonitor::new(&cluster, HealthConfig::default())
            .with_clock(Arc::clone(&clock) as Arc<dyn Clock>);
        monitor.probe_round(&cluster).unwrap();
        // One missed probe: the driver waited out exactly one timeout.
        assert_eq!(clock.now(), HealthConfig::default().probe_timeout);
        monitor.probe_round(&cluster).unwrap();
        assert_eq!(
            clock.now().as_nanos(),
            2 * HealthConfig::default().probe_timeout.as_nanos()
        );
    }

    #[test]
    fn mark_dead_takes_effect_immediately() {
        let cluster = cluster();
        let mut monitor = HealthMonitor::new(&cluster, HealthConfig::default());
        monitor.mark_dead(0);
        assert_eq!(monitor.survivors(), [1, 2, 3].into_iter().collect());
        monitor.probe_round(&cluster).unwrap();
        assert!(monitor.is_dead(0));
    }
}
