//! The deployment workload: one seeded deposits-plus-queries exercise
//! that runs over **any** [`Transport`] — the in-process
//! [`dla_net::ChannelNet`], a loopback [`dla_net::TcpNet`] mesh of node
//! processes, or the cluster's own simulator — and reduces everything
//! observable to a deterministic answer digest.
//!
//! Transport equivalence is the deployment story's correctness
//! argument: the same seeded workload must produce **byte-identical**
//! answers whether protocol messages ride crossbeam channels between
//! threads or length-prefixed TCP frames between processes. The
//! `dla-cluster` launcher, the `exp_socket_e2e` benchmark and the
//! `socket_equivalence` integration test all run exactly this harness
//! and compare [`WorkloadOutcome::digest_hex`].
//!
//! The exercise covers the five MPC protocol families end to end:
//! secure set intersection and set union through the full query
//! executor (conjunctive and disjunctive plans), plus direct secure
//! sum, blind equality and privacy-preserving ranking sessions.

use crate::cluster::{trail_item, ClusterConfig, DlaCluster};
use crate::exec::ExecMode;
use crate::integrity::{check_trail, check_window, TrailVerdict};
use crate::plan::TimeWindow;
use crate::AuditError;
use dla_bigint::F61;
use dla_crypto::sha256;
use dla_logstore::fragment::Partition;
use dla_logstore::gen::{generate, WorkloadConfig};
use dla_logstore::schema::Schema;
use dla_mpc::{EqualitySession, RankingSession, SumSession};
use dla_net::{NodeId, Session, SessionId, Transport};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Session id for the deposit-shipping phase. Direct-protocol sessions
/// count up from here; all are far above the small ids the query
/// executor allocates on the cluster's simulator.
const DEPOSIT_SESSION: SessionId = SessionId(0x00DE_0001);
const SUM_SESSION: SessionId = SessionId(0x00DE_0002);
const EQUALITY_SESSION: SessionId = SessionId(0x00DE_0003);
const RANKING_SESSION: SessionId = SessionId(0x00DE_0004);

/// The conjunctive query (drives secure set intersection).
pub const SSI_QUERY: &str = "c1 > 30 AND id = 'U1'";
/// The disjunctive query (drives secure set union).
pub const UNION_QUERY: &str = "c1 > 40 OR id = 'U2'";

/// Shape of the seeded workload.
#[derive(Debug, Clone)]
pub struct WorkloadSpec {
    /// DLA nodes.
    pub nodes: usize,
    /// Records deposited before querying.
    pub records: usize,
    /// Master seed (cluster keys, workload generation, protocol
    /// randomness all derive from it).
    pub seed: u64,
    /// Federation ring this deployment belongs to: the cluster draws
    /// its glsns from ring `ring`'s span of
    /// [`dla_logstore::epoch::RingNamespace::paper_default`]. Ring 0
    /// is the historical single-ring deployment.
    pub ring: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            nodes: 4,
            records: 12,
            seed: 7,
            ring: 0,
        }
    }
}

impl WorkloadSpec {
    /// Network size an external transport must provide for this spec:
    /// the DLA nodes, the auditor, the blind-TTP helper, and one user
    /// endpoint (the depositor).
    #[must_use]
    pub fn network_size(&self) -> usize {
        self.nodes + 3
    }
}

/// One protocol family's result within a workload run.
#[derive(Debug, Clone)]
pub struct ProtocolRun {
    /// Protocol family name ("ssi", "union", "sum", "equality",
    /// "ranking").
    pub protocol: &'static str,
    /// Canonical answer rendering — identical across transports by
    /// construction; what the equivalence digest folds.
    pub answer: String,
    /// Wall-clock latency of this protocol phase in milliseconds.
    pub millis: f64,
}

/// Everything a workload run produced.
#[derive(Debug, Clone)]
pub struct WorkloadOutcome {
    /// Per-protocol answers and latencies, in execution order.
    pub runs: Vec<ProtocolRun>,
    /// SHA-256 over the shipped deposit items and every answer line.
    pub digest: sha256::Digest,
    /// Deposit fragments shipped over the transport.
    pub deposits_shipped: usize,
    /// Wall-clock milliseconds spent in the deposit-shipping phase.
    pub deposit_millis: f64,
    /// Whole-trail integrity verdict after the run.
    pub trail: TrailVerdict,
    /// Windowed (checkpoint-chain) integrity verdict after the run.
    pub window: TrailVerdict,
}

impl WorkloadOutcome {
    /// The equivalence digest, hex-encoded.
    #[must_use]
    pub fn digest_hex(&self) -> String {
        self.digest.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Whether both integrity verdicts passed.
    #[must_use]
    pub fn integrity_ok(&self) -> bool {
        self.trail.ok && self.window.ok
    }
}

/// The trail fragments a deployment ships to node processes: for each
/// logged glsn, `(glsn, owner index, trail item bytes)` with ownership
/// by `glsn % nodes`. The `dla-cluster` launcher pushes these through
/// the socket transport's store path so node-side deposit digests can
/// be audited against the farewell reports.
#[must_use]
pub fn fragments(cluster: &DlaCluster, nodes: usize) -> Vec<(u64, usize, Vec<u8>)> {
    cluster
        .logged_glsns()
        .into_iter()
        .map(|glsn| {
            let deposit = cluster.deposit(glsn).expect("logged glsns have deposits");
            (glsn.0, (glsn.0 as usize) % nodes, trail_item(glsn, deposit))
        })
        .collect()
}

/// Builds and loads the cluster for `spec`: paper schema (the paper's
/// partition when `nodes == 4`, round-robin otherwise), a short epoch
/// length so several epochs seal and the checkpoint chain is
/// non-trivial, and `spec.records` generated records logged by one
/// registered user.
///
/// # Errors
///
/// Propagates cluster construction and logging failures.
pub fn build_cluster(spec: &WorkloadSpec) -> Result<DlaCluster, AuditError> {
    let schema = Schema::paper_example();
    let namespace = dla_logstore::epoch::RingNamespace::paper_default();
    let mut config = ClusterConfig::new(spec.nodes, schema.clone())
        .with_seed(spec.seed)
        .with_epoch_length(4)
        .with_glsn_base(namespace.base_of(spec.ring));
    if spec.nodes == 4 {
        config = config.with_partition(Partition::paper_example(&schema));
    }
    let mut cluster = DlaCluster::new(config)?;
    let user = cluster.register_user("deploy")?;
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let records = generate(
        &WorkloadConfig {
            records: spec.records,
            ..WorkloadConfig::default()
        },
        &mut rng,
    );
    cluster.log_records(&user, &records)?;
    Ok(cluster)
}

/// Runs the full workload over `transport`: ships every deposit's
/// trail item from the user endpoint to its owner node, executes the
/// five protocol families, checks trail integrity, and folds the whole
/// trace into the equivalence digest.
///
/// The cluster must have been built by [`build_cluster`] with the same
/// `spec` (the protocols derive their inputs from the deposits and the
/// seed). `transport` carries all protocol traffic; session management
/// stays on the cluster's own network.
///
/// # Errors
///
/// Propagates protocol failures and transport timeouts.
///
/// # Panics
///
/// Panics if a subquery worker thread panics (see
/// [`crate::exec::execute_on`]).
pub fn run_workload(
    cluster: &DlaCluster,
    transport: &(dyn Transport + Sync),
    spec: &WorkloadSpec,
) -> Result<WorkloadOutcome, AuditError> {
    let mut hasher_input: Vec<u8> = Vec::new();
    let mut runs = Vec::new();

    // Phase 1: ship each deposit's trail item from the user endpoint to
    // the node owning its glsn, over a dedicated session. On a socket
    // transport every item genuinely crosses the process mesh; the
    // receiving side (driven centrally, like the protocols) checks the
    // bytes arrived intact.
    let depositor = NodeId(spec.nodes + 2);
    let session = Session::new(transport, DEPOSIT_SESSION);
    let started = Instant::now();
    let mut shipped = 0usize;
    for glsn in cluster.logged_glsns() {
        let deposit = cluster.deposit(glsn).expect("logged glsns have deposits");
        let item = trail_item(glsn, deposit);
        let owner = NodeId((glsn.0 as usize) % spec.nodes);
        session.send(depositor, owner, bytes::Bytes::from(item.clone()));
        let received = session
            .recv_from(owner, depositor)
            .map_err(AuditError::from)?;
        if received.payload.as_ref() != item.as_slice() {
            return Err(AuditError::Integrity(format!(
                "deposit for {glsn:?} arrived mangled at {owner}"
            )));
        }
        hasher_input.extend_from_slice(&item);
        shipped += 1;
    }
    let deposit_millis = started.elapsed().as_secs_f64() * 1e3;

    // Phase 2: the five protocol families.
    let parties: Vec<NodeId> = (0..spec.nodes).map(NodeId).collect();
    let auditor = cluster.auditor_node();
    let ttp = cluster.ttp_node();

    // Secure set intersection, through the conjunctive query plan.
    runs.push(timed("ssi", || {
        let result = run_query(cluster, transport, SSI_QUERY, spec.seed ^ 0x5551)?;
        Ok(format!("{result:?}"))
    })?);

    // Secure set union, through the disjunctive query plan.
    runs.push(timed("union", || {
        let result = run_query(cluster, transport, UNION_QUERY, spec.seed ^ 0x0101)?;
        Ok(format!("{result:?}"))
    })?);

    // Secure sum: each node contributes a value derived from the seed.
    runs.push(timed("sum", || {
        let inputs: Vec<F61> = (0..spec.nodes as u64)
            .map(|i| F61::new(spec.seed.wrapping_mul(31).wrapping_add(7 * i) % 1_000))
            .collect();
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x50D);
        let session = Session::new(transport, SUM_SESSION);
        let outcome = SumSession::new(session, &parties, spec.nodes, auditor)
            .run(&inputs, &mut rng)
            .map_err(AuditError::from)?;
        Ok(format!("{}", outcome.total.value()))
    })?);

    // Blind equality between the first two nodes via the TTP helper.
    runs.push(timed("equality", || {
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xE0);
        let session = Session::new(transport, EQUALITY_SESSION);
        let outcome = EqualitySession::new(session, parties[0], parties[1 % spec.nodes], ttp)
            .run(
                F61::new(spec.seed % 97),
                F61::new((spec.seed + 1) % 97),
                &mut rng,
            )
            .map_err(AuditError::from)?;
        Ok(format!("{}", outcome.equal))
    })?);

    // Privacy-preserving ranking of per-node values via the TTP.
    runs.push(timed("ranking", || {
        let values: Vec<u64> = (0..spec.nodes as u64)
            .map(|i| spec.seed.wrapping_mul(i + 3) % 10_000)
            .collect();
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0x4A4B);
        let session = Session::new(transport, RANKING_SESSION);
        let outcome = RankingSession::new(session, &parties, ttp)
            .run(&values, &mut rng)
            .map_err(AuditError::from)?;
        Ok(format!("{:?}", outcome.ascending))
    })?);

    // Phase 3: integrity circulation over everything deposited.
    let trail = check_trail(cluster);
    let window = check_window(cluster, &TimeWindow::unbounded());

    for run in &runs {
        hasher_input.extend_from_slice(run.protocol.as_bytes());
        hasher_input.push(b'=');
        hasher_input.extend_from_slice(run.answer.as_bytes());
        hasher_input.push(b'\n');
    }
    let digest = sha256::digest(&hasher_input);

    Ok(WorkloadOutcome {
        runs,
        digest,
        deposits_shipped: shipped,
        deposit_millis,
        trail,
        window,
    })
}

/// Parses, plans and executes one query over `transport` with a fixed
/// `query_seed`, returning the sorted answer glsns (the deterministic,
/// transport-independent rendering base).
fn run_query(
    cluster: &DlaCluster,
    transport: &(dyn Transport + Sync),
    criteria: &str,
    query_seed: u64,
) -> Result<Vec<u64>, AuditError> {
    let parsed = crate::parser::parse(criteria, cluster.schema())
        .map_err(|e| AuditError::Parse(e.to_string()))?;
    parsed
        .check(cluster.schema())
        .map_err(|e| AuditError::Parse(e.to_string()))?;
    let normalized = crate::normal::normalize(&parsed);
    let plan = crate::plan::plan(&normalized, cluster.partition())?;
    let result = crate::exec::execute_on(
        cluster,
        transport,
        &plan,
        true,
        ExecMode::Concurrent,
        query_seed,
    )?;
    Ok(result.glsns.iter().map(|g| g.0).collect())
}

/// Runs `f`, stamping the wall-clock latency onto the protocol run.
fn timed(
    protocol: &'static str,
    f: impl FnOnce() -> Result<String, AuditError>,
) -> Result<ProtocolRun, AuditError> {
    let started = Instant::now();
    let answer = f()?;
    Ok(ProtocolRun {
        protocol,
        answer,
        millis: started.elapsed().as_secs_f64() * 1e3,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_net::{ChannelNet, SimTime, VirtualClock};
    use std::sync::Arc;

    fn channel_net(spec: &WorkloadSpec) -> ChannelNet {
        ChannelNet::with_clock(
            spec.network_size(),
            SimTime::from_millis(2_000),
            Arc::new(VirtualClock::new()),
        )
    }

    #[test]
    fn workload_runs_over_channel_net() {
        let spec = WorkloadSpec::default();
        let cluster = build_cluster(&spec).expect("cluster");
        let net = channel_net(&spec);
        let outcome = run_workload(&cluster, &net, &spec).expect("workload");
        assert_eq!(outcome.deposits_shipped, spec.records);
        assert_eq!(outcome.runs.len(), 5);
        assert!(outcome.integrity_ok(), "trail and window must verify");
        assert!(outcome.runs.iter().all(|r| !r.answer.is_empty()));
        assert_eq!(outcome.digest_hex().len(), 64);
    }

    #[test]
    fn same_spec_same_digest_fresh_everything() {
        let spec = WorkloadSpec {
            records: 8,
            seed: 21,
            ..WorkloadSpec::default()
        };
        let a = {
            let cluster = build_cluster(&spec).expect("cluster");
            run_workload(&cluster, &channel_net(&spec), &spec).expect("run a")
        };
        let b = {
            let cluster = build_cluster(&spec).expect("cluster");
            run_workload(&cluster, &channel_net(&spec), &spec).expect("run b")
        };
        assert_eq!(a.digest_hex(), b.digest_hex(), "workload is deterministic");
        let answers_a: Vec<_> = a.runs.iter().map(|r| r.answer.clone()).collect();
        let answers_b: Vec<_> = b.runs.iter().map(|r| r.answer.clone()).collect();
        assert_eq!(answers_a, answers_b);
    }

    #[test]
    fn different_seeds_diverge() {
        let spec_a = WorkloadSpec {
            seed: 1,
            ..WorkloadSpec::default()
        };
        let spec_b = WorkloadSpec {
            seed: 2,
            ..WorkloadSpec::default()
        };
        let a = {
            let cluster = build_cluster(&spec_a).expect("cluster");
            run_workload(&cluster, &channel_net(&spec_a), &spec_a).expect("run")
        };
        let b = {
            let cluster = build_cluster(&spec_b).expect("cluster");
            run_workload(&cluster, &channel_net(&spec_b), &spec_b).expect("run")
        };
        assert_ne!(a.digest_hex(), b.digest_hex());
    }
}
