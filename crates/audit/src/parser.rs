//! A textual surface syntax for auditing criteria ("simple auditing
//! query statements", §1).
//!
//! Grammar (case-insensitive keywords):
//!
//! ```text
//! expr    := term (OR term)*
//! term    := factor (AND factor)*
//! factor  := NOT factor | '(' expr ')' | predicate
//! pred    := ident op operand
//! op      := '<' | '<=' | '>' | '>=' | '=' | '!=' | '<>'
//! operand := ident | number | 'string' | "string"
//! ```
//!
//! Numeric literals with a decimal point become fixed-point values
//! (`23.45` → hundredths); a time-typed left attribute accepts the
//! paper's `'HH:MM:SS/MM/DD/YYYY'` literal form. Literal typing is
//! resolved against the schema so `c2 > 20` coerces to fixed-point when
//! `c2` is.

use crate::query::{CmpOp, Criteria, Operand, Predicate};
use dla_logstore::model::{epoch_from_civil, AttrName, AttrType, AttrValue};
use dla_logstore::schema::Schema;
use std::fmt;

/// Error produced when a query string cannot be parsed or typed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    message: String,
    position: usize,
}

impl ParseError {
    fn new(message: impl Into<String>, position: usize) -> Self {
        ParseError {
            message: message.into(),
            position,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(String),
    Str(String),
    Op(CmpOp),
    LParen,
    RParen,
    And,
    Or,
    Not,
}

fn tokenize(input: &str) -> Result<Vec<(Token, usize)>, ParseError> {
    let mut out = Vec::new();
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' => {
                out.push((Token::LParen, i));
                i += 1;
            }
            ')' => {
                out.push((Token::RParen, i));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Token::Op(CmpOp::Le), i));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push((Token::Op(CmpOp::Ne), i));
                    i += 2;
                } else {
                    out.push((Token::Op(CmpOp::Lt), i));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Token::Op(CmpOp::Ge), i));
                    i += 2;
                } else {
                    out.push((Token::Op(CmpOp::Gt), i));
                    i += 1;
                }
            }
            '=' => {
                out.push((Token::Op(CmpOp::Eq), i));
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push((Token::Op(CmpOp::Ne), i));
                    i += 2;
                } else {
                    return Err(ParseError::new("expected '=' after '!'", i));
                }
            }
            '-' => {
                // Unary minus: only valid immediately before a number.
                if bytes.get(i + 1).is_some_and(u8::is_ascii_digit) {
                    let start = i;
                    i += 1;
                    while i < bytes.len()
                        && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.')
                    {
                        i += 1;
                    }
                    out.push((Token::Number(input[start..i].to_owned()), start));
                } else {
                    return Err(ParseError::new("expected digits after '-'", i));
                }
            }
            '\'' | '"' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] as char != quote {
                    j += 1;
                }
                if j == bytes.len() {
                    return Err(ParseError::new("unterminated string literal", i));
                }
                out.push((Token::Str(input[start..j].to_owned()), i));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && ((bytes[i] as char).is_ascii_digit() || bytes[i] == b'.') {
                    i += 1;
                }
                out.push((Token::Number(input[start..i].to_owned()), start));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                match word.to_ascii_uppercase().as_str() {
                    "AND" => out.push((Token::And, start)),
                    "OR" => out.push((Token::Or, start)),
                    "NOT" => out.push((Token::Not, start)),
                    _ => out.push((Token::Ident(word.to_owned()), start)),
                }
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character {other:?}"),
                    i,
                ))
            }
        }
    }
    Ok(out)
}

struct Parser<'a> {
    tokens: Vec<(Token, usize)>,
    pos: usize,
    schema: &'a Schema,
    input_len: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn here(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map_or(self.input_len, |&(_, p)| p)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expr(&mut self) -> Result<Criteria, ParseError> {
        let mut left = self.term()?;
        while self.peek() == Some(&Token::Or) {
            self.advance();
            let right = self.term()?;
            left = left.or(right);
        }
        Ok(left)
    }

    fn term(&mut self) -> Result<Criteria, ParseError> {
        let mut left = self.factor()?;
        while self.peek() == Some(&Token::And) {
            self.advance();
            let right = self.factor()?;
            left = left.and(right);
        }
        Ok(left)
    }

    fn factor(&mut self) -> Result<Criteria, ParseError> {
        match self.peek() {
            Some(Token::Not) => {
                self.advance();
                Ok(self.factor()?.not())
            }
            Some(Token::LParen) => {
                self.advance();
                let inner = self.expr()?;
                if self.advance() != Some(Token::RParen) {
                    return Err(ParseError::new("expected ')'", self.here()));
                }
                Ok(inner)
            }
            _ => self.predicate(),
        }
    }

    fn predicate(&mut self) -> Result<Criteria, ParseError> {
        let at = self.here();
        let Some(Token::Ident(lhs)) = self.advance() else {
            return Err(ParseError::new("expected attribute name", at));
        };
        let lhs_name = AttrName::new(&lhs);
        let lhs_def = self
            .schema
            .get(&lhs_name)
            .ok_or_else(|| ParseError::new(format!("unknown attribute {lhs}"), at))?;
        let lhs_type = lhs_def.attr_type();

        let at = self.here();
        let Some(Token::Op(op)) = self.advance() else {
            return Err(ParseError::new("expected comparison operator", at));
        };

        let at = self.here();
        let rhs = match self.advance() {
            Some(Token::Ident(name)) => {
                let rhs_name = AttrName::new(&name);
                if self.schema.contains(&rhs_name) {
                    Operand::Attr(rhs_name)
                } else {
                    return Err(ParseError::new(format!("unknown attribute {name}"), at));
                }
            }
            Some(Token::Number(text)) => Operand::Const(typed_number(&text, lhs_type, at)?),
            Some(Token::Str(text)) => Operand::Const(typed_string(&text, lhs_type, at)?),
            _ => return Err(ParseError::new("expected attribute or literal", at)),
        };

        let pred = Predicate {
            lhs: lhs_name,
            op,
            rhs,
        };
        pred.check(self.schema)
            .map_err(|e| ParseError::new(e.to_string(), at))?;
        Ok(Criteria::pred(pred))
    }
}

fn typed_number(text: &str, target: AttrType, at: usize) -> Result<AttrValue, ParseError> {
    match target {
        AttrType::Int => text
            .parse::<i64>()
            .map(AttrValue::Int)
            .map_err(|_| ParseError::new(format!("invalid integer {text}"), at)),
        AttrType::Fixed2 => {
            let (negative, unsigned) = match text.strip_prefix('-') {
                Some(rest) => (true, rest),
                None => (false, text),
            };
            let (whole, frac) = match unsigned.split_once('.') {
                Some((w, f)) => (w, f),
                None => (unsigned, ""),
            };
            if frac.len() > 2 || frac.chars().any(|c| !c.is_ascii_digit()) {
                return Err(ParseError::new(
                    format!("fixed-point literal {text} has more than two decimals"),
                    at,
                ));
            }
            let whole: i64 = whole
                .parse()
                .map_err(|_| ParseError::new(format!("invalid number {text}"), at))?;
            let frac_val: i64 = if frac.is_empty() {
                0
            } else {
                let padded = format!("{frac:0<2}");
                padded.parse().expect("digits only")
            };
            let magnitude = whole * 100 + frac_val;
            Ok(AttrValue::Fixed2(if negative {
                -magnitude
            } else {
                magnitude
            }))
        }
        AttrType::Time => text
            .parse::<u64>()
            .map(AttrValue::Time)
            .map_err(|_| ParseError::new(format!("invalid epoch time {text}"), at)),
        AttrType::Text => Err(ParseError::new(
            "numeric literal compared to a text attribute",
            at,
        )),
    }
}

fn typed_string(text: &str, target: AttrType, at: usize) -> Result<AttrValue, ParseError> {
    match target {
        AttrType::Text => Ok(AttrValue::text(text)),
        AttrType::Time => parse_paper_time(text).map(AttrValue::Time).ok_or_else(|| {
            ParseError::new(
                format!("invalid time literal {text:?} (want HH:MM:SS/MM/DD/YYYY)"),
                at,
            )
        }),
        other => Err(ParseError::new(
            format!("string literal compared to a {other} attribute"),
            at,
        )),
    }
}

/// Parses the paper's `HH:MM:SS/MM/DD/YYYY` timestamp format.
#[must_use]
pub fn parse_paper_time(text: &str) -> Option<u64> {
    let (clock, date) = text.split_once('/')?;
    let mut clock_parts = clock.split(':');
    let h: u64 = clock_parts.next()?.parse().ok()?;
    let m: u64 = clock_parts.next()?.parse().ok()?;
    let s: u64 = clock_parts.next()?.parse().ok()?;
    if clock_parts.next().is_some() {
        return None;
    }
    let mut date_parts = date.split('/');
    let month: u64 = date_parts.next()?.parse().ok()?;
    let day: u64 = date_parts.next()?.parse().ok()?;
    let year: i64 = date_parts.next()?.parse().ok()?;
    if date_parts.next().is_some()
        || !(1..=12).contains(&month)
        || !(1..=31).contains(&day)
        || h >= 24
        || m >= 60
        || s >= 60
    {
        return None;
    }
    Some(epoch_from_civil(year, month, day, h, m, s))
}

/// Parses an auditing criterion, typing literals against `schema`.
///
/// # Errors
///
/// Returns [`ParseError`] on syntax errors, unknown attributes or
/// literal/attribute type mismatches.
///
/// # Examples
///
/// ```
/// use dla_audit::parser::parse;
/// use dla_logstore::schema::Schema;
///
/// let schema = Schema::paper_example();
/// let q = parse("id = 'U1' AND c2 > 100.00", &schema)?;
/// assert_eq!(q.atom_count(), 2);
/// # Ok::<(), dla_audit::parser::ParseError>(())
/// ```
pub fn parse(input: &str, schema: &Schema) -> Result<Criteria, ParseError> {
    let tokens = tokenize(input)?;
    if tokens.is_empty() {
        return Err(ParseError::new("empty query", 0));
    }
    let mut parser = Parser {
        tokens,
        pos: 0,
        schema,
        input_len: input.len(),
    };
    let criteria = parser.expr()?;
    if parser.pos != parser.tokens.len() {
        return Err(ParseError::new("trailing tokens", parser.here()));
    }
    Ok(criteria)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dla_logstore::gen::paper_table1;

    fn schema() -> Schema {
        Schema::paper_example()
    }

    #[test]
    fn parses_simple_predicates() {
        let q = parse("c1 > 30", &schema()).unwrap();
        assert_eq!(q.to_string(), "c1 > 30");
        let q = parse("id = 'U1'", &schema()).unwrap();
        assert_eq!(q.to_string(), "id = 'U1'");
        let q = parse("c2 >= 100.50", &schema()).unwrap();
        assert_eq!(q.to_string(), "c2 >= 100.50");
    }

    #[test]
    fn parses_connectives_with_precedence() {
        // AND binds tighter than OR.
        let q = parse("c1 > 1 OR c1 < 5 AND id = 'U1'", &schema()).unwrap();
        assert_eq!(q.to_string(), "(c1 > 1 OR (c1 < 5 AND id = 'U1'))");
        let q = parse("(c1 > 1 OR c1 < 5) AND NOT id = 'U1'", &schema()).unwrap();
        assert_eq!(q.to_string(), "((c1 > 1 OR c1 < 5) AND (NOT id = 'U1'))");
    }

    #[test]
    fn parses_attr_attr_predicates() {
        let q = parse("id = c3", &schema()).unwrap();
        assert_eq!(q.to_string(), "id = c3");
    }

    #[test]
    fn parses_time_literals() {
        let q = parse("time > '20:18:35/05/12/2002'", &schema()).unwrap();
        // Evaluate against Table 1: rows 2-5 are later than row 1.
        let matching = paper_table1().iter().filter(|r| q.eval(r).unwrap()).count();
        assert_eq!(matching, 4);
    }

    #[test]
    fn fixed2_literals_coerce() {
        let q = parse("c2 > 100", &schema()).unwrap();
        // 100 → 100.00; Table 1 c2 values: 23.45, 345.11, 235.00, 45.02, 678.75.
        let matching = paper_table1().iter().filter(|r| q.eval(r).unwrap()).count();
        assert_eq!(matching, 3);
    }

    #[test]
    fn alternative_ne_spellings() {
        for src in ["protocol != 'TCP'", "protocol <> 'TCP'"] {
            let q = parse(src, &schema()).unwrap();
            let matching = paper_table1().iter().filter(|r| q.eval(r).unwrap()).count();
            assert_eq!(matching, 3, "{src}");
        }
    }

    #[test]
    fn parses_negative_literals() {
        let q = parse("c1 > -5", &schema()).unwrap();
        assert_eq!(q.to_string(), "c1 > -5");
        let q = parse("c2 <= -1.50", &schema()).unwrap();
        assert_eq!(q.to_string(), "c2 <= -1.50");
        // A bare '-' is still an error.
        assert!(parse("c1 > - 5", &schema()).is_err());
    }

    #[test]
    fn rejects_unknown_attribute() {
        let err = parse("salary > 100", &schema()).unwrap_err();
        assert!(err.to_string().contains("unknown attribute"));
    }

    #[test]
    fn rejects_type_mismatches() {
        assert!(parse("id > 5", &schema()).is_err());
        assert!(parse("c1 = 'x'", &schema()).is_err());
        assert!(parse("c1 = c2", &schema()).is_err());
        assert!(parse("c2 > 1.234", &schema()).is_err(), "3 decimals");
    }

    #[test]
    fn rejects_syntax_errors() {
        assert!(parse("", &schema()).is_err());
        assert!(parse("c1 >", &schema()).is_err());
        assert!(parse("c1 5", &schema()).is_err());
        assert!(parse("(c1 > 5", &schema()).is_err());
        assert!(parse("c1 > 5 garbage garbage", &schema()).is_err());
        assert!(parse("c1 ! 5", &schema()).is_err());
        assert!(parse("id = 'unterminated", &schema()).is_err());
        assert!(parse("c1 > 5 @", &schema()).is_err());
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let q = parse("c1 > 1 and not c1 > 50 or id = 'U9'", &schema()).unwrap();
        assert!(q.to_string().contains("AND"));
    }

    #[test]
    fn paper_time_parser_validates() {
        assert!(parse_paper_time("20:18:35/05/12/2002").is_some());
        assert!(parse_paper_time("24:00:00/05/12/2002").is_none());
        assert!(parse_paper_time("20:18:35/13/12/2002").is_none());
        assert!(parse_paper_time("garbage").is_none());
        assert!(parse_paper_time("20:18/05/12/2002").is_none());
    }

    #[test]
    fn parsed_query_matches_hand_built_ast() {
        use crate::query::{CmpOp, Predicate};
        use dla_logstore::model::AttrValue;
        let parsed = parse("c1 >= 20 AND id = 'U1'", &schema()).unwrap();
        let built = Criteria::pred(Predicate::with_const("c1", CmpOp::Ge, AttrValue::Int(20))).and(
            Criteria::pred(Predicate::with_const(
                "id",
                CmpOp::Eq,
                AttrValue::text("U1"),
            )),
        );
        assert_eq!(parsed, built);
    }
}
