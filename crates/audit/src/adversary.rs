//! Adversary scenarios: Byzantine and curious nodes as first-class,
//! replayable attacks against the DLA's verification machinery.
//!
//! The transport half lives in `dla_net::adversary` (the [`Adversary`]
//! policy trait, [`ScriptedAdversary`] schedules, [`scenario_rng`]);
//! this module drives whole-cluster scenarios on top of it and asserts
//! the §4.1 machinery *detects* what the threat model says it must:
//!
//! * [`AttackClass::RelayRoundLie`] — a compromised relay rewrites the
//!   circulated accumulator in flight (valid checksum, wrong value);
//!   the initiator's deposit comparison flags the record.
//! * [`AttackClass::MalformedCiphertext`] — a compromised party injects
//!   a structurally broken Pohlig–Hellman blob into an SSI relay round;
//!   the protocol fail-stops with a wire error rather than producing a
//!   wrong intersection.
//! * [`AttackClass::CheckpointEquivocation`] — a node shows one peer a
//!   forged `EpochCheckpoint` head (re-linked over the true prefix so
//!   it is internally consistent) while showing everyone else the
//!   genuine seal; peer cross-checking plus local chain endorsement
//!   catch the divergence, and the doctored meta-journal copy backing
//!   the lie fails `verify_presented`.
//! * [`AttackClass::FragmentTamper`] — a node rewrites a stored
//!   fragment before the audit; the accumulator circulation flags it.
//!
//! A fifth scenario is scheduling, not forgery: [`run_delay_attack`]
//! holds a compromised node's outbound ARQ data frames in the
//! transport for a few send rounds ([`Tamper::Delay`]) and asserts the
//! *opposite* polarity — no byte is altered, so the ARQ
//! retransmit/duplicate-suppression path must mask the reordering with
//! the honest answer and zero detector false alarms.
//!
//! Every scenario derives all of its choices (victims, targets, flip
//! masks) from [`scenario_rng`]`(cluster_seed, scenario_id)`, so a
//! report is reproducible from its two seeds alone.
//!
//! The curious half of the threat model is [`run_coalition`]: an
//! honest-but-curious coalition of up to `k − 1 = n − 1` DLA nodes
//! records every message its members see and the transcript is scanned
//! for *foreign* plaintext (attribute values owned by non-members).
//! The same run re-derives the paper's §5 confidentiality metrics
//! empirically — `u` measured from observed fragment-ship domains with
//! the coalition merged into one, `C_auditing` from re-planning the
//! audit workload against the merged partition.

use crate::cluster::{ClusterConfig, DlaCluster};
use crate::integrity;
use crate::meta::MetaAuditTrail;
use crate::metrics;
use crate::normal::normalize;
use crate::parser::parse;
use crate::plan::plan;
use crate::AuditError;
use bytes::Bytes;
use dla_crypto::accumulator::{CheckpointChain, EpochCheckpoint};
use dla_logstore::fragment::Partition;
use dla_logstore::gen::paper_table1;
use dla_logstore::model::{AttrType, AttrValue, Glsn};
use dla_logstore::schema::Schema;
use dla_mpc::set_intersection::SET_TAG;
use dla_net::adversary::{scenario_rng, Adversary, ScriptedAdversary, Tamper, TamperRule};
use dla_net::latency::LatencyModel;
use dla_net::wire::{Reader, Writer};
use dla_net::{NodeId, SessionId};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Wire tag of the accumulator-circulation hop the integrity check
/// sends (`crate::integrity::check_record`).
pub const CHECK_HOP_TAG: u8 = 0x40;
/// Wire tag of the head-gossip round ([`gossip_heads`]).
pub const HEAD_GOSSIP_TAG: u8 = 0x50;

/// The integrity attack classes of the threat model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttackClass {
    /// A relay lies during accumulator circulation.
    RelayRoundLie,
    /// A party injects a malformed ring ciphertext blob into SSI.
    MalformedCiphertext,
    /// A node presents divergent checkpoint heads to different peers.
    CheckpointEquivocation,
    /// A node rewrites a stored fragment before the audit.
    FragmentTamper,
}

impl AttackClass {
    /// Every class, in scenario-id order.
    pub const ALL: [AttackClass; 4] = [
        AttackClass::RelayRoundLie,
        AttackClass::MalformedCiphertext,
        AttackClass::CheckpointEquivocation,
        AttackClass::FragmentTamper,
    ];

    /// Stable key for reports and JSON.
    #[must_use]
    pub fn key(self) -> &'static str {
        match self {
            AttackClass::RelayRoundLie => "relay_round_lie",
            AttackClass::MalformedCiphertext => "malformed_ciphertext",
            AttackClass::CheckpointEquivocation => "checkpoint_equivocation",
            AttackClass::FragmentTamper => "fragment_tamper",
        }
    }

    /// The scenario id feeding [`scenario_rng`] — distinct per class so
    /// schedules are independent streams off the same cluster seed.
    #[must_use]
    pub fn scenario_id(self) -> u64 {
        match self {
            AttackClass::RelayRoundLie => 1,
            AttackClass::MalformedCiphertext => 2,
            AttackClass::CheckpointEquivocation => 3,
            AttackClass::FragmentTamper => 4,
        }
    }
}

/// Which verification mechanism raised the alarm.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DetectorMatrix {
    /// Accumulator machinery: circulation mismatch or digest
    /// re-derivation.
    pub accumulator: bool,
    /// Meta-journal hash chain / accumulator fold
    /// ([`MetaAuditTrail::verify_presented`]).
    pub meta_journal: bool,
    /// Checkpoint-chain cross-check: peer head divergence or failed
    /// local endorsement.
    pub checkpoint_chain: bool,
    /// Protocol-level fail-stop (wire/structure errors in MPC rounds).
    pub protocol: bool,
}

impl DetectorMatrix {
    /// Whether any detector fired.
    #[must_use]
    pub fn any(self) -> bool {
        self.accumulator || self.meta_journal || self.checkpoint_chain || self.protocol
    }
}

/// The outcome of one scenario (attack or honest baseline).
#[derive(Clone, Debug)]
pub struct ScenarioReport {
    /// Scenario key ("honest" for the baseline).
    pub scenario: &'static str,
    /// Cluster seed the scenario ran under.
    pub seed: u64,
    /// Which detectors fired.
    pub detected: DetectorMatrix,
    /// Verification operations executed up to (and including) the one
    /// that raised the first alarm — for honest runs, all of them.
    pub verifications: u64,
    /// Network messages spent by verification until detection.
    pub messages_to_detect: u64,
    /// Virtual nanoseconds of verification traffic until detection.
    pub virtual_ns_to_detect: u64,
    /// Wire messages the adversary actually forged or swallowed.
    pub forged_messages: usize,
    /// Whether the system state verified clean once the adversary was
    /// removed — true for wire-level lies (transient), false for
    /// persistent state tampering.
    pub residual_clean: bool,
}

fn scenario_cluster(
    seed: u64,
) -> Result<(DlaCluster, crate::cluster::AppUser, Vec<Glsn>), AuditError> {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let mut cluster = DlaCluster::new(
        ClusterConfig::new(4, schema)
            .with_partition(partition)
            .with_seed(seed)
            // Short epochs so the checkpoint chain has sealed heads to
            // equivocate about; LAN latency so detection cost has a
            // virtual-time dimension.
            .with_epoch_length(2)
            .with_latency(LatencyModel::lan()),
    )?;
    let user = cluster.register_user("adversary-scenario")?;
    let glsns = cluster.log_records(&user, &paper_table1())?;
    Ok((cluster, user, glsns))
}

/// `(messages_sent, root-session virtual ns)` snapshot for latency
/// accounting.
fn net_snapshot(cluster: &DlaCluster) -> (u64, u64) {
    let net = cluster.net();
    (
        net.stats().messages_sent,
        net.session_elapsed(SessionId::ROOT).as_nanos(),
    )
}

/// Runs the detectors an attack does *not* target, after the adversary
/// is cleared — a true report must show exactly the expected detectors
/// firing, so the others are checked for false alarms too.
fn residual_detectors(cluster: &mut DlaCluster) -> DetectorMatrix {
    let trail = integrity::check_trail(cluster);
    DetectorMatrix {
        accumulator: !trail.ok,
        meta_journal: cluster.meta_audit().verify().is_err(),
        checkpoint_chain: !trail.chain_ok || !cluster.checkpoint_chain().verify_links(),
        protocol: false,
    }
}

/// One full head-gossip round over the cluster's root session: every
/// DLA node sends every peer its copy of `epoch`'s checkpoint (tag
/// [`HEAD_GOSSIP_TAG`]); returns each receiver's decoded view keyed by
/// `(receiver, sender)`.
///
/// # Errors
///
/// Returns [`AuditError`] if the epoch is unsealed, the network fails,
/// or a gossiped blob does not decode.
pub fn gossip_heads(
    cluster: &mut DlaCluster,
    epoch: u64,
) -> Result<BTreeMap<(usize, usize), EpochCheckpoint>, AuditError> {
    let n = cluster.num_nodes();
    let checkpoint = cluster
        .checkpoint_chain()
        .get(epoch)
        .cloned()
        .ok_or_else(|| AuditError::Integrity(format!("epoch {epoch} is not sealed")))?;
    let frame = head_frame(&checkpoint);
    let mut views = BTreeMap::new();
    for sender in 0..n {
        for receiver in 0..n {
            if receiver == sender {
                continue;
            }
            cluster
                .net_mut()
                .send(NodeId(sender), NodeId(receiver), frame.clone());
            let envelope = cluster
                .net_mut()
                .recv_from(NodeId(receiver), NodeId(sender))
                .map_err(AuditError::Net)?;
            let mut r = Reader::new(&envelope.payload);
            let tag = r
                .get_u8()
                .map_err(|e| AuditError::Integrity(e.to_string()))?;
            if tag != HEAD_GOSSIP_TAG {
                return Err(AuditError::Integrity(format!(
                    "unexpected head-gossip tag {tag:#04x}"
                )));
            }
            let blob = r
                .get_bytes()
                .map_err(|e| AuditError::Integrity(e.to_string()))?;
            let presented = EpochCheckpoint::decode(blob)
                .ok_or_else(|| AuditError::Integrity("malformed gossiped checkpoint".into()))?;
            views.insert((receiver, sender), presented);
        }
    }
    Ok(views)
}

/// Encodes one checkpoint as a head-gossip payload.
fn head_frame(checkpoint: &EpochCheckpoint) -> Bytes {
    let mut w = Writer::new();
    w.put_u8(HEAD_GOSSIP_TAG).put_bytes(&checkpoint.encode());
    w.finish()
}

/// Runs one seeded attack scenario and reports what detected it.
///
/// # Errors
///
/// Returns [`AuditError`] if the scenario cluster cannot be built or an
/// untargeted protocol step fails unexpectedly.
///
/// # Panics
///
/// Panics if the paper cluster seals no epoch (cannot happen with the
/// fixed epoch length used here).
pub fn run_attack(class: AttackClass, seed: u64) -> Result<ScenarioReport, AuditError> {
    let (mut cluster, user, glsns) = scenario_cluster(seed)?;
    let mut rng = scenario_rng(seed, class.scenario_id());

    match class {
        AttackClass::RelayRoundLie => {
            let glsn = glsns[rng.gen_range(0..glsns.len())];
            // Holders 1 and 2 forward 0x40 hops when node 0 initiates.
            let victim = rng.gen_range(1..=2usize);
            let mask = rng.gen_range(1..=255u8) as u8;
            let adversary = Arc::new(ScriptedAdversary::new().compromise(victim).rule(
                TamperRule::once_from(
                    victim,
                    CHECK_HOP_TAG,
                    Tamper::Flip {
                        offset_from_end: 0,
                        mask,
                    },
                ),
            ));
            cluster.set_adversary(Arc::clone(&adversary) as Arc<dyn Adversary>);
            let (messages0, ns0) = net_snapshot(&cluster);
            let verdict = integrity::check_record(&mut cluster, glsn, 0)?;
            let (messages1, ns1) = net_snapshot(&cluster);
            cluster.clear_adversary();

            let mut detected = residual_detectors(&mut cluster);
            detected.accumulator |= !verdict.ok;
            // The lie was in flight, not in state: the same record
            // verifies once the relay stops lying.
            let residual_clean = integrity::check_record(&mut cluster, glsn, 0)?.ok;
            Ok(ScenarioReport {
                scenario: class.key(),
                seed,
                detected,
                verifications: 1,
                messages_to_detect: messages1 - messages0,
                virtual_ns_to_detect: ns1 - ns0,
                forged_messages: adversary.report().forged + adversary.report().dropped,
                residual_clean,
            })
        }
        AttackClass::MalformedCiphertext => {
            let victim = rng.gen_range(0..cluster.num_nodes());
            // Keep the tag but behead the origin/elements structure:
            // the receiver's decode fail-stops.
            let keep = rng.gen_range(1..9usize);
            let adversary = Arc::new(ScriptedAdversary::new().compromise(victim).rule(
                TamperRule::once_from(victim, SET_TAG, Tamper::Truncate(keep)),
            ));
            cluster.set_adversary(Arc::clone(&adversary) as Arc<dyn Adversary>);
            let (messages0, ns0) = net_snapshot(&cluster);
            let outcome = integrity::check_acl_consistency(&mut cluster, &user.ticket.id);
            let (messages1, ns1) = net_snapshot(&cluster);
            cluster.clear_adversary();

            let mut detected = residual_detectors(&mut cluster);
            detected.protocol = matches!(outcome, Err(AuditError::Mpc(_)));
            // Fail-stop, not fail-wrong: with the adversary gone the
            // same consistency check completes and agrees.
            let residual_clean =
                integrity::check_acl_consistency(&mut cluster, &user.ticket.id)?.consistent;
            Ok(ScenarioReport {
                scenario: class.key(),
                seed,
                detected,
                verifications: 1,
                messages_to_detect: messages1 - messages0,
                virtual_ns_to_detect: ns1 - ns0,
                forged_messages: adversary.report().forged + adversary.report().dropped,
                residual_clean,
            })
        }
        AttackClass::CheckpointEquivocation => {
            let chain = cluster.checkpoint_chain().clone();
            assert!(!chain.is_empty(), "scenario cluster seals epochs");
            let sealed: Vec<u64> = chain.iter().map(|c| c.epoch).collect();
            let epoch = sealed[rng.gen_range(0..sealed.len())];
            let equivocator = rng.gen_range(0..cluster.num_nodes());
            let witness =
                (equivocator + 1 + rng.gen_range(0..cluster.num_nodes() - 1)) % cluster.num_nodes();
            let genuine = chain.get(epoch).expect("sealed").clone();

            // Forge a head that is *internally* consistent: a fresh
            // digest re-linked over the true predecessor, so only
            // cross-checking against peers or the local chain can
            // expose it.
            let prev_link = chain
                .iter()
                .take_while(|c| c.epoch < epoch)
                .last()
                .map_or([0u8; 32], |c| c.link);
            let digest = cluster
                .accumulator_params()
                .accumulate([b"equivocated-head".as_slice()]);
            let link = CheckpointChain::link_over(
                &prev_link,
                epoch,
                genuine.items,
                &digest,
                &genuine.aggregates,
            );
            let forged = EpochCheckpoint {
                epoch,
                items: genuine.items,
                digest,
                aggregates: genuine.aggregates,
                link,
            };
            let adversary = Arc::new(ScriptedAdversary::new().compromise(equivocator).rule(
                TamperRule {
                    from: Some(equivocator),
                    to: Some(witness),
                    tag: Some(HEAD_GOSSIP_TAG),
                    skip: 0,
                    fires: 1,
                    action: Tamper::Replace(head_frame(&forged)),
                },
            ));
            cluster.set_adversary(Arc::clone(&adversary) as Arc<dyn Adversary>);
            let (messages0, ns0) = net_snapshot(&cluster);
            let views = gossip_heads(&mut cluster, epoch)?;
            let (messages1, ns1) = net_snapshot(&cluster);
            cluster.clear_adversary();

            // Peer cross-check: do any two receivers hold diverging
            // copies from the same sender?
            let n = cluster.num_nodes();
            let mut divergence = false;
            for sender in 0..n {
                let copies: Vec<&EpochCheckpoint> = (0..n)
                    .filter(|&r| r != sender)
                    .filter_map(|r| views.get(&(r, sender)))
                    .collect();
                if copies
                    .iter()
                    .any(|a| copies.iter().any(|b| a.equivocates(b)))
                {
                    divergence = true;
                }
            }
            // Local endorsement: every receiver checks the presented
            // head against its own chain; re-derivation: the presented
            // digest against the locally re-derived epoch accumulator.
            let endorsement_failed = views
                .values()
                .any(|presented| !cluster.checkpoint_chain().endorses(presented));
            let digest_mismatch = views.values().any(|presented| {
                cluster
                    .checkpoint_chain()
                    .get(presented.epoch)
                    .is_some_and(|own| own.digest != presented.digest)
            });

            // The equivocator also backs its lie with a doctored copy
            // of the meta journal; the commitment pair refuses it.
            let mut doctored = cluster.meta_audit().records().to_vec();
            let slot = rng.gen_range(0..doctored.len());
            doctored[slot].detail = format!("rewritten-by-{equivocator}");
            let meta_journal = MetaAuditTrail::verify_presented(
                &doctored,
                cluster.meta_audit().head(),
                cluster.meta_audit().accumulator(),
                cluster.accumulator_params(),
            )
            .is_err();

            let mut detected = residual_detectors(&mut cluster);
            detected.checkpoint_chain |= divergence || endorsement_failed;
            detected.accumulator |= digest_mismatch;
            detected.meta_journal |= meta_journal;
            // The genuine chain was never altered — once the liar is
            // ignored, everything verifies.
            let residual_clean = cluster.checkpoint_chain().verify_links()
                && !residual_detectors(&mut cluster).any();
            Ok(ScenarioReport {
                scenario: class.key(),
                seed,
                detected,
                verifications: 1,
                messages_to_detect: messages1 - messages0,
                virtual_ns_to_detect: ns1 - ns0,
                forged_messages: adversary.report().forged + adversary.report().dropped,
                residual_clean,
            })
        }
        AttackClass::FragmentTamper => {
            let victim = rng.gen_range(0..cluster.num_nodes());
            let attrs = cluster.partition().attrs_of(victim).to_vec();
            let attr = attrs[rng.gen_range(0..attrs.len())].clone();
            let glsn = glsns[rng.gen_range(0..glsns.len())];
            let forged = match cluster
                .schema()
                .get(&attr)
                .expect("partition attrs are in schema")
                .attr_type()
            {
                AttrType::Int => AttrValue::Int(-9),
                AttrType::Fixed2 => AttrValue::Fixed2(-9),
                AttrType::Time => AttrValue::Time(1),
                AttrType::Text => AttrValue::text("rewritten"),
            };
            assert!(
                cluster
                    .node_mut(victim)
                    .store_mut()
                    .tamper(glsn, &attr, forged),
                "victim stores the targeted fragment"
            );

            // Sweep the trail in deposit order; latency = work until
            // the tampered record is reached.
            let (messages0, ns0) = net_snapshot(&cluster);
            let mut verifications = 0u64;
            let mut accumulator = false;
            for g in cluster.logged_glsns() {
                verifications += 1;
                if !integrity::check_record(&mut cluster, g, 0)?.ok {
                    accumulator = true;
                    break;
                }
            }
            let (messages1, ns1) = net_snapshot(&cluster);

            let mut detected = residual_detectors(&mut cluster);
            detected.accumulator |= accumulator;
            // State tampering persists: the record stays flagged until
            // repaired.
            let residual_clean = integrity::check_record(&mut cluster, glsn, 0)?.ok;
            Ok(ScenarioReport {
                scenario: class.key(),
                seed,
                detected,
                verifications,
                messages_to_detect: messages1 - messages0,
                virtual_ns_to_detect: ns1 - ns0,
                forged_messages: 0,
                residual_clean,
            })
        }
    }
}

/// The honest negative control: every detector the attack scenarios use
/// runs against an untouched cluster; any flag in the returned matrix
/// is a false alarm.
///
/// # Errors
///
/// Returns [`AuditError`] on protocol failure (which would itself be a
/// false alarm — the caller should treat `Err` as such).
pub fn run_honest(seed: u64) -> Result<ScenarioReport, AuditError> {
    let (mut cluster, user, glsns) = scenario_cluster(seed)?;
    let (messages0, ns0) = net_snapshot(&cluster);
    let mut verifications = 0u64;

    let mut accumulator = false;
    for &glsn in &glsns {
        verifications += 1;
        accumulator |= !integrity::check_record(&mut cluster, glsn, 0)?.ok;
    }
    let trail = integrity::check_trail(&cluster);
    verifications += 1;
    accumulator |= !trail.ok;

    let meta_journal = cluster.meta_audit().verify().is_err();
    verifications += 1;

    let mut checkpoint_chain = !trail.chain_ok || !cluster.checkpoint_chain().verify_links();
    let sealed: Vec<u64> = cluster.checkpoint_chain().iter().map(|c| c.epoch).collect();
    for epoch in sealed {
        verifications += 1;
        let views = gossip_heads(&mut cluster, epoch)?;
        checkpoint_chain |= views
            .values()
            .any(|presented| !cluster.checkpoint_chain().endorses(presented));
    }

    verifications += 1;
    let protocol = !integrity::check_acl_consistency(&mut cluster, &user.ticket.id)?.consistent;
    let (messages1, ns1) = net_snapshot(&cluster);

    Ok(ScenarioReport {
        scenario: "honest",
        seed,
        detected: DetectorMatrix {
            accumulator,
            meta_journal,
            checkpoint_chain,
            protocol,
        },
        verifications,
        messages_to_detect: messages1 - messages0,
        virtual_ns_to_detect: ns1 - ns0,
        forged_messages: 0,
        residual_clean: true,
    })
}

/// Wire tag of the ARQ data frame (`dla_net::reliable` framing) — the
/// target of the scheduling adversary in [`run_delay_attack`].
pub const ARQ_DATA_TAG: u8 = 0x01;

/// Outcome of the delay/reorder scheduling attack against the ARQ
/// layer ([`run_delay_attack`]).
#[derive(Clone, Debug)]
pub struct DelayReport {
    /// Cluster seed the scenario ran under.
    pub seed: u64,
    /// DLA node whose outbound data frames were delayed.
    pub victim: usize,
    /// Frames the adversary actually held back and released late.
    pub delayed_frames: usize,
    /// Whole-query attempts the resilient executor needed.
    pub attempts: u32,
    /// Whether the delayed run produced the same answer (glsn set and
    /// cardinality) as the honest baseline.
    pub answer_matches_honest: bool,
    /// Detectors that fired after the adversary was cleared — a
    /// scheduling attack forges nothing, so every flag here is a false
    /// alarm.
    pub detected: DetectorMatrix,
}

/// The scheduling attack: a compromised node's outbound ARQ data
/// frames are held in the transport for a few send rounds and released
/// late, so the receiver sees them out of order (or, while held, not at
/// all). Unlike the forgery classes, the correct outcome is *silence*:
/// no byte is altered, so the retransmit/duplicate-suppression path
/// must mask the reordering — the query answer matches the honest
/// baseline and no detector raises an alarm.
///
/// # Errors
///
/// Returns [`AuditError`] if the scenario cluster cannot be built or
/// the resilient query exhausts its attempts (which would mean the ARQ
/// layer failed to mask the delay).
pub fn run_delay_attack(seed: u64) -> Result<DelayReport, AuditError> {
    let mut rng = scenario_rng(seed, 5);
    let query = WORKLOAD[0];

    // Honest baseline: same seed, same resilient path, no adversary.
    let (mut baseline, _user, _glsns) = scenario_cluster(seed)?;
    let policy = baseline.resilient_policy();
    let honest = baseline.query_resilient(query, &policy)?;

    let (mut cluster, _user, _glsns) = scenario_cluster(seed)?;
    // The victim must actually send data frames for this query: pick
    // among the owners of the query's attributes, not all DLA nodes.
    let owners: Vec<usize> = ["c1", "id", "protocol"]
        .iter()
        .filter_map(|name| cluster.partition().node_of(&(*name).into()))
        .collect::<BTreeSet<_>>()
        .into_iter()
        .collect();
    let victim = owners[rng.gen_range(0..owners.len())];
    let rounds = rng.gen_range(1..=3u64);
    let fires = rng.gen_range(2..=4u64);
    let adversary = Arc::new(
        ScriptedAdversary::new()
            .compromise(victim)
            .rule(TamperRule {
                from: Some(victim),
                to: None,
                tag: Some(ARQ_DATA_TAG),
                skip: 0,
                fires,
                action: Tamper::Delay(rounds),
            }),
    );
    cluster.set_adversary(Arc::clone(&adversary) as Arc<dyn Adversary>);
    let policy = cluster.resilient_policy();
    let outcome = cluster.query_resilient(query, &policy)?;
    cluster.clear_adversary();

    let detected = residual_detectors(&mut cluster);
    let answer_matches_honest = outcome.result.glsns == honest.result.glsns
        && outcome.result.cardinality == honest.result.cardinality;
    Ok(DelayReport {
        seed,
        victim,
        delayed_frames: adversary.report().delayed,
        attempts: outcome.attempts,
        answer_matches_honest,
        detected,
    })
}

/// The §5 view of a colluding coalition: the merged partition in which
/// the coalition's attribute sets pool at its lowest-index member (the
/// other members keep empty slots so node indices stay aligned).
/// Singleton and empty coalitions collapse to the original partition.
///
/// # Errors
///
/// Returns [`AuditError::Log`] if a coalition index is out of range.
pub fn coalition_partition(
    schema: &Schema,
    partition: &Partition,
    coalition: &BTreeSet<usize>,
) -> Result<Partition, AuditError> {
    if let Some(&bad) = coalition.iter().find(|&&i| i >= partition.num_nodes()) {
        return Err(AuditError::Log(format!(
            "coalition member {bad} out of range (n = {})",
            partition.num_nodes()
        )));
    }
    if coalition.len() <= 1 {
        return Ok(partition.clone());
    }
    let lead = *coalition.iter().min().expect("nonempty");
    let assignments = (0..partition.num_nodes())
        .map(|i| {
            if i == lead {
                coalition
                    .iter()
                    .flat_map(|&m| partition.attrs_of(m).to_vec())
                    .collect()
            } else if coalition.contains(&i) {
                Vec::new()
            } else {
                partition.attrs_of(i).to_vec()
            }
        })
        .collect();
    Partition::new(schema, assignments).map_err(|e| AuditError::Log(e.to_string()))
}

/// What a curious coalition learned (and provably did not learn) from a
/// full deposit + audit workload, alongside the §5 metrics measured
/// under that collusion pattern.
#[derive(Clone, Debug)]
pub struct CoalitionReport {
    /// The coalition's DLA node indices.
    pub coalition: Vec<usize>,
    /// Wire messages visible to coalition members (sent or received).
    pub captured_messages: usize,
    /// Foreign plaintext needles scanned for.
    pub needles_scanned: usize,
    /// Captured messages containing a foreign attribute value in the
    /// clear — the confidentiality claim is that this is zero for every
    /// sub-threshold coalition.
    pub foreign_plaintext_hits: usize,
    /// Distinct storage domains observed in fragment-ship traffic with
    /// the coalition counted as one (the empirical `u` of Eq. 10).
    pub observed_domains: usize,
    /// Empirical `C_store` (Eq. 10 with the measured `u`).
    pub c_store: f64,
    /// `C_store` from the formula over the merged partition — must
    /// match [`CoalitionReport::c_store`].
    pub c_store_formula: f64,
    /// `C_auditing` of the paper's Fig. 3 query re-planned against the
    /// merged partition (Eq. 11).
    pub c_auditing: f64,
    /// `C_query` of the Fig. 3 query (Eq. 12).
    pub c_query: f64,
    /// `C_DLA` over the two-query audit workload (Eq. 13).
    pub c_dla: f64,
}

/// The audit workload the coalition watches: the paper's Fig. 3
/// conjunctive query and the worked cross-subquery example of §5.
pub const WORKLOAD: [&str; 2] = [
    "c1 > 30 AND id = 'U1' AND protocol = 'TCP'",
    "c1 > 40 OR id = 'U2'",
];

/// Runs a deposit + audit workload with `coalition` members curious
/// (transcript-capturing) and measures both what they saw and the §5
/// metrics under their collusion.
///
/// # Errors
///
/// Returns [`AuditError`] if the cluster, workload, or re-planning
/// fails, or a coalition index is out of range.
pub fn run_coalition(seed: u64, coalition: &[usize]) -> Result<CoalitionReport, AuditError> {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let members: BTreeSet<usize> = coalition.iter().copied().collect();
    if members.len() >= partition.num_nodes() {
        return Err(AuditError::Config(format!(
            "coalition of {} is not sub-threshold for n = {}",
            members.len(),
            partition.num_nodes()
        )));
    }
    let merged = coalition_partition(&schema, &partition, &members)?;

    let mut cluster = DlaCluster::new(
        ClusterConfig::new(4, schema.clone())
            .with_partition(partition.clone())
            .with_seed(seed)
            .with_epoch_length(2)
            .with_payload_capture(),
    )?;
    let mut adversary = ScriptedAdversary::new();
    for &member in &members {
        adversary = adversary.curious(member);
    }
    let adversary = Arc::new(adversary);
    cluster.set_adversary(Arc::clone(&adversary) as Arc<dyn Adversary>);

    let user = cluster.register_user("auditee")?;
    let records = paper_table1();
    let glsns = cluster.log_records(&user, &records)?;
    for query in WORKLOAD {
        cluster.query(query)?;
    }
    // An integrity circulation initiated *by* a coalition member: even
    // driving the check, it sees only blinded accumulator values.
    integrity::check_record(
        &mut cluster,
        glsns[0],
        coalition.first().copied().unwrap_or(0),
    )?;
    cluster.clear_adversary();

    // Leak scan: every attribute value owned by a non-member, in its
    // canonical encoding, against every byte the coalition saw.
    let needles: Vec<Vec<u8>> = records
        .iter()
        .flat_map(|record| record.iter())
        .filter(|(name, _)| {
            partition
                .node_of(name)
                .is_some_and(|owner| !members.contains(&owner))
        })
        .map(|(_, value)| value.to_canonical_bytes())
        .filter(|needle| needle.len() >= 4)
        .collect();
    let captured = adversary.captured();
    let foreign_plaintext_hits = captured
        .iter()
        .filter(|message| {
            needles
                .iter()
                .any(|needle| contains_subslice(&message.payload, needle))
        })
        .count();

    // Empirical `u`: distinct destination domains in observed
    // fragment-ship traffic (tag 0x20), coalition merged into one.
    let n = cluster.num_nodes();
    let mut domains: BTreeSet<usize> = BTreeSet::new();
    {
        let net = cluster.net();
        for (_, to, payload) in net.captured_payloads() {
            if payload.first() == Some(&0x20) && to.0 < n {
                let domain = if members.contains(&to.0) {
                    *members.iter().min().expect("nonempty coalition")
                } else {
                    to.0
                };
                domains.insert(domain);
            }
        }
    }
    let observed_domains = domains.len().max(usize::from(!glsns.is_empty()));

    // §5 metrics under the collusion pattern. Records of Table 1 share
    // one shape, so per-record store confidentiality is uniform.
    let sample = &records[0];
    let w = sample.len() as f64;
    let v = sample
        .iter()
        .filter(|(name, _)| schema.get(name).is_some_and(|d| d.is_undefined()))
        .count() as f64;
    let c_store = v * observed_domains as f64 / w;
    let c_store_formula = metrics::store_confidentiality(sample, &schema, &merged);

    let replan = |src: &str| -> Result<f64, AuditError> {
        let parsed = parse(src, &schema).map_err(|e| AuditError::Parse(e.to_string()))?;
        let planned =
            plan(&normalize(&parsed), &merged).map_err(|e| AuditError::Planning(e.to_string()))?;
        Ok(metrics::auditing_confidentiality(&planned))
    };
    let c_auditing = replan(WORKLOAD[0])?;
    let c_query = c_auditing * c_store;
    let mut c_dla = 0.0;
    for query in WORKLOAD {
        c_dla += replan(query)? * c_store;
    }
    c_dla /= WORKLOAD.len() as f64;

    Ok(CoalitionReport {
        coalition: members.iter().copied().collect(),
        captured_messages: captured.len(),
        needles_scanned: needles.len(),
        foreign_plaintext_hits,
        observed_domains,
        c_store,
        c_store_formula,
        c_auditing,
        c_query,
        c_dla,
    })
}

fn contains_subslice(haystack: &[u8], needle: &[u8]) -> bool {
    !needle.is_empty() && haystack.windows(needle.len()).any(|w| w == needle)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coalition_partition_merges_into_lead_slot() {
        let schema = Schema::paper_example();
        let partition = Partition::paper_example(&schema);
        let merged =
            coalition_partition(&schema, &partition, &[1, 3].into_iter().collect()).unwrap();
        assert_eq!(merged.num_nodes(), 4);
        assert_eq!(merged.node_of(&"id".into()), Some(1));
        assert_eq!(merged.node_of(&"c1".into()), Some(1));
        assert_eq!(merged.node_of(&"protocol".into()), Some(1));
        assert!(merged.attrs_of(3).is_empty());
        assert_eq!(merged.node_of(&"time".into()), Some(0));

        // Degenerate coalitions change nothing.
        let same = coalition_partition(&schema, &partition, &[2].into_iter().collect()).unwrap();
        assert_eq!(same, partition);
        assert!(coalition_partition(&schema, &partition, &[9].into_iter().collect()).is_err());
    }

    #[test]
    fn scenario_choices_replay_from_the_two_seeds() {
        let a = run_attack(AttackClass::RelayRoundLie, 77).unwrap();
        let b = run_attack(AttackClass::RelayRoundLie, 77).unwrap();
        assert_eq!(a.detected, b.detected);
        assert_eq!(a.messages_to_detect, b.messages_to_detect);
        assert_eq!(a.virtual_ns_to_detect, b.virtual_ns_to_detect);
        assert_eq!(a.forged_messages, b.forged_messages);
    }

    #[test]
    fn delay_attack_is_masked_by_the_arq_layer() {
        let report = run_delay_attack(101).unwrap();
        assert!(report.delayed_frames > 0, "the scheduler never fired");
        assert!(
            report.answer_matches_honest,
            "reordering changed the answer"
        );
        assert!(
            !report.detected.any(),
            "scheduling alone must not raise alarms: {:?}",
            report.detected
        );
    }

    #[test]
    fn delay_attack_replays_from_its_seed() {
        let a = run_delay_attack(7).unwrap();
        let b = run_delay_attack(7).unwrap();
        assert_eq!(a.victim, b.victim);
        assert_eq!(a.delayed_frames, b.delayed_frames);
        assert_eq!(a.attempts, b.attempts);
        assert_eq!(a.detected, b.detected);
    }

    #[test]
    fn subslice_scan_is_exact() {
        assert!(contains_subslice(b"abcdef", b"cde"));
        assert!(!contains_subslice(b"abcdef", b"cdf"));
        assert!(!contains_subslice(b"abc", b""));
    }
}
