//! Query planning (paper §2, Figure 3): classify each normalized
//! subquery as **local** (all attributes served by one DLA node) or
//! **cross** (attributes spanning nodes, requiring relaxed secure
//! computation among them), and lay out the per-clause execution steps
//! the distributed executor will run.

use crate::normal::{Clause, NormalizedQuery};
use crate::query::{CmpOp, Operand, Predicate};
use crate::AuditError;
use dla_logstore::fragment::Partition;
use dla_logstore::model::{AttrName, AttrValue};
use std::collections::BTreeSet;
use std::fmt;

/// Where a subquery executes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SubqueryKind {
    /// Every attribute lives on one node; evaluated entirely locally
    /// ("local auditing predicate").
    Local {
        /// The owning DLA node.
        node: usize,
    },
    /// Attributes span nodes; evaluated collaboratively ("global
    /// auditing predicate", Fig. 3's `SQ_ijk`).
    Cross {
        /// The DLA nodes that must collaborate.
        nodes: BTreeSet<usize>,
    },
}

/// How one literal of a clause is computed.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LiteralStep {
    /// `A θ c` scanned on the node owning `A`.
    LocalScan {
        /// Owning node.
        node: usize,
        /// Index into the clause's literal list.
        literal: usize,
    },
    /// `A = B` / `A ≠ B` with owners differing: commutative-encryption
    /// equality join on (glsn ‖ value) fingerprints between the two
    /// owners.
    CrossEqualityJoin {
        /// Node owning `A`.
        left_node: usize,
        /// Node owning `B`.
        right_node: usize,
        /// Index into the clause's literal list.
        literal: usize,
        /// True for `≠` (complement of the join).
        negated: bool,
    },
    /// `A θ B` (ordering) with owners differing: order-preserving
    /// masking + blind-TTP comparison per glsn (§3.3 machinery).
    CrossMaskedCompare {
        /// Node owning `A`.
        left_node: usize,
        /// Node owning `B`.
        right_node: usize,
        /// Index into the clause's literal list.
        literal: usize,
    },
}

/// One planned subquery.
#[derive(Clone, PartialEq, Debug)]
pub struct Subquery {
    /// The normalized clause.
    pub clause: Clause,
    /// Local or cross.
    pub kind: SubqueryKind,
    /// Execution steps, one per literal.
    pub steps: Vec<LiteralStep>,
}

impl fmt::Display for Subquery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            SubqueryKind::Local { node } => write!(f, "{} @ P{node} [local]", self.clause),
            SubqueryKind::Cross { nodes } => {
                let list: Vec<String> = nodes.iter().map(|n| format!("P{n}")).collect();
                write!(f, "{} @ {{{}}} [cross]", self.clause, list.join(","))
            }
        }
    }
}

/// The `time` bounds a query provably confines its answers to, in the
/// paper's Table 1 time encoding. `None` on a side means unbounded.
///
/// Extracted from the CNF conservatively: a clause (conjunct)
/// contributes a bound only when **every** literal of its disjunction
/// constrains `time` against a constant — any record satisfying the
/// query then satisfies that clause, hence lies inside the bound. The
/// query window is the intersection across contributing clauses, so
/// pruning any scan to it can never drop an answer. Executors use it to
/// restrict subquery scans to the epochs the window overlaps.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct TimeWindow {
    /// Inclusive lower bound.
    pub lo: Option<u64>,
    /// Inclusive upper bound.
    pub hi: Option<u64>,
}

impl TimeWindow {
    /// The window constraining nothing.
    #[must_use]
    pub fn unbounded() -> Self {
        TimeWindow::default()
    }

    /// Whether the window constrains nothing (no pruning possible).
    #[must_use]
    pub fn is_unbounded(&self) -> bool {
        self.lo.is_none() && self.hi.is_none()
    }

    /// Whether no time value satisfies the window.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        matches!((self.lo, self.hi), (Some(lo), Some(hi)) if lo > hi)
    }

    /// Whether the inclusive range `[lo, hi]` intersects the window.
    #[must_use]
    pub fn intersects(&self, lo: u64, hi: u64) -> bool {
        self.lo.is_none_or(|w| hi >= w) && self.hi.is_none_or(|w| lo <= w)
    }
}

impl fmt::Display for TimeWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.lo, self.hi) {
            (None, None) => write!(f, "time ∈ (-inf, +inf)"),
            (Some(lo), None) => write!(f, "time ∈ [{lo}, +inf)"),
            (None, Some(hi)) => write!(f, "time ∈ (-inf, {hi}]"),
            (Some(lo), Some(hi)) => write!(f, "time ∈ [{lo}, {hi}]"),
        }
    }
}

/// The window one literal confines `time` to, if it is a
/// `time θ const` predicate. Bounds are inclusive and *exact* over the
/// integer time domain: a strict inequality tightens by one instead of
/// keeping the boundary point, so two adjoining windows (`time < t`,
/// `time ≥ t`) partition a deposit stamped exactly `t` instead of both
/// or neither claiming it — and so downstream epoch-coverage decisions
/// (cached-partial vs rescan) agree with the literal's own semantics at
/// the boundary.
fn literal_time_window(literal: &Predicate) -> Option<TimeWindow> {
    if literal.lhs != AttrName::new("time") {
        return None;
    }
    let Operand::Const(AttrValue::Time(t)) = &literal.rhs else {
        return None;
    };
    // `time < 0` / `time > u64::MAX` admit nothing: the inverted
    // (lo > hi) sentinel marks the provably-empty window.
    let (lo, hi) = match literal.op {
        CmpOp::Le => (None, Some(*t)),
        CmpOp::Lt => match t.checked_sub(1) {
            Some(hi) => (None, Some(hi)),
            None => (Some(1), Some(0)),
        },
        CmpOp::Ge => (Some(*t), None),
        CmpOp::Gt => match t.checked_add(1) {
            Some(lo) => (Some(lo), None),
            None => (Some(1), Some(0)),
        },
        CmpOp::Eq => (Some(*t), Some(*t)),
        CmpOp::Ne => (None, None),
    };
    Some(TimeWindow { lo, hi })
}

/// Extracts the provable [`TimeWindow`] of a normalized query.
#[must_use]
pub fn extract_time_window(normalized: &NormalizedQuery) -> TimeWindow {
    let mut window = TimeWindow::unbounded();
    for clause in normalized.clauses() {
        // Union across the clause's disjunction: every literal must
        // bound time, else the clause bounds nothing.
        let mut clause_window: Option<TimeWindow> = None;
        let mut all_bound = true;
        for literal in clause.literals() {
            let Some(w) = literal_time_window(literal) else {
                all_bound = false;
                break;
            };
            clause_window = Some(match clause_window {
                None => w,
                Some(acc) => TimeWindow {
                    lo: acc.lo.zip(w.lo).map(|(a, b)| a.min(b)),
                    hi: acc.hi.zip(w.hi).map(|(a, b)| a.max(b)),
                },
            });
        }
        if !all_bound {
            continue;
        }
        if let Some(w) = clause_window {
            // Intersection across conjuncts.
            window.lo = match (window.lo, w.lo) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
            window.hi = match (window.hi, w.hi) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
    }
    window
}

/// A full query plan plus the §5 metric inputs.
#[derive(Clone, PartialEq, Debug)]
pub struct QueryPlan {
    /// Planned subqueries, one per normalized clause.
    pub subqueries: Vec<Subquery>,
    /// `s`: total atomic predicates in `Q_N`.
    pub atom_count: usize,
    /// `t`: atomic predicates belonging to cross subqueries.
    pub cross_atom_count: usize,
    /// `q`: conjunctive connectives in `Q_N` (subquery count − 1).
    pub conjunct_count: usize,
    /// The provable `time` bounds of the answers — the epoch-pruning
    /// input ([`extract_time_window`]).
    pub time_window: TimeWindow,
}

impl QueryPlan {
    /// Number of local subqueries.
    #[must_use]
    pub fn local_count(&self) -> usize {
        self.subqueries
            .iter()
            .filter(|s| matches!(s.kind, SubqueryKind::Local { .. }))
            .count()
    }

    /// Number of cross subqueries.
    #[must_use]
    pub fn cross_count(&self) -> usize {
        self.subqueries.len() - self.local_count()
    }
}

impl fmt::Display for QueryPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, sq) in self.subqueries.iter().enumerate() {
            writeln!(f, "SQ{i}: {sq}")?;
        }
        write!(
            f,
            "s={} t={} q={}",
            self.atom_count, self.cross_atom_count, self.conjunct_count
        )
    }
}

fn owner(partition: &Partition, attr: &dla_logstore::model::AttrName) -> Result<usize, AuditError> {
    partition.node_of(attr).ok_or_else(|| {
        AuditError::Planning(format!("attribute {attr} is not served by any DLA node"))
    })
}

fn plan_literal(
    partition: &Partition,
    literal: &Predicate,
    index: usize,
) -> Result<LiteralStep, AuditError> {
    let left_node = owner(partition, &literal.lhs)?;
    match &literal.rhs {
        Operand::Const(_) => Ok(LiteralStep::LocalScan {
            node: left_node,
            literal: index,
        }),
        Operand::Attr(b) => {
            let right_node = owner(partition, b)?;
            if right_node == left_node {
                // Both attributes on one node: still a local scan.
                return Ok(LiteralStep::LocalScan {
                    node: left_node,
                    literal: index,
                });
            }
            use crate::query::CmpOp;
            match literal.op {
                CmpOp::Eq => Ok(LiteralStep::CrossEqualityJoin {
                    left_node,
                    right_node,
                    literal: index,
                    negated: false,
                }),
                CmpOp::Ne => Ok(LiteralStep::CrossEqualityJoin {
                    left_node,
                    right_node,
                    literal: index,
                    negated: true,
                }),
                _ => Ok(LiteralStep::CrossMaskedCompare {
                    left_node,
                    right_node,
                    literal: index,
                }),
            }
        }
    }
}

/// Plans a normalized query over a partition.
///
/// # Errors
///
/// Returns [`AuditError::Planning`] if an attribute is not served by
/// any node or the query is empty.
pub fn plan(normalized: &NormalizedQuery, partition: &Partition) -> Result<QueryPlan, AuditError> {
    if normalized.is_empty() {
        return Err(AuditError::Planning("empty query".into()));
    }
    let mut subqueries = Vec::with_capacity(normalized.len());
    let mut cross_atom_count = 0usize;
    for clause in normalized.clauses() {
        let mut steps = Vec::with_capacity(clause.literals().len());
        let mut nodes: BTreeSet<usize> = BTreeSet::new();
        for (i, literal) in clause.literals().iter().enumerate() {
            let step = plan_literal(partition, literal, i)?;
            match &step {
                LiteralStep::LocalScan { node, .. } => {
                    nodes.insert(*node);
                }
                LiteralStep::CrossEqualityJoin {
                    left_node,
                    right_node,
                    ..
                }
                | LiteralStep::CrossMaskedCompare {
                    left_node,
                    right_node,
                    ..
                } => {
                    nodes.insert(*left_node);
                    nodes.insert(*right_node);
                }
            }
            steps.push(step);
        }
        let kind = if nodes.len() == 1 {
            SubqueryKind::Local {
                node: *nodes.iter().next().expect("nonempty clause"),
            }
        } else {
            cross_atom_count += clause.literals().len();
            SubqueryKind::Cross { nodes }
        };
        subqueries.push(Subquery {
            clause: clause.clone(),
            kind,
            steps,
        });
    }
    Ok(QueryPlan {
        atom_count: normalized.atom_count(),
        cross_atom_count,
        conjunct_count: normalized.len() - 1,
        time_window: extract_time_window(normalized),
        subqueries,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normal::normalize;
    use crate::parser::parse;
    use dla_logstore::schema::Schema;

    fn planned(src: &str) -> QueryPlan {
        let schema = Schema::paper_example();
        let partition = Partition::paper_example(&schema);
        plan(&normalize(&parse(src, &schema).unwrap()), &partition).unwrap()
    }

    #[test]
    fn single_attribute_clause_is_local() {
        let p = planned("c1 > 5");
        assert_eq!(p.subqueries.len(), 1);
        assert_eq!(p.subqueries[0].kind, SubqueryKind::Local { node: 3 });
        assert_eq!(p.cross_atom_count, 0);
        assert_eq!(p.conjunct_count, 0);
    }

    #[test]
    fn same_node_attributes_stay_local() {
        // id and c2 both live on P1; tid and c3 both on P2.
        let p = planned("id = 'U1' OR c2 > 10.00");
        assert_eq!(p.subqueries[0].kind, SubqueryKind::Local { node: 1 });
        let p = planned("tid = c3");
        assert_eq!(p.subqueries[0].kind, SubqueryKind::Local { node: 2 });
        assert!(matches!(
            p.subqueries[0].steps[0],
            LiteralStep::LocalScan { node: 2, .. }
        ));
    }

    #[test]
    fn mixed_node_disjunction_is_cross() {
        // c1 on P3, id on P1.
        let p = planned("c1 > 5 OR id = 'U1'");
        assert_eq!(
            p.subqueries[0].kind,
            SubqueryKind::Cross {
                nodes: [1usize, 3].into_iter().collect()
            }
        );
        assert_eq!(p.cross_atom_count, 2);
    }

    #[test]
    fn attr_attr_across_nodes_plans_protocol_steps() {
        // id (P1) = c3 (P2): equality join.
        let p = planned("id = c3");
        assert!(matches!(
            p.subqueries[0].steps[0],
            LiteralStep::CrossEqualityJoin {
                left_node: 1,
                right_node: 2,
                negated: false,
                ..
            }
        ));
        // Negated equality.
        let p = planned("id != c3");
        assert!(matches!(
            p.subqueries[0].steps[0],
            LiteralStep::CrossEqualityJoin { negated: true, .. }
        ));
        // Ordering across nodes: time (P0) vs … only time is Time-typed;
        // use c1 (P3, int) with a same-type partner — none exists in the
        // paper schema, so build one via c2/c2 … instead verify masked
        // compare with a custom schema below.
    }

    #[test]
    fn ordering_attr_attr_uses_masked_compare() {
        use dla_logstore::schema::{AttrDef, Schema};
        let schema = Schema::new(vec![
            AttrDef::known("a", dla_logstore::model::AttrType::Int),
            AttrDef::known("b", dla_logstore::model::AttrType::Int),
        ])
        .unwrap();
        let partition = Partition::round_robin(&schema, 2).unwrap();
        let p = plan(&normalize(&parse("a < b", &schema).unwrap()), &partition).unwrap();
        assert!(matches!(
            p.subqueries[0].steps[0],
            LiteralStep::CrossMaskedCompare {
                left_node: 0,
                right_node: 1,
                ..
            }
        ));
    }

    #[test]
    fn figure3_style_query_decomposes() {
        // Two local + one cross subquery, mirroring Fig. 3's SQ shapes.
        let p = planned("time > '20:00:00/05/12/2002' AND (c1 > 5 OR id = 'U1') AND c2 < 100.00");
        assert_eq!(p.subqueries.len(), 3);
        assert_eq!(p.local_count(), 2);
        assert_eq!(p.cross_count(), 1);
        assert_eq!(p.atom_count, 4);
        assert_eq!(p.cross_atom_count, 2);
        assert_eq!(p.conjunct_count, 2);
    }

    #[test]
    fn time_window_extraction_is_exact() {
        use crate::parser::parse_paper_time;
        let t_lo = parse_paper_time("20:00:00/05/12/2002").unwrap();
        let t_hi = parse_paper_time("21:00:00/05/12/2002").unwrap();

        // A pure conjunction of time bounds intersects them; strict
        // inequalities exclude the boundary instant itself (integer
        // time), so a deposit stamped exactly `t_hi` is *not* in this
        // window — the adjoining `time >= t_hi` window owns it.
        let p = planned("time > '20:00:00/05/12/2002' AND time < '21:00:00/05/12/2002'");
        assert_eq!(
            p.time_window,
            TimeWindow {
                lo: Some(t_lo + 1),
                hi: Some(t_hi - 1)
            }
        );
        assert!(!p.time_window.is_unbounded());

        // Bounds conjoined with other predicates still apply.
        let p = planned("time >= '20:00:00/05/12/2002' AND c1 > 5");
        assert_eq!(
            p.time_window,
            TimeWindow {
                lo: Some(t_lo),
                hi: None
            }
        );

        // A time bound disjoined with a non-time literal proves nothing.
        let p = planned("time > '20:00:00/05/12/2002' OR c1 > 5");
        assert!(p.time_window.is_unbounded());

        // A disjunction of time bounds takes the union.
        let p = planned("time < '20:00:00/05/12/2002' OR time = '21:00:00/05/12/2002'");
        assert_eq!(
            p.time_window,
            TimeWindow {
                lo: None,
                hi: Some(t_hi)
            }
        );

        // != constrains nothing; no time literals constrain nothing.
        let p = planned("time != '20:00:00/05/12/2002'");
        assert!(p.time_window.is_unbounded());
        let p = planned("c1 > 5 AND id = 'U1'");
        assert!(p.time_window.is_unbounded());
    }

    #[test]
    fn time_window_geometry_helpers() {
        let w = TimeWindow {
            lo: Some(10),
            hi: Some(20),
        };
        assert!(w.intersects(15, 30));
        assert!(w.intersects(0, 10));
        assert!(!w.intersects(21, 25));
        assert!(!w.is_empty());
        assert!(TimeWindow {
            lo: Some(5),
            hi: Some(4)
        }
        .is_empty());
        assert!(TimeWindow::unbounded().intersects(0, u64::MAX));
        assert_eq!(w.to_string(), "time ∈ [10, 20]");
    }

    #[test]
    fn plan_display_shows_placement() {
        let p = planned("c1 > 5 AND id = 'U1'");
        let text = p.to_string();
        assert!(text.contains("[local]"));
        assert!(text.contains("P3"));
        assert!(text.contains("s=2 t=0 q=1"));
    }

    #[test]
    fn unserved_attribute_fails_planning() {
        use dla_logstore::schema::{AttrDef, Schema};
        let schema = Schema::new(vec![
            AttrDef::known("a", dla_logstore::model::AttrType::Int),
            AttrDef::known("b", dla_logstore::model::AttrType::Int),
        ])
        .unwrap();
        // Partition over a *different* schema lacking `b`.
        let small = Schema::new(vec![AttrDef::known(
            "a",
            dla_logstore::model::AttrType::Int,
        )])
        .unwrap();
        let partition = Partition::round_robin(&small, 2).unwrap();
        let q = normalize(&parse("b > 1", &schema).unwrap());
        assert!(plan(&q, &partition).is_err());
    }
}
