//! Hierarchical DLA federation: sub-rings under a root accumulator
//! ring.
//!
//! One ring of `n` TTP nodes absorbs every application node's deposits,
//! so ingest throughput is flat no matter how many DLA nodes exist. A
//! [`FederatedCluster`] scales ingest by partitioning application users
//! across `R` **sub-rings** by a stable user-id hash
//! ([`FederatedCluster::home_ring`]); each sub-ring is a full
//! [`DlaCluster`] — its own epoch trail, `CheckpointChain` and
//! meta-journal, drawing glsns from a disjoint span of the global
//! sequence ([`RingNamespace`]) so any glsn maps back to its owning
//! ring without coordination.
//!
//! Above the sub-rings sits the **root ring**: one representative node
//! per sub-ring plus a root collector, connected by their own
//! simulated transport. When a sub-ring seals an epoch, its
//! representative publishes the [`RingCheckpoint`] to the collector,
//! which folds it into a **global §4.1 accumulator** — the same
//! one-way-accumulator primitive the sub-rings apply to deposits,
//! applied recursively one level up. The *next* ring cross-publishes a
//! [`RingEndorsement`] pinned to its own chain head, so no single ring
//! can rewrite its history: a rewrite would have to recall
//! endorsements held by every other ring **and** invert the root fold.
//!
//! Federated queries reuse the existing machinery recursively:
//!
//! * **SSI/union relay** ([`FederatedCluster::query`]): the CNF query
//!   is routed to only the rings whose partition can match (equality
//!   literals on the partition attribute pin a clause to the named
//!   users' home rings — the same conservative-extraction shape as
//!   `plan::extract_time_window`), each target ring runs its ordinary
//!   distributed pipeline, and the per-ring answers union.
//! * **count/sum** ([`FederatedCluster::count`],
//!   [`FederatedCluster::sum`]): each routed ring computes its partial
//!   with the in-ring protocols, then the partials combine via the
//!   existing §3.5 secure-sum **over the root ring** — the collector
//!   learns only the federation-wide aggregate, not which ring
//!   contributed what.
//!
//! Federated integrity checking lives in [`crate::integrity`]
//! (`check_federated_trail` / `check_federated_window`): a sub-ring
//! window verifies against both its local chain and the root
//! accumulator cross-check ([`FederatedCluster::check_root`]).
//!
//! Answers are compared across topologies by **record identity**, not
//! glsn: the federation assigns every deposited record a global index
//! in deposit order, and [`FederatedQueryResult::answer_digest`]
//! hashes the sorted indices — byte-identical between a federated run,
//! a single-ring run, and the centralized reference.

use crate::aggregate;
use crate::cluster::{AppUser, ClusterConfig, DlaCluster};
use crate::standing::StandingQueryId;
use crate::AuditError;
use dla_bigint::{Ubig, F61};
use dla_crypto::accumulator::{AccumulatorParams, RingCheckpoint, RingEndorsement};
use dla_crypto::sha256;
use dla_logstore::epoch::{EpochId, RingNamespace};
use dla_logstore::fragment::Partition;
use dla_logstore::model::{AttrName, AttrValue, Glsn, LogRecord};
use dla_logstore::schema::Schema;
use dla_mpc::sum::secure_sum;
use dla_net::latency::LatencyModel;
use dla_net::sim::{NetConfig, SimNet};
use dla_net::wire::{Reader, Writer};
use dla_net::NodeId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, BTreeSet};

/// Wire tag of a sub-ring checkpoint publication on the root ring.
pub const FED_PUBLISH_TAG: u8 = 0x60;
/// Wire tag of a cross-ring endorsement on the root ring.
pub const FED_ENDORSE_TAG: u8 = 0x61;
/// Wire tag of a standing-query delta relayed to the root collector.
pub const FED_DELTA_TAG: u8 = 0x62;

/// Configuration of a [`FederatedCluster`].
#[derive(Clone, Debug)]
pub struct FederationConfig {
    /// Number of sub-rings.
    pub rings: usize,
    /// DLA nodes per sub-ring.
    pub nodes_per_ring: usize,
    /// The attribute universe (shared by every ring).
    pub schema: Schema,
    /// Attribute-to-node assignment within each ring; defaults to
    /// round-robin.
    pub partition: Option<Partition>,
    /// Federation seed; each ring derives its own stream from it.
    pub seed: u64,
    /// Glsns per trail epoch within each ring.
    pub epoch_length: u64,
    /// Link latency model (sub-rings and root ring alike).
    pub latency: LatencyModel,
    /// User capacity per ring.
    pub max_users_per_ring: usize,
    /// The glsn namespace carving out per-ring spans.
    pub namespace: RingNamespace,
    /// The attribute whose hashed value assigns users to rings.
    pub partition_attr: AttrName,
}

impl FederationConfig {
    /// A federation of `rings` sub-rings of `nodes_per_ring` DLA nodes
    /// each, over `schema`, partitioned by the `id` attribute.
    #[must_use]
    pub fn new(rings: usize, nodes_per_ring: usize, schema: Schema) -> Self {
        FederationConfig {
            rings,
            nodes_per_ring,
            schema,
            partition: None,
            seed: 0,
            epoch_length: 1024,
            latency: LatencyModel::Zero,
            max_users_per_ring: 8,
            namespace: RingNamespace::paper_default(),
            partition_attr: "id".into(),
        }
    }

    /// Sets the federation seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets an explicit per-ring partition.
    #[must_use]
    pub fn with_partition(mut self, partition: Partition) -> Self {
        self.partition = Some(partition);
        self
    }

    /// Sets the per-ring epoch length.
    #[must_use]
    pub fn with_epoch_length(mut self, epoch_length: u64) -> Self {
        self.epoch_length = epoch_length;
        self
    }

    /// Sets the latency model.
    #[must_use]
    pub fn with_latency(mut self, latency: LatencyModel) -> Self {
        self.latency = latency;
        self
    }

    /// Sets the per-ring user capacity.
    #[must_use]
    pub fn with_max_users(mut self, max_users: usize) -> Self {
        self.max_users_per_ring = max_users;
        self
    }

    /// Sets the glsn namespace.
    #[must_use]
    pub fn with_namespace(mut self, namespace: RingNamespace) -> Self {
        self.namespace = namespace;
        self
    }
}

/// A registered federated user: which ring is home, and the in-ring
/// registration.
#[derive(Debug)]
struct FederatedUser {
    ring: usize,
    user: AppUser,
}

/// The root-ring cross-check verdict — see
/// [`FederatedCluster::check_root`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RootVerdict {
    /// Re-folding every published checkpoint reproduces the root
    /// accumulator.
    pub fold_ok: bool,
    /// Every published checkpoint is still endorsed by its own ring's
    /// chain (no ring has rewritten a sealed epoch it published).
    pub chains_ok: bool,
    /// Every cross-ring endorsement verifies, is upheld by its
    /// endorser's chain, and matches the published record it covers.
    pub endorsements_ok: bool,
}

impl RootVerdict {
    /// Whether every cross-check passed.
    #[must_use]
    pub fn ok(self) -> bool {
        self.fold_ok && self.chains_ok && self.endorsements_ok
    }
}

/// The union answer of a federated query.
#[derive(Clone, Debug)]
pub struct FederatedQueryResult {
    /// Satisfying glsns across all queried rings, sorted ascending
    /// (globally unique thanks to [`RingNamespace`] spans).
    pub glsns: Vec<Glsn>,
    /// The satisfying records' global deposit indices, sorted — the
    /// topology-independent answer identity.
    pub records: Vec<u64>,
    /// Number of satisfying records.
    pub cardinality: usize,
    /// Rings the planner routed the query to.
    pub rings_queried: Vec<usize>,
}

impl FederatedQueryResult {
    /// A digest of the answer by record identity: SHA-256 over the
    /// sorted global indices, big-endian. Byte-identical across
    /// federated, single-ring and centralized evaluation of the same
    /// workload.
    #[must_use]
    pub fn answer_digest(&self) -> [u8; 32] {
        let mut bytes = Vec::with_capacity(8 * self.records.len());
        for index in &self.records {
            bytes.extend_from_slice(&index.to_be_bytes());
        }
        sha256::digest_parts(&[b"dla-federated-answer", &bytes])
    }
}

/// A federated confidential count.
#[derive(Clone, Debug)]
pub struct FederatedCount {
    /// The federation-wide count, reconstructed by the root collector
    /// from the secure sum of per-ring partials.
    pub count: u64,
    /// Rings that computed a (possibly zero) partial in-ring.
    pub rings_queried: Vec<usize>,
}

/// A federated confidential aggregate sum.
#[derive(Clone, Debug)]
pub struct FederatedSum {
    /// The federation-wide total, in the attribute's native unit.
    pub total: u64,
    /// Contributing records across all rings.
    pub count: usize,
    /// Rings that computed a partial in-ring.
    pub rings_queried: Vec<usize>,
}

/// One standing-query increment as archived by the root collector: a
/// sub-ring sealed an epoch, evaluated the subscribed query against
/// that epoch alone, and relayed the satisfying records upward —
/// identified by global deposit index, the topology-independent record
/// identity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FederatedStandingDelta {
    /// The federation-level subscription.
    pub query: StandingQueryId,
    /// The sub-ring whose seal produced this delta.
    pub ring: u64,
    /// The sealed epoch within that ring.
    pub epoch: EpochId,
    /// Satisfying global deposit indices, sorted ascending. Empty
    /// deltas are archived too.
    pub records: Vec<u64>,
}

/// One federation-level standing subscription: the same criteria
/// registered in every sub-ring, plus the collector's archive of
/// relayed deltas.
struct FederatedStanding {
    /// Per-ring registration ids, indexed by ring.
    ring_ids: Vec<StandingQueryId>,
    /// Deltas in relay order.
    archive: Vec<FederatedStandingDelta>,
}

/// A federation of DLA sub-rings under a root accumulator ring.
pub struct FederatedCluster {
    rings: Vec<DlaCluster>,
    /// Root-ring transport: node `r` is ring `r`'s representative,
    /// node `rings.len()` the root collector.
    root_net: SimNet,
    root_rng: StdRng,
    acc_params: AccumulatorParams,
    /// The global accumulator over published sub-ring checkpoints.
    root_acc: Ubig,
    /// Publications in fold order.
    published: Vec<RingCheckpoint>,
    /// Cross-ring endorsements, parallel to `published`.
    endorsements: Vec<RingEndorsement>,
    /// Sealed checkpoints already published, per ring.
    published_per_ring: Vec<usize>,
    users: BTreeMap<String, FederatedUser>,
    /// Federation-level standing subscriptions.
    standing: BTreeMap<StandingQueryId, FederatedStanding>,
    next_standing: u64,
    /// Global record identity: glsn → deposit index, in deposit order.
    record_index: BTreeMap<Glsn, u64>,
    next_record: u64,
    namespace: RingNamespace,
    partition_attr: AttrName,
    schema: Schema,
}

impl FederatedCluster {
    /// Builds the federation: `config.rings` sub-rings, each a full
    /// [`DlaCluster`] on its own glsn span, plus the root ring's
    /// transport.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Config`] for an empty federation or any
    /// per-ring construction failure.
    pub fn new(config: FederationConfig) -> Result<Self, AuditError> {
        if config.rings == 0 {
            return Err(AuditError::Config(
                "federation needs at least one ring".into(),
            ));
        }
        if config.rings as u64 > 1 << 16 {
            return Err(AuditError::Config(format!(
                "{} rings exceed the 16-bit ring-id space",
                config.rings
            )));
        }
        let rings = (0..config.rings)
            .map(|r| {
                let mut seed_state = config.seed ^ (r as u64 + 1);
                let ring_seed = rand::splitmix64(&mut seed_state);
                let mut ring_config =
                    ClusterConfig::new(config.nodes_per_ring, config.schema.clone())
                        .with_seed(ring_seed)
                        .with_epoch_length(config.epoch_length)
                        .with_latency(config.latency.clone())
                        .with_max_users(config.max_users_per_ring)
                        .with_glsn_base(config.namespace.base_of(r as u64));
                if let Some(partition) = &config.partition {
                    ring_config = ring_config.with_partition(partition.clone());
                }
                DlaCluster::new(ring_config)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let mut root_seed_state = config.seed ^ 0xfed0_0001;
        let root_seed = rand::splitmix64(&mut root_seed_state);
        let root_net = SimNet::new(
            config.rings + 1,
            NetConfig::ideal()
                .with_latency(config.latency.clone())
                .with_seed(root_seed),
        );
        let acc_params = AccumulatorParams::fixed_512();
        let root_acc = acc_params.start().clone();
        Ok(FederatedCluster {
            published_per_ring: vec![0; rings.len()],
            rings,
            root_net,
            root_rng: StdRng::seed_from_u64(root_seed ^ 0x5eed),
            acc_params,
            root_acc,
            published: Vec::new(),
            endorsements: Vec::new(),
            users: BTreeMap::new(),
            standing: BTreeMap::new(),
            next_standing: 0,
            record_index: BTreeMap::new(),
            next_record: 0,
            namespace: config.namespace,
            partition_attr: config.partition_attr,
            schema: config.schema,
        })
    }

    /// Number of sub-rings.
    #[must_use]
    pub fn num_rings(&self) -> usize {
        self.rings.len()
    }

    /// The sub-ring clusters.
    #[must_use]
    pub fn rings(&self) -> &[DlaCluster] {
        &self.rings
    }

    /// Sub-ring `ring`.
    #[must_use]
    pub fn ring(&self, ring: usize) -> &DlaCluster {
        &self.rings[ring]
    }

    /// Mutable access to sub-ring `ring`.
    pub fn ring_mut(&mut self, ring: usize) -> &mut DlaCluster {
        &mut self.rings[ring]
    }

    /// The glsn namespace.
    #[must_use]
    pub fn namespace(&self) -> RingNamespace {
        self.namespace
    }

    /// The root collector's node id on the root ring.
    #[must_use]
    pub fn root_node(&self) -> NodeId {
        NodeId(self.rings.len())
    }

    /// The global accumulator over published sub-ring checkpoints.
    #[must_use]
    pub fn root_accumulator(&self) -> &Ubig {
        &self.root_acc
    }

    /// Publications in fold order.
    #[must_use]
    pub fn published(&self) -> &[RingCheckpoint] {
        &self.published
    }

    /// Cross-ring endorsements, parallel to [`FederatedCluster::published`].
    #[must_use]
    pub fn endorsements(&self) -> &[RingEndorsement] {
        &self.endorsements
    }

    /// The stable home ring of user `name`: the first 8 bytes of a
    /// domain-separated SHA-256 of the name, mod the ring count. Pure,
    /// so every party (router, planner, verifier) agrees without
    /// coordination.
    #[must_use]
    pub fn home_ring(&self, name: &str) -> usize {
        let h = sha256::digest_parts(&[b"dla-federation-user", name.as_bytes()]);
        let word = u64::from_be_bytes(h[..8].try_into().expect("sha256 is 32 bytes"));
        (word % self.rings.len() as u64) as usize
    }

    /// Registers `name` in its home ring and returns the ring index.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Config`] if the name is already registered
    /// or the home ring's user capacity is exhausted.
    pub fn register_user(&mut self, name: &str) -> Result<usize, AuditError> {
        if self.users.contains_key(name) {
            return Err(AuditError::Config(format!(
                "user {name} is already registered"
            )));
        }
        let ring = self.home_ring(name);
        let user = self.rings[ring].register_user(name)?;
        self.users
            .insert(name.to_string(), FederatedUser { ring, user });
        Ok(ring)
    }

    /// Deposits `records` for registered user `name` into the user's
    /// home ring, assigning each record its global deposit index.
    ///
    /// The router's contract is that a record's partition attribute
    /// carries the depositing user's id — that is what makes
    /// equality-literal ring routing sound — so a record naming a
    /// *different* id is rejected.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Config`] for an unregistered user,
    /// [`AuditError::Log`] for a record violating the routing contract
    /// or any in-ring logging failure.
    pub fn log_records(
        &mut self,
        name: &str,
        records: &[LogRecord],
    ) -> Result<Vec<Glsn>, AuditError> {
        let federated = self
            .users
            .get(name)
            .ok_or_else(|| AuditError::Config(format!("user {name} is not registered")))?;
        for record in records {
            if let Some(AttrValue::Text(id)) = record.get(&self.partition_attr) {
                if id != name {
                    return Err(AuditError::Log(format!(
                        "record claims {}='{id}' but is deposited by user {name} \
                         (federated routing requires them to agree)",
                        self.partition_attr
                    )));
                }
            }
        }
        let ring = federated.ring;
        let glsns = self.rings[ring].log_records(&federated.user, records)?;
        for &glsn in &glsns {
            self.record_index.insert(glsn, self.next_record);
            self.next_record += 1;
        }
        // Push-at-seal: any epoch this deposit just sealed reaches the
        // root fold immediately — the root accumulator never waits for
        // a driver to poll `publish_checkpoints`. Standing deltas the
        // seal emitted ride up on the same trigger.
        self.publish_ring(ring)?;
        self.relay_standing_ring(ring)?;
        Ok(glsns)
    }

    /// Publishes `ring`'s not-yet-published sealed checkpoints to the
    /// root ring: the ring's representative ships each sealed head to
    /// the collector, the collector folds it into the global
    /// accumulator, and the *next* ring cross-publishes an endorsement
    /// pinned to its own chain head. Returns how many checkpoints were
    /// published. Called from the seal path ([`FederatedCluster::log_records`]);
    /// idempotent until new seals land.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError`] on root-ring transport failure or a
    /// malformed/unverifiable publication (which would indicate a
    /// Byzantine representative).
    pub fn publish_ring(&mut self, ring: usize) -> Result<usize, AuditError> {
        let num_rings = self.rings.len();
        let root = self.root_node();
        let mut newly_published = 0usize;
        {
            loop {
                let next = self.published_per_ring[ring];
                let Some(checkpoint) = self.rings[ring]
                    .checkpoint_chain()
                    .iter()
                    .nth(next)
                    .cloned()
                else {
                    break;
                };
                let record = RingCheckpoint {
                    ring: ring as u64,
                    checkpoint,
                };

                // Representative → collector: the publication frame.
                let mut w = Writer::new();
                w.put_u8(FED_PUBLISH_TAG).put_bytes(&record.encode());
                self.root_net.send(NodeId(ring), root, w.finish());
                let envelope = self
                    .root_net
                    .recv_from(root, NodeId(ring))
                    .map_err(AuditError::Net)?;
                let mut r = Reader::new(&envelope.payload);
                let tag = r
                    .get_u8()
                    .map_err(|e| AuditError::Integrity(e.to_string()))?;
                if tag != FED_PUBLISH_TAG {
                    return Err(AuditError::Integrity(format!(
                        "unexpected root-ring tag {tag:#04x}"
                    )));
                }
                let blob = r
                    .get_bytes()
                    .map_err(|e| AuditError::Integrity(e.to_string()))?;
                let presented = RingCheckpoint::decode(blob).ok_or_else(|| {
                    AuditError::Integrity("malformed ring-checkpoint publication".into())
                })?;
                if presented != record {
                    return Err(AuditError::Integrity(
                        "ring-checkpoint publication altered in flight".into(),
                    ));
                }

                // Cross-publication: the next ring endorses against its
                // own chain head and ships the record to the collector.
                let endorser = (ring + 1) % num_rings;
                let endorsement = self.rings[endorser]
                    .checkpoint_chain()
                    .endorse_foreign(endorser as u64, presented.clone());
                let mut w = Writer::new();
                w.put_u8(FED_ENDORSE_TAG).put_bytes(&endorsement.encode());
                self.root_net.send(NodeId(endorser), root, w.finish());
                let envelope = self
                    .root_net
                    .recv_from(root, NodeId(endorser))
                    .map_err(AuditError::Net)?;
                let mut r = Reader::new(&envelope.payload);
                let tag = r
                    .get_u8()
                    .map_err(|e| AuditError::Integrity(e.to_string()))?;
                if tag != FED_ENDORSE_TAG {
                    return Err(AuditError::Integrity(format!(
                        "unexpected root-ring tag {tag:#04x}"
                    )));
                }
                let blob = r
                    .get_bytes()
                    .map_err(|e| AuditError::Integrity(e.to_string()))?;
                let received = RingEndorsement::decode(blob)
                    .ok_or_else(|| AuditError::Integrity("malformed ring endorsement".into()))?;
                if !received.verify() {
                    return Err(AuditError::Integrity(
                        "ring endorsement failed its seal check".into(),
                    ));
                }

                // The collector folds the publication into the global
                // accumulator and archives both records.
                self.root_acc = self.acc_params.fold(&self.root_acc, &presented.root_item());
                self.published.push(presented);
                self.endorsements.push(received);
                self.published_per_ring[ring] = next + 1;
                newly_published += 1;
            }
        }
        Ok(newly_published)
    }

    /// Catch-up sweep: publishes every not-yet-published sealed
    /// checkpoint across all rings. With the seal path pushing
    /// ([`FederatedCluster::publish_ring`] fires on every deposit that
    /// seals), this normally finds nothing — it exists for rings sealed
    /// out-of-band (e.g. direct [`FederatedCluster::ring_mut`] access)
    /// and as the recovery path after a representative outage. Returns
    /// how many checkpoints the sweep published.
    ///
    /// # Errors
    ///
    /// As [`FederatedCluster::publish_ring`].
    pub fn publish_checkpoints(&mut self) -> Result<usize, AuditError> {
        let mut newly_published = 0usize;
        for ring in 0..self.rings.len() {
            newly_published += self.publish_ring(ring)?;
            self.relay_standing_ring(ring)?;
        }
        Ok(newly_published)
    }

    /// Registers a standing query federation-wide: the criteria are
    /// registered in **every** sub-ring (each validates, catches up
    /// over its already-sealed epochs, and will evaluate every future
    /// seal), and the catch-up deltas are relayed to the root collector
    /// immediately. From then on each sub-ring seal pushes its delta up
    /// through the root ring with no driver poll.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Parse`]/[`AuditError::Planning`] if any
    /// ring rejects the criteria, or any relay failure.
    pub fn register_standing(&mut self, criteria: &str) -> Result<StandingQueryId, AuditError> {
        let ring_ids = (0..self.rings.len())
            .map(|ring| self.rings[ring].register_standing(criteria))
            .collect::<Result<Vec<_>, _>>()?;
        let id = StandingQueryId(self.next_standing);
        self.next_standing += 1;
        self.standing.insert(
            id,
            FederatedStanding {
                ring_ids,
                archive: Vec::new(),
            },
        );
        for ring in 0..self.rings.len() {
            self.relay_standing_ring(ring)?;
        }
        Ok(id)
    }

    /// The root collector's archive of relayed deltas for `id`, in
    /// relay order.
    #[must_use]
    pub fn standing_deltas(&self, id: StandingQueryId) -> &[FederatedStandingDelta] {
        self.standing.get(&id).map_or(&[], |s| s.archive.as_slice())
    }

    /// The accumulated federation-wide matches of `id`: the union of
    /// every relayed delta's records, sorted by global deposit index —
    /// directly comparable to [`FederatedQueryResult::records`].
    #[must_use]
    pub fn standing_matches(&self, id: StandingQueryId) -> Option<Vec<u64>> {
        let entry = self.standing.get(&id)?;
        let mut records: BTreeSet<u64> = BTreeSet::new();
        for delta in &entry.archive {
            records.extend(delta.records.iter().copied());
        }
        Some(records.into_iter().collect())
    }

    /// Relays `ring`'s pending standing deltas to the root collector:
    /// the representative frames each delta ([`FED_DELTA_TAG`]), the
    /// collector decodes it, resolves the ring-local glsns to global
    /// deposit indices, and archives the result.
    fn relay_standing_ring(&mut self, ring: usize) -> Result<(), AuditError> {
        let subscriptions: Vec<(StandingQueryId, StandingQueryId)> = self
            .standing
            .iter()
            .map(|(id, entry)| (*id, entry.ring_ids[ring]))
            .collect();
        let root = self.root_node();
        for (fed_id, ring_id) in subscriptions {
            for delta in self.rings[ring].standing_deltas(ring_id) {
                let mut w = Writer::new();
                w.put_u8(FED_DELTA_TAG)
                    .put_u64(fed_id.0)
                    .put_u64(ring as u64)
                    .put_u64(delta.epoch.0)
                    .put_list(&delta.glsns, |w, g| {
                        w.put_u64(g.0);
                    });
                self.root_net.send(NodeId(ring), root, w.finish());
                let envelope = self
                    .root_net
                    .recv_from(root, NodeId(ring))
                    .map_err(AuditError::Net)?;
                let mut r = Reader::new(&envelope.payload);
                let wire_err = |e: dla_net::wire::WireError| AuditError::Integrity(e.to_string());
                let tag = r.get_u8().map_err(wire_err)?;
                if tag != FED_DELTA_TAG {
                    return Err(AuditError::Integrity(format!(
                        "unexpected root-ring tag {tag:#04x}"
                    )));
                }
                let query = StandingQueryId(r.get_u64().map_err(wire_err)?);
                let from_ring = r.get_u64().map_err(wire_err)?;
                let epoch = EpochId(r.get_u64().map_err(wire_err)?);
                let glsns = r.get_list(|r| r.get_u64().map(Glsn)).map_err(wire_err)?;
                let mut records = Vec::with_capacity(glsns.len());
                for glsn in glsns {
                    let index = self.record_index.get(&glsn).ok_or_else(|| {
                        AuditError::Integrity(format!(
                            "standing delta names glsn {glsn:?} with no federated deposit index"
                        ))
                    })?;
                    records.push(*index);
                }
                records.sort_unstable();
                let entry = self.standing.get_mut(&query).ok_or_else(|| {
                    AuditError::Integrity(format!("standing delta for unknown query {query}"))
                })?;
                entry.archive.push(FederatedStandingDelta {
                    query,
                    ring: from_ring,
                    epoch,
                    records,
                });
            }
        }
        Ok(())
    }

    /// The root accumulator cross-check against a *presented* set of
    /// checkpoints: re-folds `presented` in order from `x₀` and
    /// compares with the collector's global accumulator. A tampered,
    /// dropped, reordered or extra checkpoint changes the fold — this
    /// is how an auditor holding only the root accumulator value
    /// detects a sub-ring rewriting its published history.
    #[must_use]
    pub fn verify_presented(&self, presented: &[RingCheckpoint]) -> bool {
        let items: Vec<Vec<u8>> = presented.iter().map(RingCheckpoint::root_item).collect();
        let refs: Vec<&[u8]> = items.iter().map(Vec::as_slice).collect();
        // Eq. 9 collapses the refold ladder into one fixed-base power
        // of x₀ — same value, one table walk per cross-check.
        self.acc_params.accumulate_batch(&refs) == self.root_acc
    }

    /// The full root-ring cross-check: the archived publications refold
    /// to the global accumulator, every publication still matches its
    /// ring's own chain, and every endorsement is upheld by its
    /// endorser's chain.
    #[must_use]
    pub fn check_root(&self) -> RootVerdict {
        let fold_ok = self.verify_presented(&self.published);
        let chains_ok = self.published.iter().all(|record| {
            (record.ring as usize) < self.rings.len()
                && self.rings[record.ring as usize]
                    .checkpoint_chain()
                    .endorses(&record.checkpoint)
        });
        let endorsements_ok = self.published.len() == self.endorsements.len()
            && self
                .endorsements
                .iter()
                .zip(&self.published)
                .all(|(endorsement, record)| {
                    endorsement.subject == *record
                        && (endorsement.endorser as usize) < self.rings.len()
                        && self.rings[endorsement.endorser as usize]
                            .checkpoint_chain()
                            .upholds(endorsement)
                });
        RootVerdict {
            fold_ok,
            chains_ok,
            endorsements_ok,
        }
    }

    /// Which rings `criteria` can match: every ring, unless a CNF
    /// conjunct pins the partition attribute. A clause contributes a
    /// restriction only when **every** literal is
    /// `partition_attr = 'name'` (then the clause can only match those
    /// users' home rings — union within the clause); restrictions
    /// intersect across conjuncts. Conservative in exactly the way
    /// `plan::extract_time_window` is: a clause the analysis cannot
    /// bound restricts nothing.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError::Parse`] if the criteria do not parse or
    /// type-check against the federation schema.
    pub fn route(&self, criteria: &str) -> Result<BTreeSet<usize>, AuditError> {
        let parsed = crate::parser::parse(criteria, &self.schema)
            .map_err(|e| AuditError::Parse(e.to_string()))?;
        parsed
            .check(&self.schema)
            .map_err(|e| AuditError::Parse(e.to_string()))?;
        let normalized = crate::normal::normalize(&parsed);
        let mut candidate: BTreeSet<usize> = (0..self.rings.len()).collect();
        for clause in normalized.clauses() {
            let mut clause_rings = BTreeSet::new();
            let mut covered = !clause.literals().is_empty();
            for literal in clause.literals() {
                match (&literal.op, &literal.rhs) {
                    (
                        crate::query::CmpOp::Eq,
                        crate::query::Operand::Const(AttrValue::Text(name)),
                    ) if literal.lhs == self.partition_attr => {
                        clause_rings.insert(self.home_ring(name));
                    }
                    _ => {
                        covered = false;
                        break;
                    }
                }
            }
            if covered {
                candidate = candidate.intersection(&clause_rings).copied().collect();
            }
        }
        Ok(candidate)
    }

    /// Runs `criteria` across the federation: the planner routes the
    /// query to only the rings whose partition can match
    /// ([`FederatedCluster::route`]), each target ring runs its
    /// ordinary distributed SSI/union pipeline, and the per-ring
    /// answers union into one sorted result.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError`] on parse/plan/protocol failure in any
    /// target ring.
    pub fn query(&mut self, criteria: &str) -> Result<FederatedQueryResult, AuditError> {
        let targets = self.route(criteria)?;
        let mut glsns: Vec<Glsn> = Vec::new();
        for &ring in &targets {
            let result = self.rings[ring].query(criteria)?;
            glsns.extend(result.glsns);
        }
        glsns.sort_unstable();
        let records = self.identify(&glsns)?;
        Ok(FederatedQueryResult {
            cardinality: glsns.len(),
            glsns,
            records,
            rings_queried: targets.into_iter().collect(),
        })
    }

    /// As [`FederatedCluster::query`], but every routed ring executes
    /// under the retransmission/health machinery of
    /// [`crate::exec::execute_resilient`] — the federated path for
    /// lossy or adversarial transports. Answers are identical to the
    /// plain path whenever both complete.
    ///
    /// # Errors
    ///
    /// Returns [`AuditError`] when any target ring exhausts its retry
    /// budget or fails to parse/plan the criteria.
    pub fn query_resilient(
        &mut self,
        criteria: &str,
        policy: &crate::exec::ResilientPolicy,
    ) -> Result<FederatedQueryResult, AuditError> {
        let targets = self.route(criteria)?;
        let mut glsns: Vec<Glsn> = Vec::new();
        for &ring in &targets {
            let outcome = self.rings[ring].query_resilient(criteria, policy)?;
            glsns.extend(outcome.result.glsns);
        }
        glsns.sort_unstable();
        let records = self.identify(&glsns)?;
        Ok(FederatedQueryResult {
            cardinality: glsns.len(),
            glsns,
            records,
            rings_queried: targets.into_iter().collect(),
        })
    }

    /// Counts records satisfying `criteria` across the federation
    /// without revealing which. Routed rings compute their partial with
    /// the in-ring no-reveal pipeline; the partials then combine via
    /// the §3.5 secure sum **over the root ring** (every
    /// representative contributes — non-routed rings contribute zero —
    /// and the collector reconstructs only the total).
    ///
    /// # Errors
    ///
    /// Returns [`AuditError`] on any in-ring failure or a root-ring
    /// secure-sum failure.
    pub fn count(&mut self, criteria: &str) -> Result<FederatedCount, AuditError> {
        let targets = self.route(criteria)?;
        let mut partials = vec![0u64; self.rings.len()];
        for &ring in &targets {
            partials[ring] =
                aggregate::count_matching(&mut self.rings[ring], criteria)?.count as u64;
        }
        let total = self.root_combine(&partials)?;
        Ok(FederatedCount {
            count: total,
            rings_queried: targets.into_iter().collect(),
        })
    }

    /// Sums `attr` over all records satisfying `criteria` across the
    /// federation: in-ring [`aggregate::sum_matching`] partials (each
    /// already a secure sum within its ring), combined via the root
    /// ring's secure sum.
    ///
    /// # Errors
    ///
    /// As [`FederatedCluster::count`], plus the in-ring numeric-
    /// attribute restrictions of [`aggregate::sum_matching`].
    pub fn sum(&mut self, criteria: &str, attr: &AttrName) -> Result<FederatedSum, AuditError> {
        let targets = self.route(criteria)?;
        let mut partials = vec![0u64; self.rings.len()];
        let mut count = 0usize;
        for &ring in &targets {
            let outcome = aggregate::sum_matching(&mut self.rings[ring], criteria, attr)?;
            partials[ring] = outcome.total;
            count += outcome.count;
        }
        let total = self.root_combine(&partials)?;
        Ok(FederatedSum {
            total,
            count,
            rings_queried: targets.into_iter().collect(),
        })
    }

    /// Combines per-ring partials with the existing secure-sum protocol
    /// over the root ring: parties are the ring representatives,
    /// collector is the root node.
    fn root_combine(&mut self, partials: &[u64]) -> Result<u64, AuditError> {
        let parties: Vec<NodeId> = (0..self.rings.len()).map(NodeId).collect();
        let inputs: Vec<F61> = partials.iter().map(|&p| F61::new(p)).collect();
        let k = (self.rings.len() / 2 + 1).min(self.rings.len());
        let collector = self.root_node();
        let outcome = secure_sum(
            &mut self.root_net,
            &parties,
            &inputs,
            k,
            collector,
            &mut self.root_rng,
        )
        .map_err(AuditError::Mpc)?;
        Ok(outcome.total.value())
    }

    /// Maps glsns to their global deposit indices (sorted by glsn).
    fn identify(&self, glsns: &[Glsn]) -> Result<Vec<u64>, AuditError> {
        let mut records = Vec::with_capacity(glsns.len());
        for glsn in glsns {
            let index = self.record_index.get(glsn).ok_or_else(|| {
                AuditError::Integrity(format!("glsn {glsn:?} has no federated deposit index"))
            })?;
            records.push(*index);
        }
        records.sort_unstable();
        Ok(records)
    }

    /// The federation's bandwidth-bound ingest makespan in virtual
    /// nanoseconds. A sub-ring's transport is one shared pipe: draining
    /// its deposit traffic costs its serialization time (the LAN
    /// profile's 125 bytes/µs) plus a fixed per-message handling
    /// overhead. Rings drain in parallel, so the federation is done
    /// when its busiest ring is — the max over per-ring drain times.
    /// (The propagation clocks of [`SimNet::makespan`] measure *delay*,
    /// which is deposit-count-independent for one-way traffic; ingest
    /// throughput is pipe-bound, which is what this models.)
    #[must_use]
    pub fn ingest_makespan_ns(&self) -> u64 {
        const BYTES_PER_US: u64 = 125;
        const PER_MESSAGE_NS: u64 = 2_000;
        self.rings
            .iter()
            .map(|ring| {
                let net = ring.net();
                let stats = net.stats();
                stats.bytes_sent * 1_000 / BYTES_PER_US + stats.messages_sent * PER_MESSAGE_NS
            })
            .max()
            .unwrap_or(0)
    }

    /// Total records deposited across the federation.
    #[must_use]
    pub fn records_deposited(&self) -> u64 {
        self.next_record
    }

    /// The deposit index of `glsn`, if it was logged through this
    /// federation.
    #[must_use]
    pub fn deposit_index(&self, glsn: Glsn) -> Option<u64> {
        self.record_index.get(&glsn).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::integrity;
    use dla_logstore::gen::{self, paper_table1};

    /// Builds an `rings`-ring federation loaded with the paper's Table
    /// 1, each record deposited by the user its `id` names, in table
    /// order (so global record indices agree across topologies).
    fn seeded_federation(rings: usize, seed: u64) -> FederatedCluster {
        let schema = Schema::paper_example();
        let partition = Partition::paper_example(&schema);
        let mut fed = FederatedCluster::new(
            FederationConfig::new(rings, 4, schema)
                .with_partition(partition)
                .with_seed(seed)
                .with_epoch_length(2)
                .with_latency(LatencyModel::lan()),
        )
        .unwrap();
        let records = paper_table1();
        let mut seen = BTreeSet::new();
        for record in &records {
            let Some(AttrValue::Text(id)) = record.get(&"id".into()) else {
                panic!("table 1 records carry an id");
            };
            if seen.insert(id.clone()) {
                fed.register_user(id).unwrap();
            }
        }
        for record in &records {
            let Some(AttrValue::Text(id)) = record.get(&"id".into()) else {
                unreachable!();
            };
            fed.log_records(id, std::slice::from_ref(record)).unwrap();
        }
        fed
    }

    /// Builds an `rings`-ring federation loaded with a synthetic
    /// many-user workload (same stream regardless of ring count, so
    /// global record indices agree across topologies). More users than
    /// Table 1's three means the id hash actually spreads deposits
    /// over the rings, and enough records per ring seal epochs at
    /// epoch length 2.
    fn synthetic_federation(
        rings: usize,
        seed: u64,
        users: usize,
        records: usize,
    ) -> FederatedCluster {
        let schema = Schema::paper_example();
        let partition = Partition::paper_example(&schema);
        let mut fed = FederatedCluster::new(
            FederationConfig::new(rings, 4, schema)
                .with_partition(partition)
                .with_seed(seed)
                .with_epoch_length(2)
                .with_latency(LatencyModel::lan())
                .with_max_users(users),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
        let workload = gen::generate(
            &gen::WorkloadConfig {
                records,
                users,
                ..gen::WorkloadConfig::default()
            },
            &mut rng,
        );
        for u in 1..=users {
            fed.register_user(&format!("U{u}")).unwrap();
        }
        for record in &workload {
            let Some(AttrValue::Text(id)) = record.get(&"id".into()) else {
                unreachable!("generated records carry an id");
            };
            fed.log_records(id, std::slice::from_ref(record)).unwrap();
        }
        fed
    }

    #[test]
    fn routing_pins_equality_clauses_conservatively() {
        let fed = seeded_federation(4, 11);
        let all: BTreeSet<usize> = (0..4).collect();
        // A non-partition predicate restricts nothing.
        assert_eq!(fed.route("c1 > 30").unwrap(), all);
        // A pinned conjunct restricts to the named user's home ring.
        let u1 = fed.home_ring("U1");
        assert_eq!(
            fed.route("id = 'U1'").unwrap(),
            [u1].into_iter().collect::<BTreeSet<_>>()
        );
        // Union within a clause of pinned literals.
        let mut u12: BTreeSet<usize> = BTreeSet::new();
        u12.insert(u1);
        u12.insert(fed.home_ring("U2"));
        assert_eq!(fed.route("id = 'U1' OR id = 'U2'").unwrap(), u12);
        // A clause mixing in an unpinnable literal restricts nothing.
        assert_eq!(fed.route("id = 'U1' OR c1 > 5").unwrap(), all);
        // Conjuncts intersect: both pins must hold.
        let conjunct = fed.route("id = 'U1' AND id = 'U2'").unwrap();
        assert_eq!(
            conjunct,
            u12.iter()
                .copied()
                .filter(|r| *r == u1 && *r == fed.home_ring("U2"))
                .collect::<BTreeSet<_>>()
        );
    }

    #[test]
    fn federated_answers_match_single_ring_by_record_identity() {
        let mut one = seeded_federation(1, 21);
        let mut four = seeded_federation(4, 22);
        for criteria in [
            "protocol = 'UDP'",
            "id = 'U1'",
            "c1 > 30 AND id = 'U1' AND protocol = 'TCP'",
            "c1 > 40 OR id = 'U2'",
        ] {
            let a = one.query(criteria).unwrap();
            let b = four.query(criteria).unwrap();
            assert_eq!(a.records, b.records, "criteria {criteria}");
            assert_eq!(a.answer_digest(), b.answer_digest(), "criteria {criteria}");
            assert_eq!(a.cardinality, b.cardinality);
        }
        // The routed query touches fewer rings than the broadcast one.
        let routed = four.query("id = 'U1'").unwrap();
        assert_eq!(routed.rings_queried.len(), 1);
        let broad = four.query("protocol = 'UDP'").unwrap();
        assert_eq!(broad.rings_queried.len(), 4);
    }

    #[test]
    fn federated_aggregates_combine_over_the_root_ring() {
        let mut one = seeded_federation(1, 31);
        let mut four = seeded_federation(4, 32);
        let count_one = one.count("protocol = 'UDP'").unwrap();
        let count_four = four.count("protocol = 'UDP'").unwrap();
        assert_eq!(count_one.count, 3, "table 1 has three UDP records");
        assert_eq!(count_four.count, 3);
        // Total UDP volume: 23.45 + 345.11 + 235.00 in hundredths.
        let sum_one = one.sum("protocol = 'UDP'", &"c2".into()).unwrap();
        let sum_four = four.sum("protocol = 'UDP'", &"c2".into()).unwrap();
        assert_eq!(sum_one.total, 2345 + 34511 + 23500);
        assert_eq!(sum_four.total, sum_one.total);
        assert_eq!(sum_four.count, sum_one.count);
    }

    #[test]
    fn root_accumulator_cross_check_detects_a_tampered_checkpoint() {
        let mut fed = synthetic_federation(3, 41, 12, 36);
        // The seal path already pushed every sealed checkpoint, so the
        // catch-up sweep finds nothing new.
        assert_eq!(fed.publish_checkpoints().unwrap(), 0);
        let published = fed.published().len();
        assert!(published > 0, "epoch length 2 must seal something");
        assert_eq!(fed.endorsements().len(), published);
        assert!(fed.check_root().ok());
        assert!(fed.verify_presented(fed.published()));

        // A sub-ring presenting a rewritten checkpoint digest fails the
        // root accumulator cross-check...
        let mut tampered = fed.published().to_vec();
        tampered[0].checkpoint.items += 1;
        assert!(!fed.verify_presented(&tampered));
        // ...as does withholding a publication.
        assert!(!fed.verify_presented(&fed.published()[1..]));
        // A mere reordering still refolds to the same root — the §4.1
        // accumulator is quasi-commutative, so presentation order is
        // irrelevant by design; per-record binding comes from the
        // endorsement cross-check, not the fold.
        if published >= 2 {
            let mut reordered = fed.published().to_vec();
            reordered.swap(0, 1);
            assert!(fed.verify_presented(&reordered));
        }
    }

    #[test]
    fn federated_integrity_verdicts_cover_local_and_root_legs() {
        let mut fed = seeded_federation(2, 51);
        fed.publish_checkpoints().unwrap();
        for ring in 0..fed.num_rings() {
            let verdict = integrity::check_federated_trail(&fed, ring);
            assert!(verdict.ok(), "ring {ring}: {verdict:?}");
            let windowed = integrity::check_federated_window(
                &fed,
                ring,
                &crate::plan::TimeWindow::unbounded(),
            );
            assert!(windowed.ok(), "ring {ring}: {windowed:?}");
        }
    }

    #[test]
    fn routing_contract_rejects_mismatched_ids_and_unknown_users() {
        let mut fed = seeded_federation(2, 61);
        let records = paper_table1();
        // Record 0 names U1; depositing it as U2 violates the contract.
        assert!(matches!(
            fed.log_records("U2", std::slice::from_ref(&records[0])),
            Err(AuditError::Log(_))
        ));
        assert!(matches!(
            fed.log_records("nobody", &records[..1]),
            Err(AuditError::Config(_))
        ));
        assert!(matches!(
            fed.register_user("U1"),
            Err(AuditError::Config(_))
        ));
    }

    #[test]
    fn seals_reach_the_root_fold_without_a_driver_poll() {
        let fed = synthetic_federation(3, 81, 12, 36);
        // No publish_checkpoints() call anywhere above: the deposits
        // that sealed epochs pushed their checkpoints themselves.
        assert!(
            !fed.published().is_empty(),
            "sealed checkpoints must reach the root with no driver poll"
        );
        assert_eq!(fed.published().len(), fed.endorsements().len());
        assert!(fed.check_root().ok());
        // Every ring's full chain is already published.
        for (ring, cluster) in fed.rings().iter().enumerate() {
            assert_eq!(
                fed.published()
                    .iter()
                    .filter(|p| p.ring as usize == ring)
                    .count(),
                cluster.checkpoint_chain().len(),
                "ring {ring} has unpublished sealed epochs"
            );
        }
    }

    #[test]
    fn standing_deltas_relay_to_the_root_collector() {
        let schema = Schema::paper_example();
        let partition = Partition::paper_example(&schema);
        let mut fed = FederatedCluster::new(
            FederationConfig::new(3, 4, schema)
                .with_partition(partition)
                .with_seed(91)
                .with_epoch_length(2)
                .with_max_users(12),
        )
        .unwrap();
        // Subscribe *before* any deposit: deltas must arrive purely
        // from the seal path.
        let early = fed.register_standing("protocol = 'UDP'").unwrap();
        let mut rng = StdRng::seed_from_u64(91);
        let workload = gen::generate(
            &gen::WorkloadConfig {
                records: 36,
                users: 12,
                ..gen::WorkloadConfig::default()
            },
            &mut rng,
        );
        for u in 1..=12 {
            fed.register_user(&format!("U{u}")).unwrap();
        }
        for record in &workload {
            let Some(AttrValue::Text(id)) = record.get(&"id".into()) else {
                unreachable!("generated records carry an id");
            };
            fed.log_records(id, std::slice::from_ref(record)).unwrap();
        }
        let deltas = fed.standing_deltas(early);
        assert!(
            !deltas.is_empty(),
            "sealed epochs must have relayed deltas with no driver poll"
        );
        // A late subscriber converges on the same accumulated answer
        // via per-ring catch-up.
        let late = fed.register_standing("protocol = 'UDP'").unwrap();
        assert_ne!(early, late);
        assert_eq!(fed.standing_matches(early), fed.standing_matches(late));
        // The accumulated matches are a subset of the fresh federated
        // answer (standing covers sealed epochs only; the fresh query
        // also sees the open tail).
        let accumulated = fed.standing_matches(early).unwrap();
        let fresh: BTreeSet<u64> = fed
            .query("protocol = 'UDP'")
            .unwrap()
            .records
            .into_iter()
            .collect();
        assert!(!accumulated.is_empty(), "the workload contains UDP records");
        for index in &accumulated {
            assert!(
                fresh.contains(index),
                "delta record {index} not in fresh answer"
            );
        }
    }

    #[test]
    fn ingest_parallelism_shrinks_the_makespan() {
        let one = synthetic_federation(1, 71, 16, 48);
        let four = synthetic_federation(4, 71, 16, 48);
        assert_eq!(one.records_deposited(), four.records_deposited());
        assert!(one.ingest_makespan_ns() > 0);
        assert!(
            four.ingest_makespan_ns() < one.ingest_makespan_ns(),
            "4 rings ({} ns) should beat 1 ring ({} ns)",
            four.ingest_makespan_ns(),
            one.ingest_makespan_ns()
        );
    }
}
