//! Distributed integrity cross-checking (paper §4.1).
//!
//! When a user logs a record it deposits
//! `A(x₀, Log_0, …, Log_{n−1})` — the one-way accumulator over all
//! fragments — at every DLA node. Any node can later initiate a check:
//! it folds its own stored fragment into `x₀` and circulates the
//! intermediate value (labelled by `glsn`) around the ring; each node
//! folds in its own fragment and forwards. Quasi-commutativity (Eq. 9)
//! makes the final value independent of the visit order, so it must
//! equal the deposit — unless some node's fragment was modified, which
//! the initiator detects immediately. "This scheme allows DLA nodes to
//! check the integrity of the records while keeping them private": only
//! accumulator values travel, never fragment contents.
//!
//! The per-ticket ACL consistency check (also §4.1) runs the secure
//! set intersection primitive over each node's authorization set.

use crate::cluster::DlaCluster;
use crate::AuditError;
use dla_bigint::Ubig;
use dla_logstore::acl::TicketId;
use dla_logstore::model::Glsn;
use dla_mpc::set_intersection::secure_set_intersection;
use dla_net::topology::Ring;
use dla_net::wire::{Reader, Writer};
use dla_net::NodeId;

/// The verdict of one record's integrity check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrityVerdict {
    /// The record checked.
    pub glsn: Glsn,
    /// Whether the circulated accumulator matched the deposit.
    pub ok: bool,
    /// The node that initiated the check.
    pub initiator: usize,
    /// Messages spent on the circulation.
    pub messages: u64,
}

/// Circulates the accumulator for `glsn` starting at `initiator`.
///
/// # Errors
///
/// Returns [`AuditError`] if no deposit exists for `glsn` or the
/// network fails.
///
/// # Panics
///
/// Panics if `initiator` is not a DLA node index.
pub fn check_record(
    cluster: &mut DlaCluster,
    glsn: Glsn,
    initiator: usize,
) -> Result<IntegrityVerdict, AuditError> {
    let n = cluster.num_nodes();
    assert!(initiator < n, "initiator must be a DLA node");
    let deposit = cluster
        .deposit(glsn)
        .ok_or_else(|| AuditError::Integrity(format!("no deposit for glsn {glsn}")))?
        .clone();
    let params = cluster.accumulator_params().clone();
    let start_messages = cluster.net().stats().messages_sent;

    // Fold the initiator's own fragment first.
    let mut acc = params.start().clone();
    acc = fold_local(cluster, initiator, glsn, &params, &acc);

    // Circulate around the ring.
    let mut holder = initiator;
    for step in 1..n {
        let next = (initiator + step) % n;
        let mut w = Writer::new();
        w.put_u8(0x40).put_u64(glsn.0).put_bytes(&acc.to_bytes_be());
        cluster
            .net_mut()
            .send(NodeId(holder), NodeId(next), w.finish());
        let envelope = cluster
            .net_mut()
            .recv_from(NodeId(next), NodeId(holder))
            .map_err(AuditError::Net)?;
        let mut r = Reader::new(&envelope.payload);
        let _ = r
            .get_u8()
            .map_err(|e| AuditError::Integrity(e.to_string()))?;
        let tagged_glsn = r
            .get_u64()
            .map_err(|e| AuditError::Integrity(e.to_string()))?;
        if tagged_glsn != glsn.0 {
            return Err(AuditError::Integrity(format!(
                "circulation for {glsn} arrived labelled {tagged_glsn:x}"
            )));
        }
        let received = Ubig::from_bytes_be(
            r.get_bytes()
                .map_err(|e| AuditError::Integrity(e.to_string()))?,
        );
        acc = fold_local(cluster, next, glsn, &params, &received);
        holder = next;
    }

    // Return to the initiator for the final comparison.
    let mut w = Writer::new();
    w.put_u8(0x41).put_u64(glsn.0).put_bytes(&acc.to_bytes_be());
    cluster
        .net_mut()
        .send(NodeId(holder), NodeId(initiator), w.finish());
    let envelope = cluster
        .net_mut()
        .recv_from(NodeId(initiator), NodeId(holder))
        .map_err(AuditError::Net)?;
    let mut r = Reader::new(&envelope.payload);
    let _ = r
        .get_u8()
        .map_err(|e| AuditError::Integrity(e.to_string()))?;
    let _ = r
        .get_u64()
        .map_err(|e| AuditError::Integrity(e.to_string()))?;
    let final_acc = Ubig::from_bytes_be(
        r.get_bytes()
            .map_err(|e| AuditError::Integrity(e.to_string()))?,
    );

    Ok(IntegrityVerdict {
        glsn,
        ok: final_acc == deposit,
        initiator,
        messages: cluster.net().stats().messages_sent - start_messages,
    })
}

fn fold_local(
    cluster: &DlaCluster,
    node: usize,
    glsn: Glsn,
    params: &dla_crypto::accumulator::AccumulatorParams,
    acc: &Ubig,
) -> Ubig {
    match cluster.node(node).store().get_local(glsn) {
        Some(frag) => params.fold(acc, &frag.to_canonical_bytes()),
        // A missing fragment folds a distinguished marker so the check
        // fails loudly rather than silently skipping the node.
        None => params.fold(acc, format!("missing:{node}:{glsn}").as_bytes()),
    }
}

/// Folds one survivor's contribution: its own fragment plus any adopted
/// fragments it can represent for the still-unrepresented dead nodes.
/// Each dead node is folded at most once across the whole circulation.
fn fold_survivor(
    cluster: &DlaCluster,
    node: usize,
    glsn: Glsn,
    params: &dla_crypto::accumulator::AccumulatorParams,
    acc: &Ubig,
    unrepresented: &mut std::collections::BTreeSet<usize>,
) -> Ubig {
    let mut acc = fold_local(cluster, node, glsn, params, acc);
    let store = cluster.node(node).store();
    let covered: Vec<usize> = unrepresented
        .iter()
        .copied()
        .filter(|&dead| store.get_adopted(dead, glsn).is_some())
        .collect();
    for dead in covered {
        let frag = store.get_adopted(dead, glsn).expect("just checked");
        acc = params.fold(&acc, &frag.to_canonical_bytes());
        unrepresented.remove(&dead);
    }
    acc
}

/// Circulates the accumulator for `glsn` over the `alive` survivor set
/// only. Each survivor folds its own fragment plus the adopted
/// fragments it re-hosts for dead nodes; quasi-commutativity makes the
/// final value equal the original deposit **iff every dead node's
/// fragment is represented by a faithful adopted copy** — this is the
/// proof that a re-replicated fragment matches what was originally
/// logged. A dead node nobody re-hosts folds a `missing:` marker, so
/// the check fails loudly instead of silently shrinking the record.
///
/// # Errors
///
/// Returns [`AuditError`] if no deposit exists for `glsn` or the
/// network fails.
///
/// # Panics
///
/// Panics if `initiator` is not in `alive` or `alive` contains a
/// non-DLA node index.
pub fn check_record_among(
    cluster: &mut DlaCluster,
    glsn: Glsn,
    initiator: usize,
    alive: &std::collections::BTreeSet<usize>,
) -> Result<IntegrityVerdict, AuditError> {
    let n = cluster.num_nodes();
    assert!(
        alive.contains(&initiator),
        "initiator must be a surviving DLA node"
    );
    assert!(
        alive.iter().all(|&i| i < n),
        "alive set must contain DLA node indices"
    );
    let deposit = cluster
        .deposit(glsn)
        .ok_or_else(|| AuditError::Integrity(format!("no deposit for glsn {glsn}")))?
        .clone();
    let params = cluster.accumulator_params().clone();
    let start_messages = cluster.net().stats().messages_sent;
    let mut unrepresented: std::collections::BTreeSet<usize> =
        (0..n).filter(|i| !alive.contains(i)).collect();

    // Visit survivors in ring order starting at the initiator.
    let route: Vec<usize> = alive
        .iter()
        .copied()
        .filter(|&i| i > initiator)
        .chain(alive.iter().copied().filter(|&i| i < initiator))
        .collect();

    let mut acc = params.start().clone();
    acc = fold_survivor(cluster, initiator, glsn, &params, &acc, &mut unrepresented);

    let mut holder = initiator;
    for &next in &route {
        let mut w = Writer::new();
        w.put_u8(0x40).put_u64(glsn.0).put_bytes(&acc.to_bytes_be());
        cluster
            .net_mut()
            .send(NodeId(holder), NodeId(next), w.finish());
        let envelope = cluster
            .net_mut()
            .recv_from(NodeId(next), NodeId(holder))
            .map_err(AuditError::Net)?;
        let mut r = Reader::new(&envelope.payload);
        let _ = r
            .get_u8()
            .map_err(|e| AuditError::Integrity(e.to_string()))?;
        let tagged_glsn = r
            .get_u64()
            .map_err(|e| AuditError::Integrity(e.to_string()))?;
        if tagged_glsn != glsn.0 {
            return Err(AuditError::Integrity(format!(
                "circulation for {glsn} arrived labelled {tagged_glsn:x}"
            )));
        }
        let received = Ubig::from_bytes_be(
            r.get_bytes()
                .map_err(|e| AuditError::Integrity(e.to_string()))?,
        );
        acc = fold_survivor(cluster, next, glsn, &params, &received, &mut unrepresented);
        holder = next;
    }

    // Dead nodes nobody re-hosts fold their missing markers (order does
    // not matter — quasi-commutativity), guaranteeing a mismatch.
    for dead in unrepresented {
        acc = params.fold(&acc, format!("missing:{dead}:{glsn}").as_bytes());
    }

    // Return to the initiator for the final comparison (skipped when
    // the initiator is the only survivor).
    if holder != initiator {
        let mut w = Writer::new();
        w.put_u8(0x41).put_u64(glsn.0).put_bytes(&acc.to_bytes_be());
        cluster
            .net_mut()
            .send(NodeId(holder), NodeId(initiator), w.finish());
        let envelope = cluster
            .net_mut()
            .recv_from(NodeId(initiator), NodeId(holder))
            .map_err(AuditError::Net)?;
        let mut r = Reader::new(&envelope.payload);
        let _ = r
            .get_u8()
            .map_err(|e| AuditError::Integrity(e.to_string()))?;
        let _ = r
            .get_u64()
            .map_err(|e| AuditError::Integrity(e.to_string()))?;
        acc = Ubig::from_bytes_be(
            r.get_bytes()
                .map_err(|e| AuditError::Integrity(e.to_string()))?,
        );
    }

    Ok(IntegrityVerdict {
        glsn,
        ok: acc == deposit,
        initiator,
        messages: cluster.net().stats().messages_sent - start_messages,
    })
}

/// Checks every logged record from `initiator`.
///
/// # Errors
///
/// Propagates [`check_record`] failures.
pub fn check_all(
    cluster: &mut DlaCluster,
    initiator: usize,
) -> Result<Vec<IntegrityVerdict>, AuditError> {
    cluster
        .logged_glsns()
        .into_iter()
        .map(|glsn| check_record(cluster, glsn, initiator))
        .collect()
}

/// The verdict of a trail-level accumulator verification
/// ([`check_trail`] / [`check_window`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrailVerdict {
    /// Whether every verified digest matched its commitment.
    pub ok: bool,
    /// Whether the sealed-checkpoint hash chain verified link by link.
    pub chain_ok: bool,
    /// Epochs whose accumulators were re-derived and compared.
    pub epochs_checked: usize,
    /// Deposit items folded during verification — the work metric the
    /// epoch-sharding experiment compares windowed vs full.
    pub items_folded: u64,
}

/// Full-trail baseline verification: re-derives the whole-trail
/// accumulator `x₀^{∏ yᵢ}` over **every** deposit item (the unsharded
/// §4.1 cost, one logical fold per deposit) and compares against the
/// cluster's trail accumulator. Since the fold ladder collapses to one
/// fixed-base power of `x₀` (Eq. 9), the evaluation rides the cached
/// [`dla_crypto::accumulator::AccumulatorParams::power_of_start`]
/// table; the value is bit-identical to folding item by item.
/// O(total trail) regardless of how narrow the audit is.
#[must_use]
pub fn check_trail(cluster: &DlaCluster) -> TrailVerdict {
    let params = cluster.accumulator_params();
    let items: Vec<Vec<u8>> = cluster
        .logged_glsns()
        .into_iter()
        .map(|glsn| {
            let deposit = cluster.deposit(glsn).expect("logged glsns have deposits");
            crate::cluster::trail_item(glsn, deposit)
        })
        .collect();
    let refs: Vec<&[u8]> = items.iter().map(Vec::as_slice).collect();
    let acc = params.accumulate_batch(&refs);
    let items_folded = refs.len() as u64;
    TrailVerdict {
        ok: acc == *cluster.trail_accumulator() && items_folded == cluster.trail_items(),
        chain_ok: true,
        epochs_checked: 1,
        items_folded,
    }
}

/// Windowed verification over the epoch-sharded trail: verifies the
/// sealed-checkpoint hash chain end to end (O(#epochs) hashing, no
/// folds), then re-derives the accumulator of **only** the epochs whose
/// observed time range intersects `window` — sealed epochs against
/// their checkpointed digests, the open epoch against the running
/// accumulator. An unbounded window verifies every epoch.
///
/// Cost is proportional to the deposits inside the queried window, not
/// the trail length — the point of epoch sharding. The sealed epochs'
/// digests are checked in **one** random-linear-combination batch
/// (`x₀^{Σ rⱼEⱼ} = ∏ digestⱼ^{rⱼ}` via the fixed-base table and
/// multi-exponentiation) rather than one refold per epoch. Soundness:
/// epochs outside the window are still bound by the hash chain, so a
/// rewritten sealed epoch is caught by `chain_ok` even when its items
/// are never refolded.
#[must_use]
pub fn check_window(cluster: &DlaCluster, window: &crate::plan::TimeWindow) -> TrailVerdict {
    use std::collections::BTreeMap;
    let params = cluster.accumulator_params();
    let chain = cluster.checkpoint_chain();
    let chain_ok = chain.verify_links();
    let policy = cluster.epoch_policy();

    let selected: Vec<dla_logstore::epoch::EpochId> = cluster
        .epoch_stats()
        .filter(|s| {
            if window.is_unbounded() {
                return true;
            }
            match (s.time_lo, s.time_hi) {
                (Some(lo), Some(hi)) => window.intersects(lo, hi),
                // No time info ⇒ no record can satisfy a time
                // predicate (lenient eval) ⇒ outside every window.
                _ => false,
            }
        })
        .map(|s| s.epoch)
        .collect();

    // One pass over the deposits, grouped by selected epoch.
    let mut groups: BTreeMap<dla_logstore::epoch::EpochId, Vec<Vec<u8>>> = BTreeMap::new();
    for glsn in cluster.logged_glsns() {
        let epoch = policy.epoch_of(glsn);
        if selected.contains(&epoch) {
            let deposit = cluster.deposit(glsn).expect("logged glsns have deposits");
            groups
                .entry(epoch)
                .or_default()
                .push(crate::cluster::trail_item(glsn, deposit));
        }
    }

    let mut ok = chain_ok;
    let mut items_folded = 0u64;
    // Sealed epochs become claims `digest = x₀^{Eⱼ}` verified in one
    // random-linear-combination pass (one fixed-base power plus one
    // multi-exponentiation, instead of one refold per epoch); the open
    // epoch has no sealed digest and is compared directly.
    let mut claims: Vec<(Ubig, Ubig)> = Vec::new();
    for &epoch in &selected {
        let items = groups.remove(&epoch).unwrap_or_default();
        let refs: Vec<&[u8]> = items.iter().map(Vec::as_slice).collect();
        let exponent = params.batch_exponent(&refs);
        items_folded += refs.len() as u64;
        match chain.get(epoch.0) {
            Some(cp) => {
                ok &= cp.items == refs.len() as u64;
                claims.push((cp.digest.clone(), exponent));
            }
            None => {
                let stats = cluster.epoch_stat(epoch).expect("selected from stats");
                ok &= params.power_of_start(&exponent) == stats.acc;
            }
        }
    }
    ok &= params.batch_verify(&claims);

    TrailVerdict {
        ok,
        chain_ok,
        epochs_checked: selected.len(),
        items_folded,
    }
}

/// The federated extension of [`TrailVerdict`]: a sub-ring's local
/// verdict plus the root-ring cross-checks that bind the ring's sealed
/// history to the rest of the federation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FederatedTrailVerdict {
    /// The sub-ring's own verdict (local accumulator + chain).
    pub local: TrailVerdict,
    /// The root-ring cross-check
    /// ([`crate::federation::FederatedCluster::check_root`]): the
    /// global fold, per-ring chain endorsements and cross-ring
    /// endorsement records all verified.
    pub root: crate::federation::RootVerdict,
}

impl FederatedTrailVerdict {
    /// Whether both the local and the root-ring checks passed.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.local.ok && self.local.chain_ok && self.root.ok()
    }
}

/// Federated [`check_trail`]: full-trail verification of sub-ring
/// `ring` **plus** the root accumulator cross-check. A sub-ring that
/// rewrites a deposit fails the local leg; one that rewrites a *sealed,
/// published* epoch (consistently, journal and all) passes its own
/// refold but fails the root leg — the published checkpoint no longer
/// matches its chain and the global fold cannot be reproduced from the
/// rings' current heads.
#[must_use]
pub fn check_federated_trail(
    federation: &crate::federation::FederatedCluster,
    ring: usize,
) -> FederatedTrailVerdict {
    FederatedTrailVerdict {
        local: check_trail(federation.ring(ring)),
        root: federation.check_root(),
    }
}

/// Federated [`check_window`]: windowed verification of sub-ring
/// `ring` against both its local chain and the root accumulator. The
/// windowed leg folds only the epochs intersecting `window` (the
/// epoch-sharding cost bound survives federation); the root leg is
/// O(published checkpoints) regardless of the window.
#[must_use]
pub fn check_federated_window(
    federation: &crate::federation::FederatedCluster,
    ring: usize,
    window: &crate::plan::TimeWindow,
) -> FederatedTrailVerdict {
    FederatedTrailVerdict {
        local: check_window(federation.ring(ring), window),
        root: federation.check_root(),
    }
}

/// The result of a cross-node ACL consistency check for one ticket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AclConsistency {
    /// The ticket checked.
    pub ticket: TicketId,
    /// Whether every node agrees on the ticket's authorization set.
    pub consistent: bool,
    /// The agreed set size (intersection cardinality).
    pub agreed: usize,
    /// Per-node authorization set sizes (the secondary information the
    /// relaxed model permits to leak).
    pub sizes: Vec<usize>,
}

/// Verifies that all DLA nodes hold identical authorization sets for
/// `ticket` (§4.1: "one could use secure set intersection to check the
/// consistency of each ticket's authorization set"). The sets are
/// identical iff the intersection cardinality equals every individual
/// set size.
///
/// # Errors
///
/// Returns [`AuditError`] on protocol failure.
pub fn check_acl_consistency(
    cluster: &mut DlaCluster,
    ticket: &TicketId,
) -> Result<AclConsistency, AuditError> {
    let n = cluster.num_nodes();
    let inputs: Vec<Vec<Vec<u8>>> = (0..n)
        .map(|i| {
            cluster
                .node(i)
                .store()
                .acl()
                .glsns_of(ticket)
                .iter()
                .map(|g| g.0.to_be_bytes().to_vec())
                .collect()
        })
        .collect();
    let sizes: Vec<usize> = inputs.iter().map(Vec::len).collect();
    let ring = Ring::canonical(n);
    let auditor = cluster.auditor_node();
    let domain = cluster.domain().clone();
    let (mut net, rng) = cluster.net_and_rng();
    let outcome = secure_set_intersection(&mut net, &ring, &domain, &inputs, auditor, false, rng)
        .map_err(AuditError::Mpc)?;
    let agreed = outcome.cardinality();
    Ok(AclConsistency {
        ticket: ticket.clone(),
        consistent: sizes.iter().all(|&s| s == agreed),
        agreed,
        sizes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{AppUser, ClusterConfig};
    use dla_logstore::fragment::Partition;
    use dla_logstore::gen::paper_table1;
    use dla_logstore::model::AttrValue;
    use dla_logstore::schema::Schema;

    fn loaded() -> (DlaCluster, AppUser, Vec<Glsn>) {
        let schema = Schema::paper_example();
        let partition = Partition::paper_example(&schema);
        let mut cluster = DlaCluster::new(
            ClusterConfig::new(4, schema)
                .with_partition(partition)
                .with_seed(31),
        )
        .unwrap();
        let user = cluster.register_user("u0").unwrap();
        let glsns = cluster.log_records(&user, &paper_table1()).unwrap();
        (cluster, user, glsns)
    }

    #[test]
    fn untampered_records_pass_from_any_initiator() {
        let (mut cluster, _, glsns) = loaded();
        for initiator in 0..4 {
            let verdict = check_record(&mut cluster, glsns[0], initiator).unwrap();
            assert!(verdict.ok, "initiator {initiator}");
            assert_eq!(verdict.messages, 4, "n messages per circulation");
        }
    }

    #[test]
    fn check_all_passes_on_clean_cluster() {
        let (mut cluster, _, _) = loaded();
        let verdicts = check_all(&mut cluster, 0).unwrap();
        assert_eq!(verdicts.len(), 5);
        assert!(verdicts.iter().all(|v| v.ok));
    }

    #[test]
    fn tampered_value_detected() {
        let (mut cluster, _, glsns) = loaded();
        // A compromised P1 alters a stored c2 amount.
        assert!(cluster.node_mut(1).store_mut().tamper(
            glsns[2],
            &"c2".into(),
            AttrValue::Fixed2(1)
        ));
        let verdict = check_record(&mut cluster, glsns[2], 0).unwrap();
        assert!(!verdict.ok, "tampering must be detected");
        // Other records unaffected.
        assert!(check_record(&mut cluster, glsns[0], 0).unwrap().ok);
    }

    #[test]
    fn tampering_detected_even_by_the_tamperer_node_as_initiator() {
        let (mut cluster, _, glsns) = loaded();
        cluster
            .node_mut(3)
            .store_mut()
            .tamper(glsns[1], &"c1".into(), AttrValue::Int(999));
        let verdict = check_record(&mut cluster, glsns[1], 3).unwrap();
        assert!(!verdict.ok);
    }

    #[test]
    fn deleted_fragment_detected() {
        let (mut cluster, user, glsns) = loaded();
        // Delete needs a D-capable path; simulate loss via tamper-free
        // removal through the test hook: re-create store without glsn.
        // Simplest: tamper is value-level, so emulate deletion by
        // checking a glsn that one node never stored — log a record,
        // then wipe its store entry via delete with an all-ops ticket.
        let _ = user;
        // Direct internal manipulation: take the fragment out.
        let frag = cluster
            .node(2)
            .store()
            .get_local(glsns[4])
            .cloned()
            .unwrap();
        assert_eq!(frag.glsn, glsns[4]);
        // No public delete without ticket; emulate a crashed node by
        // tampering all values (equivalent detection path).
        cluster
            .node_mut(2)
            .store_mut()
            .tamper(glsns[4], &"tid".into(), AttrValue::text("gone"));
        assert!(!check_record(&mut cluster, glsns[4], 1).unwrap().ok);
    }

    #[test]
    fn unknown_glsn_is_an_error() {
        let (mut cluster, _, _) = loaded();
        assert!(check_record(&mut cluster, Glsn(0xdead), 0).is_err());
    }

    #[test]
    fn acl_consistency_on_clean_cluster() {
        let (mut cluster, user, _) = loaded();
        let result = check_acl_consistency(&mut cluster, &user.ticket.id).unwrap();
        assert!(result.consistent);
        assert_eq!(result.agreed, 5);
        assert_eq!(result.sizes, vec![5, 5, 5, 5]);
    }

    #[test]
    fn acl_inconsistency_detected() {
        let (mut cluster, user, _) = loaded();
        // A compromised node grants itself an extra glsn under the
        // user's ticket.
        let ticket = user.ticket.clone();
        let rogue = Glsn(0xEEEE);
        cluster
            .node_mut(2)
            .store_mut()
            .acl_mut_for_tests()
            .authorize(&ticket, rogue);
        let result = check_acl_consistency(&mut cluster, &ticket.id).unwrap();
        assert!(!result.consistent);
        assert_eq!(result.agreed, 5);
        assert_eq!(result.sizes, vec![5, 5, 6, 5]);
    }

    #[test]
    fn acl_check_for_unknown_ticket_is_vacuously_consistent() {
        let (mut cluster, _, _) = loaded();
        let result = check_acl_consistency(&mut cluster, &TicketId::new("T999")).unwrap();
        assert!(result.consistent);
        assert_eq!(result.agreed, 0);
    }

    fn survivors(alive: &[usize]) -> std::collections::BTreeSet<usize> {
        alive.iter().copied().collect()
    }

    #[test]
    fn survivor_check_fails_when_a_dead_node_is_not_rehosted() {
        let (mut cluster, _, glsns) = loaded();
        // Node 2 is gone and nobody adopted its fragments: the missing
        // marker folds in and the deposit cannot be reproduced.
        let verdict =
            check_record_among(&mut cluster, glsns[0], 0, &survivors(&[0, 1, 3])).unwrap();
        assert!(!verdict.ok);
    }

    #[test]
    fn survivor_check_passes_once_fragments_are_rehosted() {
        let (mut cluster, _, glsns) = loaded();
        for &glsn in &glsns {
            let frag = cluster.node(2).store().get_local(glsn).cloned().unwrap();
            cluster.node_mut(3).store_mut().adopt(frag).unwrap();
        }
        for &glsn in &glsns {
            let verdict =
                check_record_among(&mut cluster, glsn, 0, &survivors(&[0, 1, 3])).unwrap();
            assert!(verdict.ok, "repaired copy must reproduce the deposit");
            // Two forward hops plus the return to the initiator.
            assert_eq!(verdict.messages, 3);
        }
        // The full-ring check over all four nodes still passes: adopted
        // fragments never double-fold when the owner is alive.
        assert!(check_record(&mut cluster, glsns[0], 0).unwrap().ok);
    }

    #[test]
    fn survivor_check_detects_a_tampered_adopted_copy() {
        let (mut cluster, _, glsns) = loaded();
        let mut frag = cluster
            .node(2)
            .store()
            .get_local(glsns[1])
            .cloned()
            .unwrap();
        frag.values.insert("tid".into(), AttrValue::text("forged"));
        cluster.node_mut(3).store_mut().adopt(frag).unwrap();
        let verdict =
            check_record_among(&mut cluster, glsns[1], 0, &survivors(&[0, 1, 3])).unwrap();
        assert!(!verdict.ok, "a forged adopted fragment must not verify");
    }

    #[test]
    fn survivor_check_with_full_membership_matches_check_record() {
        let (mut cluster, _, glsns) = loaded();
        let verdict =
            check_record_among(&mut cluster, glsns[0], 1, &survivors(&[0, 1, 2, 3])).unwrap();
        assert!(verdict.ok);
        assert_eq!(verdict.messages, 4);
    }

    fn epoch_loaded() -> (DlaCluster, Vec<Glsn>) {
        let schema = Schema::paper_example();
        let partition = Partition::paper_example(&schema);
        let mut cluster = DlaCluster::new(
            ClusterConfig::new(4, schema)
                .with_partition(partition)
                .with_seed(31)
                .with_epoch_length(2),
        )
        .unwrap();
        let user = cluster.register_user("u0").unwrap();
        let glsns = cluster.log_records(&user, &paper_table1()).unwrap();
        (cluster, glsns)
    }

    #[test]
    fn full_trail_check_passes_and_folds_everything() {
        let (cluster, glsns) = epoch_loaded();
        let verdict = check_trail(&cluster);
        assert!(verdict.ok);
        assert_eq!(verdict.items_folded, glsns.len() as u64);
    }

    #[test]
    fn windowed_check_folds_only_overlapping_epochs() {
        let (cluster, _) = epoch_loaded();
        // Window covering only epoch 0's two records.
        let e0 = cluster.epoch_stat(dla_logstore::epoch::EpochId(0)).unwrap();
        let window = crate::plan::TimeWindow {
            lo: Some(e0.time_lo.unwrap()),
            hi: Some(e0.time_hi.unwrap()),
        };
        let verdict = check_window(&cluster, &window);
        assert!(verdict.ok);
        assert!(verdict.chain_ok);
        assert_eq!(verdict.epochs_checked, 1);
        assert_eq!(verdict.items_folded, 2, "only epoch 0's items refolded");
        // Unbounded windows verify every epoch and every item.
        let full = check_window(&cluster, &crate::plan::TimeWindow::unbounded());
        assert!(full.ok);
        assert_eq!(full.epochs_checked, 3);
        assert_eq!(full.items_folded, 5);
    }

    #[test]
    fn windowed_check_detects_deposit_tampering_inside_the_window() {
        let (mut cluster, glsns) = epoch_loaded();
        // Rewrite the deposit map entry for a record in epoch 0 — the
        // refold no longer matches the sealed checkpoint digest.
        cluster.tamper_deposit_for_tests(glsns[0], Ubig::from_u64(12345));
        let e0 = cluster.epoch_stat(dla_logstore::epoch::EpochId(0)).unwrap();
        let window = crate::plan::TimeWindow {
            lo: Some(e0.time_lo.unwrap()),
            hi: Some(e0.time_hi.unwrap()),
        };
        let verdict = check_window(&cluster, &window);
        assert!(!verdict.ok, "tampered deposit must break the checkpoint");
        assert!(verdict.chain_ok, "the chain itself is untouched");
    }
}
