//! Cost accounting primitives: the operation taxonomy behind the
//! paper's relaxed-vs-classical efficiency argument (§3, §6).
//!
//! Instrumented call sites report individual operations through a
//! [`CostSink`]; the default sink aggregates them into a [`CostVector`]
//! attributed to the innermost active cost scope (normally one protocol
//! session), so every session ends up with an exact op/byte/round
//! budget.

use std::fmt;

/// One countable operation class.
///
/// Crypto kinds are charged by `dla-bigint`/`dla-crypto`, network kinds
/// by `dla-net`, and `Round` by the protocol meters in `dla-mpc`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CostKind {
    /// Modular exponentiation (Montgomery or schoolbook).
    ModExp,
    /// One Montgomery multiplication/squaring step inside an
    /// exponentiation — the real unit of work a [`CostKind::ModExp`]
    /// hides (a 3-bit and a 512-bit exponent differ by two orders of
    /// magnitude in steps).
    MontMulStep,
    /// One radix-2^w fixed-base table constructed (the precompute a
    /// [`CostKind::MontMulStep`]-counted build pays once and every
    /// subsequent fixed-base power amortises).
    FixedBaseTableBuild,
    /// One `(base, exponent)` term evaluated inside a Straus/Pippenger
    /// multi-exponentiation (the batch analogue of [`CostKind::ModExp`]).
    MultiExpTerm,
    /// Modular inverse (extended Euclid).
    ModInverse,
    /// One-way accumulator fold (§4.1).
    AccumulatorFold,
    /// Shamir polynomial evaluation (share issue).
    ShamirEval,
    /// Message handed to the transport.
    MsgSent,
    /// Payload bytes handed to the transport.
    BytesSent,
    /// Message delivered to a receiver (duplicates included).
    MsgDelivered,
    /// Frame resent by the reliable (ARQ) layer.
    Retransmit,
    /// Receive deadline expired in the reliable layer.
    Timeout,
    /// Protocol-defined communication round.
    Round,
    /// An epoch of the log trail was sealed (its accumulator digest
    /// checkpointed).
    EpochSeal,
    /// One batch processed by the batched deposit pipeline (amortized
    /// journal fsync + accumulator fold).
    DepositBatch,
    /// One epoch's aggregate partials materialized at seal time
    /// (count/sum buckets cached into the manifest).
    PartialMaterialize,
    /// One cached per-epoch partial combined into a windowed aggregate
    /// answer instead of rescanning the epoch's fragments.
    PartialCombine,
    /// One standing-query delta emitted at epoch seal.
    StandingDelta,
}

impl CostKind {
    /// Stable lowercase identifier used by the JSON exporters.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CostKind::ModExp => "modexp",
            CostKind::MontMulStep => "mont_mul_steps",
            CostKind::FixedBaseTableBuild => "fixed_base_builds",
            CostKind::MultiExpTerm => "multi_exp_terms",
            CostKind::ModInverse => "modinv",
            CostKind::AccumulatorFold => "acc_fold",
            CostKind::ShamirEval => "shamir_eval",
            CostKind::MsgSent => "messages_sent",
            CostKind::BytesSent => "bytes_sent",
            CostKind::MsgDelivered => "messages_delivered",
            CostKind::Retransmit => "retransmits",
            CostKind::Timeout => "timeouts",
            CostKind::Round => "rounds",
            CostKind::EpochSeal => "epoch_seals",
            CostKind::DepositBatch => "deposit_batches",
            CostKind::PartialMaterialize => "partials_materialized",
            CostKind::PartialCombine => "partials_combined",
            CostKind::StandingDelta => "standing_deltas",
        }
    }
}

/// Aggregated operation counts for one attribution bucket.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostVector {
    /// Modular exponentiations.
    pub modexp: u64,
    /// Montgomery multiplication/squaring steps performed inside
    /// exponentiations.
    pub mont_mul_steps: u64,
    /// Fixed-base tables built.
    pub fixed_base_builds: u64,
    /// Terms evaluated by multi-exponentiation kernels.
    pub multi_exp_terms: u64,
    /// Modular inverses.
    pub modinv: u64,
    /// Accumulator folds.
    pub acc_fold: u64,
    /// Shamir polynomial evaluations.
    pub shamir_eval: u64,
    /// Messages handed to the transport.
    pub msgs_sent: u64,
    /// Payload bytes handed to the transport.
    pub bytes_sent: u64,
    /// Messages delivered (duplicates included).
    pub msgs_delivered: u64,
    /// Frames resent by the reliable layer.
    pub retransmits: u64,
    /// Receive timeouts in the reliable layer.
    pub timeouts: u64,
    /// Protocol rounds.
    pub rounds: u64,
    /// Epoch seals (checkpointed accumulator digests).
    pub epoch_seals: u64,
    /// Batches processed by the batched deposit pipeline.
    pub deposit_batches: u64,
    /// Epoch aggregate partials materialized at seal time.
    pub partials_materialized: u64,
    /// Cached per-epoch partials combined into windowed answers.
    pub partials_combined: u64,
    /// Standing-query deltas emitted at epoch seals.
    pub standing_deltas: u64,
}

impl CostVector {
    /// Adds `amount` to the counter selected by `kind`.
    pub fn add(&mut self, kind: CostKind, amount: u64) {
        let slot = match kind {
            CostKind::ModExp => &mut self.modexp,
            CostKind::MontMulStep => &mut self.mont_mul_steps,
            CostKind::FixedBaseTableBuild => &mut self.fixed_base_builds,
            CostKind::MultiExpTerm => &mut self.multi_exp_terms,
            CostKind::ModInverse => &mut self.modinv,
            CostKind::AccumulatorFold => &mut self.acc_fold,
            CostKind::ShamirEval => &mut self.shamir_eval,
            CostKind::MsgSent => &mut self.msgs_sent,
            CostKind::BytesSent => &mut self.bytes_sent,
            CostKind::MsgDelivered => &mut self.msgs_delivered,
            CostKind::Retransmit => &mut self.retransmits,
            CostKind::Timeout => &mut self.timeouts,
            CostKind::Round => &mut self.rounds,
            CostKind::EpochSeal => &mut self.epoch_seals,
            CostKind::DepositBatch => &mut self.deposit_batches,
            CostKind::PartialMaterialize => &mut self.partials_materialized,
            CostKind::PartialCombine => &mut self.partials_combined,
            CostKind::StandingDelta => &mut self.standing_deltas,
        };
        *slot += amount;
    }

    /// Accumulates every counter of `other` into `self`.
    pub fn merge(&mut self, other: &CostVector) {
        self.modexp += other.modexp;
        self.mont_mul_steps += other.mont_mul_steps;
        self.fixed_base_builds += other.fixed_base_builds;
        self.multi_exp_terms += other.multi_exp_terms;
        self.modinv += other.modinv;
        self.acc_fold += other.acc_fold;
        self.shamir_eval += other.shamir_eval;
        self.msgs_sent += other.msgs_sent;
        self.bytes_sent += other.bytes_sent;
        self.msgs_delivered += other.msgs_delivered;
        self.retransmits += other.retransmits;
        self.timeouts += other.timeouts;
        self.rounds += other.rounds;
        self.epoch_seals += other.epoch_seals;
        self.deposit_batches += other.deposit_batches;
        self.partials_materialized += other.partials_materialized;
        self.partials_combined += other.partials_combined;
        self.standing_deltas += other.standing_deltas;
    }

    /// True when every counter is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        *self == CostVector::default()
    }

    /// `(label, value)` pairs in a stable order, for exporters.
    #[must_use]
    pub fn entries(&self) -> [(&'static str, u64); 18] {
        [
            ("modexp", self.modexp),
            ("mont_mul_steps", self.mont_mul_steps),
            ("fixed_base_builds", self.fixed_base_builds),
            ("multi_exp_terms", self.multi_exp_terms),
            ("modinv", self.modinv),
            ("acc_fold", self.acc_fold),
            ("shamir_eval", self.shamir_eval),
            ("messages_sent", self.msgs_sent),
            ("bytes_sent", self.bytes_sent),
            ("messages_delivered", self.msgs_delivered),
            ("retransmits", self.retransmits),
            ("timeouts", self.timeouts),
            ("rounds", self.rounds),
            ("epoch_seals", self.epoch_seals),
            ("deposit_batches", self.deposit_batches),
            ("partials_materialized", self.partials_materialized),
            ("partials_combined", self.partials_combined),
            ("standing_deltas", self.standing_deltas),
        ]
    }
}

impl fmt::Display for CostVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (label, value) in self.entries() {
            if value != 0 {
                if !first {
                    write!(f, " ")?;
                }
                write!(f, "{label}={value}")?;
                first = false;
            }
        }
        if first {
            write!(f, "(zero)")?;
        }
        Ok(())
    }
}

/// Destination for individual cost records.
///
/// Instrumented crates are written against this trait so the
/// accounting backend can be swapped; [`ThreadSink`] routes into the
/// per-thread collector of the active [`Recorder`](crate::Recorder),
/// [`NoopSink`] discards everything (the disabled default).
pub trait CostSink {
    /// Records `amount` operations of class `kind`.
    fn record_cost(&self, kind: CostKind, amount: u64);
}

/// Sink that discards every record — the off-by-default path.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl CostSink for NoopSink {
    fn record_cost(&self, _kind: CostKind, _amount: u64) {}
}

/// Sink that forwards to the recorder installed on the calling thread
/// (a no-op when none is installed). This is what
/// [`record`](crate::record) uses under the hood.
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadSink;

impl CostSink for ThreadSink {
    fn record_cost(&self, kind: CostKind, amount: u64) {
        crate::record(kind, amount);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_routes_every_kind_to_its_counter() {
        let kinds = [
            CostKind::ModExp,
            CostKind::MontMulStep,
            CostKind::FixedBaseTableBuild,
            CostKind::MultiExpTerm,
            CostKind::ModInverse,
            CostKind::AccumulatorFold,
            CostKind::ShamirEval,
            CostKind::MsgSent,
            CostKind::BytesSent,
            CostKind::MsgDelivered,
            CostKind::Retransmit,
            CostKind::Timeout,
            CostKind::Round,
            CostKind::EpochSeal,
            CostKind::DepositBatch,
            CostKind::PartialMaterialize,
            CostKind::PartialCombine,
            CostKind::StandingDelta,
        ];
        let mut v = CostVector::default();
        for (i, kind) in kinds.iter().enumerate() {
            v.add(*kind, (i + 1) as u64);
        }
        let values: Vec<u64> = v.entries().iter().map(|(_, n)| *n).collect();
        assert_eq!(
            values,
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18]
        );
        assert!(!v.is_zero());
    }

    #[test]
    fn merge_is_componentwise_addition() {
        let mut a = CostVector::default();
        a.add(CostKind::ModExp, 3);
        a.add(CostKind::BytesSent, 100);
        let mut b = CostVector::default();
        b.add(CostKind::ModExp, 2);
        b.add(CostKind::Round, 1);
        a.merge(&b);
        assert_eq!(a.modexp, 5);
        assert_eq!(a.bytes_sent, 100);
        assert_eq!(a.rounds, 1);
    }

    #[test]
    fn display_skips_zero_counters() {
        let mut v = CostVector::default();
        v.add(CostKind::ModExp, 7);
        assert_eq!(v.to_string(), "modexp=7");
        assert_eq!(CostVector::default().to_string(), "(zero)");
    }

    #[test]
    fn noop_sink_accepts_records() {
        NoopSink.record_cost(CostKind::ModExp, 1_000_000);
    }
}
