//! Trace exporters: a self-describing JSON dump, a Chrome-trace
//! (`chrome://tracing` / Perfetto) event file, and cost-breakdown JSON
//! fragments used by the bench binaries.
//!
//! All output is hand-rendered JSON (the workspace is offline — no
//! serde); [`json_escape`] handles the string encoding.

use crate::cost::CostVector;
use crate::trace::Trace;
use std::fmt::Write as _;

/// Escapes `s` for inclusion inside a JSON string literal.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn kvs_json(kvs: &[(String, String)]) -> String {
    let fields: Vec<String> = kvs
        .iter()
        .map(|(k, v)| format!("\"{}\": \"{}\"", json_escape(k), json_escape(v)))
        .collect();
    format!("{{{}}}", fields.join(", "))
}

/// Renders a [`CostVector`] as a JSON object with stable keys.
#[must_use]
pub fn cost_vector_json(costs: &CostVector) -> String {
    let fields: Vec<String> = costs
        .entries()
        .iter()
        .map(|(label, value)| format!("\"{label}\": {value}"))
        .collect();
    format!("{{{}}}", fields.join(", "))
}

/// Full trace dump: spans, events, per-scope costs and the
/// unattributed remainder, all in one JSON document.
#[must_use]
pub fn trace_json(trace: &Trace) -> String {
    let mut out = String::from("{\n  \"spans\": [\n");
    let spans: Vec<String> = trace
        .spans
        .iter()
        .map(|s| {
            format!(
                "    {{\"id\": {}, \"parent\": {}, \"category\": \"{}\", \"name\": \"{}\", \
                 \"session\": {}, \"start_ns\": {}, \"end_ns\": {}}}",
                s.id,
                s.parent,
                json_escape(s.category),
                json_escape(&s.name),
                s.session,
                s.start_ns,
                s.end_ns
            )
        })
        .collect();
    out.push_str(&spans.join(",\n"));
    out.push_str("\n  ],\n  \"events\": [\n");
    let events: Vec<String> = trace
        .events
        .iter()
        .map(|e| {
            format!(
                "    {{\"span\": {}, \"name\": \"{}\", \"at_ns\": {}, \"args\": {}}}",
                e.span,
                json_escape(&e.name),
                e.at_ns,
                kvs_json(&e.kvs)
            )
        })
        .collect();
    out.push_str(&events.join(",\n"));
    out.push_str("\n  ],\n  \"scopes\": [\n");
    let scopes: Vec<String> = trace
        .scopes
        .iter()
        .map(|sc| {
            format!(
                "    {{\"label\": \"{}\", \"session\": {}, \"costs\": {}}}",
                json_escape(&sc.label),
                sc.session,
                cost_vector_json(&sc.costs)
            )
        })
        .collect();
    out.push_str(&scopes.join(",\n"));
    let _ = write!(
        out,
        "\n  ],\n  \"unattributed\": {}\n}}\n",
        cost_vector_json(&trace.unattributed)
    );
    out
}

/// Virtual nanoseconds rendered as the fractional microseconds Chrome
/// trace timestamps use.
fn chrome_ts(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Renders the trace in the Chrome trace-event format (JSON array
/// flavour): spans become complete (`"ph": "X"`) events, point events
/// become thread-scoped instants (`"ph": "i"`). Load the file at
/// `chrome://tracing` or <https://ui.perfetto.dev>; lanes (`tid`) are
/// protocol sessions.
#[must_use]
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut entries = Vec::new();
    for s in &trace.spans {
        entries.push(format!(
            "  {{\"name\": \"{}\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \
             \"pid\": 0, \"tid\": {}, \"args\": {{\"span_id\": {}, \"parent\": {}}}}}",
            json_escape(&s.name),
            json_escape(s.category),
            chrome_ts(s.start_ns),
            chrome_ts(s.end_ns.saturating_sub(s.start_ns)),
            s.session,
            s.id,
            s.parent
        ));
    }
    for (span, name, at_ns, kvs) in trace
        .events
        .iter()
        .map(|e| (e.span, &e.name, e.at_ns, &e.kvs))
    {
        let session = trace
            .spans
            .iter()
            .find(|s| s.id == span)
            .map_or(0, |s| s.session);
        entries.push(format!(
            "  {{\"name\": \"{}\", \"cat\": \"event\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {}, \
             \"pid\": 0, \"tid\": {}, \"args\": {}}}",
            json_escape(name),
            chrome_ts(at_ns),
            session,
            kvs_json(kvs)
        ));
    }
    format!("[\n{}\n]\n", entries.join(",\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostKind;
    use crate::trace::{EventRecord, ScopeRecord, SpanRecord};

    fn sample_trace() -> Trace {
        let mut costs = CostVector::default();
        costs.add(CostKind::ModExp, 12);
        costs.add(CostKind::MsgSent, 6);
        Trace {
            spans: vec![
                SpanRecord {
                    id: 1,
                    parent: 0,
                    category: "query",
                    name: "q\"uoted".to_string(),
                    session: 0,
                    start_ns: 0,
                    end_ns: 2_500,
                },
                SpanRecord {
                    id: 2,
                    parent: 1,
                    category: "protocol",
                    name: "ssi".to_string(),
                    session: 3,
                    start_ns: 500,
                    end_ns: 1_500,
                },
            ],
            events: vec![EventRecord {
                span: 2,
                name: "relay-hop".to_string(),
                at_ns: 750,
                kvs: vec![("from".to_string(), "0".to_string())],
            }],
            scopes: vec![ScopeRecord {
                label: "ssi".to_string(),
                session: 3,
                costs,
            }],
            unattributed: CostVector::default(),
        }
    }

    /// Minimal structural JSON validation: balanced delimiters outside
    /// strings, and legal escape usage. The CI gate re-validates the
    /// emitted files with `python3 -m json.tool`.
    fn check_balanced(json: &str) {
        let mut depth: i64 = 0;
        let mut in_string = false;
        let mut escaped = false;
        for c in json.chars() {
            if in_string {
                if escaped {
                    escaped = false;
                } else if c == '\\' {
                    escaped = true;
                } else if c == '"' {
                    in_string = false;
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' | '[' => depth += 1,
                '}' | ']' => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0, "unbalanced close in: {json}");
        }
        assert_eq!(depth, 0, "unbalanced JSON: {json}");
        assert!(!in_string, "unterminated string in: {json}");
    }

    #[test]
    fn escape_handles_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b"), "a\\\"b");
        assert_eq!(json_escape("a\\b"), "a\\\\b");
        assert_eq!(json_escape("a\nb"), "a\\nb");
        assert_eq!(json_escape("a\u{1}b"), "a\\u0001b");
    }

    #[test]
    fn trace_json_is_structurally_valid() {
        let json = trace_json(&sample_trace());
        check_balanced(&json);
        assert!(json.contains("\"spans\""));
        assert!(json.contains("q\\\"uoted"));
        assert!(json.contains("\"modexp\": 12"));
    }

    #[test]
    fn chrome_trace_is_structurally_valid_and_in_microseconds() {
        let json = chrome_trace_json(&sample_trace());
        check_balanced(&json);
        // 500 ns start → 0.500 µs; 1000 ns duration → 1.000 µs.
        assert!(json.contains("\"ts\": 0.500"));
        assert!(json.contains("\"dur\": 1.000"));
        // The instant event inherits its span's session lane.
        assert!(json.contains("\"ph\": \"i\", \"s\": \"t\", \"ts\": 0.750, \"pid\": 0, \"tid\": 3"));
    }

    #[test]
    fn empty_trace_exports_are_valid() {
        check_balanced(&trace_json(&Trace::default()));
        check_balanced(&chrome_trace_json(&Trace::default()));
        assert_eq!(chrome_trace_json(&Trace::default()), "[\n\n]\n");
    }
}
