//! Tamper-evident meta-audit journal.
//!
//! The DLA cluster records its *own* actions — deposits accepted,
//! re-replications performed, degraded-mode decisions taken — as
//! [`MetaRecord`]s chained by a collision-resistant hash: each link is
//! `h_i = H(h_{i-1} ‖ encode(i, record_i))`, with the record's position
//! bound into the preimage. An operator holding the chain head can
//! therefore detect a truncated, reordered or rewritten activity log.
//!
//! The hash function is injected (`fn(&[u8]) -> Vec<u8>`) so this crate
//! stays dependency-free; the audit layer wires in its SHA-256 and
//! additionally folds each link into the paper's one-way accumulator
//! (§4.1). Position binding matters for that second check: the
//! accumulator is quasi-commutative, so only because verification
//! recomputes item `i` from the record *at index `i`* does a reordered
//! journal produce a different accumulated value.

use std::fmt;

/// Hash function used for chaining. Output length is up to the caller
/// (32 bytes for the SHA-256 used by the audit layer).
pub type ChainHasher = fn(&[u8]) -> Vec<u8>;

/// Domain-separation prefix hashed into the genesis head.
pub const GENESIS_TAG: &[u8] = b"dla-meta-audit-v1";

/// One cluster-level action in the meta-audit trail.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetaRecord {
    /// Position in the journal (assigned on append, starting at 0).
    pub seq: u64,
    /// Virtual time of the action in nanoseconds.
    pub at_ns: u64,
    /// Acting component ("cluster", "node3", "executor", ...).
    pub actor: String,
    /// Action class ("deposit", "rereplicate", "degraded-replan", ...).
    pub action: String,
    /// Free-form detail (glsn, survivor set, ...).
    pub detail: String,
}

impl MetaRecord {
    /// Canonical byte encoding of the record *at position `index`*.
    ///
    /// The index parameter — not `self.seq` — is bound into the
    /// preimage, so verification derives positions from the journal
    /// order it was handed, and a reordered journal cannot re-present
    /// consistent encodings.
    #[must_use]
    pub fn encode_at(&self, index: u64) -> Vec<u8> {
        let mut out =
            Vec::with_capacity(32 + self.actor.len() + self.action.len() + self.detail.len());
        out.extend_from_slice(&index.to_be_bytes());
        out.extend_from_slice(&self.at_ns.to_be_bytes());
        for field in [&self.actor, &self.action, &self.detail] {
            out.extend_from_slice(&(field.len() as u32).to_be_bytes());
            out.extend_from_slice(field.as_bytes());
        }
        out
    }
}

impl fmt::Display for MetaRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} t={}ns {} {}: {}",
            self.seq, self.at_ns, self.actor, self.action, self.detail
        )
    }
}

/// Verification failure for a presented journal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetaAuditError {
    /// A record's stored `seq` disagrees with its position — the
    /// journal was reordered or spliced.
    SequenceMismatch {
        /// Position of the offending record.
        index: usize,
        /// The `seq` the record claims.
        found: u64,
    },
    /// The recomputed chain head differs from the expected head — the
    /// journal was truncated, extended or rewritten.
    HeadMismatch,
}

impl fmt::Display for MetaAuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetaAuditError::SequenceMismatch { index, found } => write!(
                f,
                "meta-audit record at position {index} claims seq {found}: journal reordered"
            ),
            MetaAuditError::HeadMismatch => {
                write!(
                    f,
                    "meta-audit chain head mismatch: journal truncated or rewritten"
                )
            }
        }
    }
}

impl std::error::Error for MetaAuditError {}

/// Append-only journal of [`MetaRecord`]s with an incrementally
/// maintained chain head.
pub struct MetaJournal {
    hasher: ChainHasher,
    records: Vec<MetaRecord>,
    head: Vec<u8>,
}

impl fmt::Debug for MetaJournal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetaJournal")
            .field("records", &self.records.len())
            .field("head", &self.head)
            .finish()
    }
}

impl MetaJournal {
    /// Empty journal; the head starts at `H(GENESIS_TAG)`.
    #[must_use]
    pub fn new(hasher: ChainHasher) -> Self {
        let head = hasher(GENESIS_TAG);
        MetaJournal {
            hasher,
            records: Vec::new(),
            head,
        }
    }

    /// Appends an action record, advances the chain head, and returns
    /// a reference to the stored record (with its assigned `seq`).
    pub fn append(
        &mut self,
        at_ns: u64,
        actor: impl Into<String>,
        action: impl Into<String>,
        detail: impl Into<String>,
    ) -> &MetaRecord {
        let record = MetaRecord {
            seq: self.records.len() as u64,
            at_ns,
            actor: actor.into(),
            action: action.into(),
            detail: detail.into(),
        };
        self.head = Self::link(self.hasher, &self.head, &record, record.seq);
        self.records.push(record);
        self.records.last().expect("just pushed")
    }

    /// Current chain head.
    #[must_use]
    pub fn head(&self) -> &[u8] {
        &self.head
    }

    /// All records in append order.
    #[must_use]
    pub fn records(&self) -> &[MetaRecord] {
        &self.records
    }

    /// Number of records.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no action has been journaled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    fn link(hasher: ChainHasher, prev: &[u8], record: &MetaRecord, index: u64) -> Vec<u8> {
        let mut preimage = Vec::with_capacity(prev.len() + 64);
        preimage.extend_from_slice(prev);
        preimage.extend_from_slice(&record.encode_at(index));
        hasher(&preimage)
    }

    /// Recomputes the chain head for a presented record sequence.
    #[must_use]
    pub fn chain_head(records: &[MetaRecord], hasher: ChainHasher) -> Vec<u8> {
        let mut head = hasher(GENESIS_TAG);
        for (i, record) in records.iter().enumerate() {
            head = Self::link(hasher, &head, record, i as u64);
        }
        head
    }

    /// Verifies a presented journal against an expected chain head:
    /// every record's `seq` must match its position and the recomputed
    /// head must equal `expected_head`.
    pub fn verify(
        records: &[MetaRecord],
        expected_head: &[u8],
        hasher: ChainHasher,
    ) -> Result<(), MetaAuditError> {
        for (i, record) in records.iter().enumerate() {
            if record.seq != i as u64 {
                return Err(MetaAuditError::SequenceMismatch {
                    index: i,
                    found: record.seq,
                });
            }
        }
        if Self::chain_head(records, hasher) != expected_head {
            return Err(MetaAuditError::HeadMismatch);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tiny FNV-1a-style mixer — good enough for chain-shape tests;
    /// the audit layer substitutes real SHA-256.
    fn test_hash(data: &[u8]) -> Vec<u8> {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in data {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h.to_be_bytes().to_vec()
    }

    fn sample_journal() -> MetaJournal {
        let mut j = MetaJournal::new(test_hash);
        j.append(10, "cluster", "deposit", "glsn=0.1.0");
        j.append(20, "cluster", "deposit", "glsn=1.4.1");
        j.append(35, "executor", "degraded-replan", "dead=[2]");
        j.append(50, "cluster", "rereplicate", "repaired=3");
        j
    }

    #[test]
    fn untampered_journal_verifies() {
        let j = sample_journal();
        assert_eq!(j.len(), 4);
        MetaJournal::verify(j.records(), j.head(), test_hash).expect("clean journal verifies");
    }

    #[test]
    fn truncation_is_detected() {
        let j = sample_journal();
        let truncated = &j.records()[..3];
        assert_eq!(
            MetaJournal::verify(truncated, j.head(), test_hash),
            Err(MetaAuditError::HeadMismatch)
        );
    }

    #[test]
    fn reordering_is_detected_even_with_rewritten_seq() {
        let j = sample_journal();
        let mut swapped = j.records().to_vec();
        swapped.swap(1, 2);
        // Naive swap: stored seqs betray the move.
        assert!(matches!(
            MetaJournal::verify(&swapped, j.head(), test_hash),
            Err(MetaAuditError::SequenceMismatch { index: 1, .. })
        ));
        // Cleverer attacker also rewrites the seq fields; the
        // position-bound chain still refuses.
        swapped[1].seq = 1;
        swapped[2].seq = 2;
        assert_eq!(
            MetaJournal::verify(&swapped, j.head(), test_hash),
            Err(MetaAuditError::HeadMismatch)
        );
    }

    #[test]
    fn record_rewrite_is_detected() {
        let j = sample_journal();
        let mut edited = j.records().to_vec();
        edited[3].detail = "repaired=0".to_string();
        assert_eq!(
            MetaJournal::verify(&edited, j.head(), test_hash),
            Err(MetaAuditError::HeadMismatch)
        );
    }

    #[test]
    fn empty_journal_head_is_genesis_hash() {
        let j = MetaJournal::new(test_hash);
        assert!(j.is_empty());
        assert_eq!(j.head(), test_hash(GENESIS_TAG).as_slice());
        MetaJournal::verify(&[], j.head(), test_hash).expect("empty journal verifies");
    }

    #[test]
    fn encode_binds_position_not_stored_seq() {
        let r = MetaRecord {
            seq: 7,
            at_ns: 1,
            actor: "a".into(),
            action: "b".into(),
            detail: "c".into(),
        };
        assert_ne!(r.encode_at(0), r.encode_at(7));
    }
}
