//! Trace data model: hierarchical spans over virtual time, structured
//! events, and per-scope cost records.
//!
//! Instances are produced by the per-thread collectors in the crate
//! root and merged into one [`Trace`] per [`Recorder`](crate::Recorder).
//! All timestamps are virtual nanoseconds (the same unit as the
//! simulator's `SimTime`); the tracer never reads a wall clock.

use crate::cost::CostVector;
use std::collections::BTreeMap;

/// One completed span: a named interval of virtual time with a parent
/// link (0 = root) forming the query → phase → session → hop hierarchy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Unique id (never 0).
    pub id: u64,
    /// Enclosing span id, or 0 for a root span.
    pub parent: u64,
    /// Coarse grouping used by exporters ("query", "phase", "protocol", "hop", ...).
    pub category: &'static str,
    /// Human-readable name.
    pub name: String,
    /// Session the span was attributed to (0 = none/root).
    pub session: u64,
    /// Virtual start time in nanoseconds.
    pub start_ns: u64,
    /// Virtual end time in nanoseconds (>= `start_ns`).
    pub end_ns: u64,
}

/// One structured point event, attached to the innermost open span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EventRecord {
    /// Id of the enclosing span (0 = none).
    pub span: u64,
    /// Event name.
    pub name: String,
    /// Virtual timestamp in nanoseconds.
    pub at_ns: u64,
    /// Structured key/value payload.
    pub kvs: Vec<(String, String)>,
}

/// Aggregated operation costs for one cost scope (usually one protocol
/// session). Multiple records may share a `(label, session)` key; they
/// are summed by the aggregation helpers on [`Trace`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScopeRecord {
    /// Scope label, normally the protocol name.
    pub label: String,
    /// Session id the scope was opened for (0 = root).
    pub session: u64,
    /// Operation counts charged while the scope was innermost.
    pub costs: CostVector,
}

/// A merged trace: everything one recorder captured.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Trace {
    /// Completed spans, in flush order.
    pub spans: Vec<SpanRecord>,
    /// Point events, in flush order.
    pub events: Vec<EventRecord>,
    /// Per-scope cost records, in flush order.
    pub scopes: Vec<ScopeRecord>,
    /// Costs recorded outside any scope.
    pub unattributed: CostVector,
}

impl Trace {
    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.events.is_empty()
            && self.scopes.is_empty()
            && self.unattributed.is_zero()
    }

    /// Appends every record of `other`.
    pub fn merge(&mut self, other: Trace) {
        self.spans.extend(other.spans);
        self.events.extend(other.events);
        self.scopes.extend(other.scopes);
        self.unattributed.merge(&other.unattributed);
    }

    /// Sums scope costs by scope label (protocol name).
    #[must_use]
    pub fn cost_by_label(&self) -> BTreeMap<String, CostVector> {
        let mut out: BTreeMap<String, CostVector> = BTreeMap::new();
        for scope in &self.scopes {
            out.entry(scope.label.clone())
                .or_default()
                .merge(&scope.costs);
        }
        out
    }

    /// Sums scope costs by session id.
    #[must_use]
    pub fn cost_by_session(&self) -> BTreeMap<u64, CostVector> {
        let mut out: BTreeMap<u64, CostVector> = BTreeMap::new();
        for scope in &self.scopes {
            out.entry(scope.session).or_default().merge(&scope.costs);
        }
        out
    }

    /// Sums every cost record, scoped or not.
    #[must_use]
    pub fn total_cost(&self) -> CostVector {
        let mut total = self.unattributed;
        for scope in &self.scopes {
            total.merge(&scope.costs);
        }
        total
    }

    /// Sorts spans and events into a deterministic order
    /// (by start time, then id) regardless of which thread flushed
    /// first. Scope records sort by `(label, session)`.
    pub fn normalize(&mut self) {
        self.spans.sort_by_key(|s| (s.start_ns, s.session, s.id));
        self.events
            .sort_by(|a, b| (a.at_ns, a.span, &a.name).cmp(&(b.at_ns, b.span, &b.name)));
        self.scopes
            .sort_by(|a, b| (&a.label, a.session).cmp(&(&b.label, b.session)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostKind;

    fn scope(label: &str, session: u64, modexp: u64) -> ScopeRecord {
        let mut costs = CostVector::default();
        costs.add(CostKind::ModExp, modexp);
        ScopeRecord {
            label: label.to_string(),
            session,
            costs,
        }
    }

    #[test]
    fn aggregation_sums_duplicate_keys() {
        let trace = Trace {
            scopes: vec![scope("ssi", 1, 4), scope("ssi", 2, 6), scope("sum", 1, 1)],
            ..Trace::default()
        };
        let by_label = trace.cost_by_label();
        assert_eq!(by_label["ssi"].modexp, 10);
        assert_eq!(by_label["sum"].modexp, 1);
        let by_session = trace.cost_by_session();
        assert_eq!(by_session[&1].modexp, 5);
        assert_eq!(by_session[&2].modexp, 6);
        assert_eq!(trace.total_cost().modexp, 11);
    }

    #[test]
    fn total_cost_includes_unattributed() {
        let mut trace = Trace::default();
        trace.unattributed.add(CostKind::MsgSent, 3);
        trace.scopes.push(scope("eq", 9, 2));
        let total = trace.total_cost();
        assert_eq!(total.msgs_sent, 3);
        assert_eq!(total.modexp, 2);
        assert!(!trace.is_empty());
    }

    #[test]
    fn normalize_orders_spans_by_start_time() {
        let mk = |id, start| SpanRecord {
            id,
            parent: 0,
            category: "phase",
            name: format!("s{id}"),
            session: 0,
            start_ns: start,
            end_ns: start + 1,
        };
        let mut trace = Trace {
            spans: vec![mk(2, 500), mk(1, 100), mk(3, 100)],
            ..Trace::default()
        };
        trace.normalize();
        let ids: Vec<u64> = trace.spans.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![1, 3, 2]);
    }
}
