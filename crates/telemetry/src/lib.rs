//! Telemetry for the DLA confidential-auditing stack: hierarchical
//! span tracing over virtual time, crypto/network cost accounting, and
//! a tamper-evident meta-audit journal.
//!
//! # Model
//!
//! A [`Recorder`] owns one merged [`Trace`]. Code opts in by
//! [`Recorder::install`]ing it on the current thread; instrumentation
//! sites throughout `bigint`, `crypto`, `net`, `mpc` and `audit` then
//! report through the free functions [`span`], [`event`], [`scope`]
//! and [`record`]. All records land in a **lock-cheap per-thread
//! buffer** and are merged into the recorder's trace when the install
//! guard drops (or on [`Recorder::snapshot`]).
//!
//! Telemetry is **off by default**: with no recorder installed
//! anywhere, every instrumentation site costs one relaxed atomic load
//! and returns. With a recorder installed on *some other* thread, the
//! cost is one thread-local lookup. No instrumentation path allocates,
//! blocks or sends messages when disabled, so instrumented and plain
//! runs are behaviourally identical (see the equivalence test in
//! `dla-audit`).
//!
//! Worker threads do not inherit the recorder automatically: spawners
//! capture [`current`] before `spawn` and install the handle inside
//! the worker (the executor in `dla-audit` does exactly this).
//!
//! Timestamps are virtual nanoseconds supplied by the caller — the
//! tracer never reads a wall clock, keeping traces deterministic under
//! a fixed seed.

#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

pub mod cost;
pub mod export;
pub mod journal;
pub mod trace;

pub use cost::{CostKind, CostSink, CostVector, NoopSink, ThreadSink};
pub use export::{chrome_trace_json, trace_json};
pub use journal::{ChainHasher, MetaAuditError, MetaJournal, MetaRecord};
pub use trace::{EventRecord, ScopeRecord, SpanRecord, Trace};

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of live installs across all threads — the fast disabled
/// gate. Zero means every instrumentation call returns immediately.
static ACTIVE_INSTALLS: AtomicUsize = AtomicUsize::new(0);

/// Global span-id allocator (0 is reserved for "no span").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

#[derive(Default)]
struct Shared {
    trace: Mutex<Trace>,
}

/// Handle to one telemetry capture. Clones share the same trace.
#[derive(Clone, Default)]
pub struct Recorder {
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").finish_non_exhaustive()
    }
}

impl Recorder {
    /// Fresh recorder with an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Recorder::default()
    }

    /// Makes this recorder the destination for telemetry emitted by
    /// the **current thread** until the returned guard drops. Installs
    /// nest; the previous destination is restored on drop.
    #[must_use = "telemetry is captured only while the guard is alive"]
    pub fn install(&self) -> InstallGuard {
        let previous = TLS.with(|tls| {
            let mut state = tls.borrow_mut();
            state.recorder.replace(self.clone())
        });
        ACTIVE_INSTALLS.fetch_add(1, Ordering::Relaxed);
        InstallGuard { previous }
    }

    /// Flushes the current thread's buffer and returns a copy of the
    /// merged trace so far.
    #[must_use]
    pub fn snapshot(&self) -> Trace {
        flush_current_thread();
        self.shared
            .trace
            .lock()
            .expect("telemetry trace lock")
            .clone()
    }

    /// Flushes the current thread's buffer and takes the merged trace,
    /// leaving the recorder empty.
    #[must_use]
    pub fn take(&self) -> Trace {
        flush_current_thread();
        std::mem::take(&mut *self.shared.trace.lock().expect("telemetry trace lock"))
    }

    fn absorb(&self, buf: Trace) {
        if !buf.is_empty() {
            self.shared
                .trace
                .lock()
                .expect("telemetry trace lock")
                .merge(buf);
        }
    }
}

/// Restores the previously installed recorder (if any) when dropped,
/// flushing the thread buffer first.
pub struct InstallGuard {
    previous: Option<Recorder>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        flush_current_thread();
        TLS.with(|tls| {
            let mut state = tls.borrow_mut();
            state.recorder = self.previous.take();
        });
        ACTIVE_INSTALLS.fetch_sub(1, Ordering::Relaxed);
    }
}

/// The recorder installed on this thread, if any — capture before
/// spawning a worker, install inside it.
#[must_use]
pub fn current() -> Option<Recorder> {
    if !is_active() {
        return None;
    }
    TLS.with(|tls| tls.borrow().recorder.clone())
}

/// True when at least one recorder is installed on *some* thread.
/// This is the one branch hot paths pay when telemetry is off.
#[inline]
#[must_use]
pub fn is_active() -> bool {
    ACTIVE_INSTALLS.load(Ordering::Relaxed) > 0
}

struct OpenSpan {
    id: u64,
    parent: u64,
    category: &'static str,
    name: String,
    session: u64,
    start_ns: u64,
    explicit_end: Option<u64>,
}

struct ScopeFrame {
    label: String,
    session: u64,
    costs: CostVector,
}

#[derive(Default)]
struct ThreadState {
    recorder: Option<Recorder>,
    open_spans: Vec<OpenSpan>,
    scopes: Vec<ScopeFrame>,
    buf: Trace,
    /// Latest virtual timestamp observed on this thread; used as the
    /// implicit end time of spans closed by guard drop.
    last_ns: u64,
}

impl ThreadState {
    fn observe(&mut self, at_ns: u64) {
        if at_ns > self.last_ns {
            self.last_ns = at_ns;
        }
    }
}

thread_local! {
    static TLS: RefCell<ThreadState> = RefCell::new(ThreadState::default());
}

fn flush_current_thread() {
    TLS.with(|tls| {
        let mut state = tls.borrow_mut();
        if let Some(recorder) = state.recorder.clone() {
            let buf = std::mem::take(&mut state.buf);
            drop(state);
            recorder.absorb(buf);
        }
    });
}

/// Records `amount` operations of class `kind`, attributed to the
/// innermost [`scope`] on this thread (or the trace's unattributed
/// bucket). A single-branch no-op when telemetry is off.
#[inline]
pub fn record(kind: CostKind, amount: u64) {
    if !is_active() {
        return;
    }
    record_slow(kind, amount);
}

#[cold]
fn record_slow(kind: CostKind, amount: u64) {
    TLS.with(|tls| {
        let mut state = tls.borrow_mut();
        if state.recorder.is_none() {
            return;
        }
        match state.scopes.last_mut() {
            Some(frame) => frame.costs.add(kind, amount),
            None => state.buf.unattributed.add(kind, amount),
        }
    });
}

/// Where span timestamps come from. The tracer itself never reads a
/// clock — callers stamp every span — so this is the seam through
/// which a time driver (the network layer's virtual or wall clock)
/// plugs into tracing without this crate depending on it.
pub trait ClockSource {
    /// Nanoseconds since the source's origin.
    fn now_ns(&self) -> u64;
}

/// [`span`] stamped from a [`ClockSource`]: the span starts at the
/// source's current reading. Pair with [`SpanGuard::end_at`] so the
/// same driver supplies both endpoints.
#[must_use = "the span closes when the guard drops"]
pub fn span_at(category: &'static str, name: &str, clock: &dyn ClockSource) -> SpanGuard {
    span(category, name, clock.now_ns())
}

/// Opens a hierarchical span starting at virtual time `start_ns`.
/// Close it explicitly with [`SpanGuard::end`] to supply the end
/// timestamp, or let the guard drop to close at the latest timestamp
/// this thread has observed. Returns an inert guard when telemetry is
/// off.
#[must_use = "the span closes when the guard drops"]
pub fn span(category: &'static str, name: &str, start_ns: u64) -> SpanGuard {
    if !is_active() {
        return SpanGuard { id: 0 };
    }
    TLS.with(|tls| {
        let mut state = tls.borrow_mut();
        if state.recorder.is_none() {
            return SpanGuard { id: 0 };
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = state.open_spans.last().map_or(0, |s| s.id);
        let session = state.scopes.last().map_or(0, |s| s.session);
        state.observe(start_ns);
        state.open_spans.push(OpenSpan {
            id,
            parent,
            category,
            name: name.to_string(),
            session,
            start_ns,
            explicit_end: None,
        });
        SpanGuard { id }
    })
}

/// Guard for an open span; closing pops it (and any unclosed children)
/// off the thread's span stack.
pub struct SpanGuard {
    id: u64,
}

impl SpanGuard {
    /// True when this guard refers to a real span (telemetry was
    /// active at open time).
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.id != 0
    }

    /// Closes the span at virtual time `end_ns`.
    pub fn end(self, end_ns: u64) {
        if self.id != 0 {
            close_span(self.id, Some(end_ns));
        }
        std::mem::forget(self);
    }

    /// Closes the span at `clock`'s current reading.
    pub fn end_at(self, clock: &dyn ClockSource) {
        self.end(clock.now_ns());
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.id != 0 {
            close_span(self.id, None);
        }
    }
}

fn close_span(id: u64, end_ns: Option<u64>) {
    TLS.with(|tls| {
        let mut state = tls.borrow_mut();
        if let Some(at) = end_ns {
            state.observe(at);
        }
        let Some(pos) = state.open_spans.iter().rposition(|s| s.id == id) else {
            return;
        };
        // Children left open (guards leaked across an early return)
        // close at the same time as the span being ended.
        while state.open_spans.len() > pos {
            let open = state.open_spans.pop().expect("len > pos");
            let end = open
                .explicit_end
                .or(end_ns)
                .unwrap_or(state.last_ns)
                .max(open.start_ns);
            state.buf.spans.push(SpanRecord {
                id: open.id,
                parent: open.parent,
                category: open.category,
                name: open.name,
                session: open.session,
                start_ns: open.start_ns,
                end_ns: end,
            });
        }
    });
}

/// Records a structured point event at virtual time `at_ns`, attached
/// to the innermost open span. A no-op when telemetry is off.
pub fn event(name: &str, at_ns: u64, kvs: &[(&str, &str)]) {
    if !is_active() {
        return;
    }
    TLS.with(|tls| {
        let mut state = tls.borrow_mut();
        if state.recorder.is_none() {
            return;
        }
        state.observe(at_ns);
        let span = state.open_spans.last().map_or(0, |s| s.id);
        state.buf.events.push(EventRecord {
            span,
            name: name.to_string(),
            at_ns,
            kvs: kvs
                .iter()
                .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
                .collect(),
        });
    });
}

/// Opens a cost-attribution scope: until the guard drops, operations
/// reported via [`record`] on this thread are charged to
/// `(label, session)`. Scopes nest; the innermost wins. Returns an
/// inert guard when telemetry is off.
#[must_use = "costs are attributed only while the guard is alive"]
pub fn scope(label: &str, session: u64) -> ScopeGuard {
    if !is_active() {
        return ScopeGuard { active: false };
    }
    TLS.with(|tls| {
        let mut state = tls.borrow_mut();
        if state.recorder.is_none() {
            return ScopeGuard { active: false };
        }
        state.scopes.push(ScopeFrame {
            label: label.to_string(),
            session,
            costs: CostVector::default(),
        });
        ScopeGuard { active: true }
    })
}

/// Guard for a cost scope; dropping emits the accumulated
/// [`ScopeRecord`] into the thread buffer.
pub struct ScopeGuard {
    active: bool,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        TLS.with(|tls| {
            let mut state = tls.borrow_mut();
            if let Some(frame) = state.scopes.pop() {
                state.buf.scopes.push(ScopeRecord {
                    label: frame.label,
                    session: frame.session,
                    costs: frame.costs,
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_records_nothing() {
        record(CostKind::ModExp, 5);
        event("ignored", 10, &[("k", "v")]);
        let g = span("phase", "ignored", 0);
        assert!(!g.is_recording());
        drop(g);
        // A recorder created *afterwards* sees none of it.
        let recorder = Recorder::new();
        let _install = recorder.install();
        assert!(recorder.snapshot().is_empty());
    }

    #[test]
    fn spans_nest_and_carry_sessions() {
        let recorder = Recorder::new();
        {
            let _install = recorder.install();
            let outer = span("query", "q1", 0);
            let _sc = scope("ssi", 42);
            let inner = span("protocol", "ssi", 100);
            event("relay-hop", 150, &[("from", "0"), ("to", "1")]);
            inner.end(200);
            drop(_sc);
            outer.end(300);
        }
        let mut trace = recorder.take();
        trace.normalize();
        assert_eq!(trace.spans.len(), 2);
        let outer = &trace.spans[0];
        let inner = &trace.spans[1];
        assert_eq!(outer.name, "q1");
        assert_eq!(outer.parent, 0);
        assert_eq!(outer.start_ns, 0);
        assert_eq!(outer.end_ns, 300);
        assert_eq!(inner.parent, outer.id);
        assert_eq!(inner.session, 42);
        assert_eq!((inner.start_ns, inner.end_ns), (100, 200));
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.events[0].span, inner.id);
        assert_eq!(
            trace.events[0].kvs[0],
            ("from".to_string(), "0".to_string())
        );
    }

    #[test]
    fn dropped_span_ends_at_latest_observed_time() {
        let recorder = Recorder::new();
        {
            let _install = recorder.install();
            let s = span("phase", "implicit", 50);
            event("tick", 400, &[]);
            drop(s);
        }
        let trace = recorder.take();
        assert_eq!(trace.spans[0].end_ns, 400);
    }

    #[test]
    fn scope_attributes_costs_and_nests() {
        let recorder = Recorder::new();
        {
            let _install = recorder.install();
            record(CostKind::ModExp, 1); // before any scope
            let outer = scope("query", 1);
            record(CostKind::ModExp, 10);
            {
                let _inner = scope("ssi", 7);
                record(CostKind::ModExp, 100);
                record(CostKind::BytesSent, 64);
            }
            record(CostKind::Round, 2);
            drop(outer);
        }
        let trace = recorder.take();
        assert_eq!(trace.unattributed.modexp, 1);
        let by_label = trace.cost_by_label();
        assert_eq!(by_label["ssi"].modexp, 100);
        assert_eq!(by_label["ssi"].bytes_sent, 64);
        assert_eq!(by_label["query"].modexp, 10);
        assert_eq!(by_label["query"].rounds, 2);
        assert_eq!(trace.cost_by_session()[&7].modexp, 100);
    }

    #[test]
    fn worker_threads_merge_via_handle_propagation() {
        let recorder = Recorder::new();
        let _install = recorder.install();
        let handle = current().expect("recorder installed");
        std::thread::scope(|scope_| {
            for worker in 0..4u64 {
                let handle = handle.clone();
                scope_.spawn(move || {
                    let _install = handle.install();
                    let _sc = scope("worker", worker);
                    record(CostKind::ModExp, worker + 1);
                });
            }
        });
        let trace = recorder.snapshot();
        let by_session = trace.cost_by_session();
        assert_eq!(by_session.len(), 4);
        assert_eq!(trace.total_cost().modexp, 1 + 2 + 3 + 4);
    }

    #[test]
    fn uninstalled_thread_records_nothing_while_another_is_active() {
        let recorder = Recorder::new();
        let _install = recorder.install();
        std::thread::scope(|scope_| {
            scope_.spawn(|| {
                // No install on this thread: active globally, but this
                // thread has no destination.
                record(CostKind::ModExp, 99);
                assert!(!span("phase", "orphan", 0).is_recording());
            });
        });
        assert!(recorder.snapshot().is_empty());
    }

    #[test]
    fn install_nests_and_restores_previous_recorder() {
        let a = Recorder::new();
        let b = Recorder::new();
        let _ga = a.install();
        {
            let _gb = b.install();
            record(CostKind::ModExp, 2);
        }
        record(CostKind::ModExp, 3);
        drop(_ga);
        assert_eq!(b.take().total_cost().modexp, 2);
        assert_eq!(a.take().total_cost().modexp, 3);
    }

    #[test]
    fn take_drains_the_trace() {
        let recorder = Recorder::new();
        {
            let _install = recorder.install();
            record(CostKind::Round, 1);
        }
        assert_eq!(recorder.take().total_cost().rounds, 1);
        assert!(recorder.take().is_empty());
    }
}
