//! Workspace-local stand-in for `criterion`.
//!
//! Keeps the macro/builder API the `dla-bench` benches are written
//! against, but runs a simple fixed-iteration timer instead of
//! criterion's statistical sampler: each benchmark is warmed up once
//! and then timed over a batch sized to fill ~`sample_size` quick
//! probes, reporting mean wall-clock per iteration to stdout. That is
//! enough to compare orders of magnitude across PRs without any
//! external dependencies.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box` too.
pub use std::hint::black_box;

/// Identifies one benchmark within a group, e.g. `name/param`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter value.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.param.is_empty() {
            write!(f, "{}", self.name)
        } else {
            write!(f, "{}/{}", self.name, self.param)
        }
    }
}

/// Per-iteration timer handed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    /// Total time accumulated by `iter` batches.
    elapsed: Duration,
    /// Iterations accumulated by `iter` batches.
    iters: u64,
    /// Target number of timed batches.
    samples: usize,
}

impl Bencher {
    /// Calls `routine` repeatedly and accumulates its wall-clock time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (also primes lazy state so the timed runs are honest).
        black_box(routine());
        // One calibration run decides the batch size: aim for batches
        // of at least ~1ms so Instant overhead stays negligible, but
        // cap the total so slow protocol benches finish promptly.
        let probe_start = Instant::now();
        black_box(routine());
        let probe = probe_start.elapsed().max(Duration::from_nanos(50));
        let per_batch = (Duration::from_millis(1).as_nanos() / probe.as_nanos()).clamp(1, 1000);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            self.elapsed += start.elapsed();
            self.iters += per_batch as u64;
        }
    }

    fn mean(&self) -> Duration {
        if self.iters == 0 {
            Duration::ZERO
        } else {
            self.elapsed / u32::try_from(self.iters).unwrap_or(u32::MAX)
        }
    }
}

/// A named collection of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides how many timed batches each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, label: &str, mut f: F) {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
            samples: self.sample_size.min(self.criterion.max_samples),
        };
        f(&mut bencher);
        println!(
            "bench {:<50} {:>12.3?} /iter ({} iters)",
            format!("{}/{label}", self.name),
            bencher.mean(),
            bencher.iters,
        );
    }

    /// Benchmarks a closure under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let label = id.to_string();
        self.run(&label, f);
        self
    }

    /// Benchmarks a closure that receives a borrowed input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = id.to_string();
        self.run(&label, |b| f(b, input));
        self
    }

    /// Ends the group (upstream finalizes reports here; the shim's
    /// output is already printed per benchmark).
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
    max_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
            max_samples: 20,
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        let name = id.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.run("", f);
        self
    }
}

/// Declares a benchmark entry point composed of `fn(&mut Criterion)`
/// functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        let mut hits = 0u64;
        group.bench_function("counter", |b| b.iter(|| hits += 1));
        group.bench_with_input(BenchmarkId::new("with-input", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(hits > 0);
    }

    #[test]
    fn id_formats_name_and_param() {
        assert_eq!(BenchmarkId::new("ssi", 8).to_string(), "ssi/8");
    }
}
