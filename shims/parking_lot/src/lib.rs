//! Workspace-local stand-in for `parking_lot`.
//!
//! Wraps the std primitives with the `parking_lot` API shape: locks
//! return guards directly (no `Result`), and a poisoned std lock is
//! recovered transparently — `parking_lot` has no poisoning, so
//! swallowing the flag reproduces its semantics.

use std::sync::{self, PoisonError};

/// Re-exported std guard: identical API surface for the shim's needs.
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
/// Shared-read guard.
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard.
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

/// A mutual-exclusion lock without poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference without locking (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock without poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns a mutable reference without locking (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(vec![1, 2, 3]);
        let a = l.read();
        let b = l.read();
        assert_eq!(a.len() + b.len(), 6);
        drop((a, b));
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(41u32));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the std lock underneath");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }
}
