//! Workspace-local stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `rand` to this shim. It provides the exact
//! surface the DLA stack uses: the [`Rng`]/[`RngCore`]/[`SeedableRng`]
//! traits, [`rngs::StdRng`] (a xoshiro256++ generator — deterministic
//! under `seed_from_u64`, which is all the simulator requires), and
//! [`thread_rng`].
//!
//! The generator is *not* the upstream ChaCha12 stream, so seeded
//! sequences differ from upstream `rand` — irrelevant here because
//! every test in the workspace compares run-to-run determinism or
//! semantic outcomes, never golden random values.

pub mod distributions {
    //! Sampling distributions (only [`Standard`] plus uniform ranges).

    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// A generic random distribution.
    pub trait Distribution<T> {
        /// Samples one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" distribution: uniform over all values of the type
    /// (unit-interval uniform for floats).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! impl_standard_uint {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Distribution<u128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Distribution<i128> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i128 {
            <Standard as Distribution<u128>>::sample(&Standard, rng) as i128
        }
    }

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    /// A range usable with [`crate::Rng::gen_range`].
    pub trait SampleRange<T> {
        /// Samples one value uniformly from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    /// Uniform draw from `[0, span)` without modulo bias (Lemire-style
    /// rejection on the widening multiply).
    pub(crate) fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
        debug_assert!(span > 0);
        if span.is_power_of_two() {
            let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
            return wide & (span - 1);
        }
        // 64-bit spans cover every range the workspace samples; fall
        // back to wide rejection only beyond that.
        if let Ok(span64) = u64::try_from(span) {
            let threshold = span64.wrapping_neg() % span64;
            loop {
                let m = u128::from(rng.next_u64()) * u128::from(span64);
                if (m as u64) >= threshold {
                    return m >> 64;
                }
            }
        }
        loop {
            let wide = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
            if wide < u128::MAX - (u128::MAX % span) {
                return wide % span;
            }
        }
    }

    macro_rules! impl_range_int {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                    let off = uniform_below(rng, span);
                    ((self.start as i128).wrapping_add(off as i128)) as $t
                }
            }
            impl SampleRange<$t> for RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128)
                        .wrapping_sub(start as i128)
                        .wrapping_add(1) as u128;
                    let off = uniform_below(rng, span);
                    ((start as i128).wrapping_add(off as i128)) as $t
                }
            }
        )*};
    }
    impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl SampleRange<f64> for Range<f64> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            let unit: f64 = Standard.sample(rng);
            self.start + unit * (self.end - self.start)
        }
    }
}

/// Low-level generator interface: a source of random `u64` words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that [`Rng::fill`] can populate with random data.
pub trait Fill {
    /// Fills `self` from `rng`.
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R);
}

impl Fill for [u8] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

impl<const N: usize> Fill for [u8; N] {
    fn fill_from<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        rng.fill_bytes(self);
    }
}

/// User-facing generator interface (blanket-implemented for every
/// [`RngCore`], including unsized `dyn`/generic receivers).
pub trait Rng: RngCore {
    /// Samples a value from the [`distributions::Standard`]
    /// distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.gen::<f64>() < p
    }

    /// Fills `dest` with random data.
    fn fill<T: Fill + ?Sized>(&mut self, dest: &mut T) {
        dest.fill_from(self);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` (expanded with SplitMix64, as
    /// upstream `rand` does).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut state).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// One step of the SplitMix64 sequence (public so sibling shims and
/// the simulator can derive independent streams from one seed).
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator
    /// (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                *word = u64::from_le_bytes(seed[i * 8..(i + 1) * 8].try_into().expect("8 bytes"));
            }
            if s == [0; 4] {
                // xoshiro forbids the all-zero state.
                let mut fix = 0x1234_5678_9abc_def0u64;
                for word in &mut s {
                    *word = splitmix64(&mut fix);
                }
            }
            StdRng { s }
        }
    }
}

/// Returns a generator seeded from ambient entropy (time + ASLR).
///
/// Unlike upstream this is a plain [`rngs::StdRng`], not a thread
/// local handle — callers in this workspace only ever use it as a
/// `&mut impl Rng`.
#[must_use]
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5eed);
    let stack_probe = 0u8;
    let aslr = std::ptr::addr_of!(stack_probe) as u64;
    SeedableRng::seed_from_u64(nanos ^ aslr.rotate_left(32))
}

/// Convenience: samples one `Standard` value from [`thread_rng`].
pub fn random<T>() -> T
where
    distributions::Standard: distributions::Distribution<T>,
{
    Rng::gen(&mut thread_rng())
}

pub mod prelude {
    //! Commonly used items.
    pub use crate::distributions::Distribution;
    pub use crate::rngs::StdRng;
    pub use crate::{random, thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10..20);
            assert!((10..20).contains(&v));
            let w: u64 = rng.gen_range(0..=5);
            assert!(w <= 5);
            let s: i64 = rng.gen_range(-50..50);
            assert!((-50..50).contains(&s));
        }
    }

    #[test]
    fn gen_range_covers_small_ranges() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 6];
        for _ in 0..200 {
            seen[rng.gen_range(0..6usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values hit: {seen:?}");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn fill_randomizes_arrays() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 33];
        rng.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn works_through_unsized_receivers() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(5);
        assert!(sample(&mut rng) < 100);
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(6);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}
