//! Workspace-local stand-in for `proptest`.
//!
//! Implements the subset of the proptest API the DLA test suites use:
//! the [`strategy::Strategy`] trait with `prop_map`/`prop_recursive`/
//! `boxed`, tuple and range strategies, `any::<T>()`, collection and
//! sample strategies, a regex-subset string strategy, and the
//! [`proptest!`]/`prop_assert*`/[`prop_oneof!`] macros.
//!
//! Differences from upstream, deliberate for an offline shim:
//!
//! * **No shrinking.** A failing case reports its inputs via the
//!   panic message (cases are generated from a seed derived from the
//!   test name, so every failure is reproducible by rerunning).
//! * **Derandomization is per test-name**, not file-backed: the RNG
//!   seed is a hash of the test function's name, so runs are
//!   deterministic across machines without a `proptest-regressions`
//!   directory.

pub mod test_runner {
    //! Configuration and case-level error plumbing.

    /// Subset of proptest's config: only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
        /// Cap on `prop_assume` rejections before giving up.
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` successful cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..ProptestConfig::default()
            }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; try another case.
        Reject(String),
        /// A `prop_assert*` failed: the property is violated.
        Fail(String),
    }

    impl TestCaseError {
        /// Rejection constructor (mirrors upstream).
        #[must_use]
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }

        /// Failure constructor (mirrors upstream).
        #[must_use]
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// Whether this is an assume-rejection.
        #[must_use]
        pub fn is_reject(&self) -> bool {
            matches!(self, TestCaseError::Reject(_))
        }
    }

    /// FNV-1a over the test name: the per-test deterministic seed.
    #[must_use]
    pub fn seed_for(name: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        hash
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::sync::Arc;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe core (`sample`) plus sized combinators, so
    /// `Arc<dyn Strategy<Value = T>>` works as [`BoxedStrategy`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Builds recursive values: `expand` receives a strategy for
        /// the previous level and returns the next level. `depth`
        /// bounds recursion; the size/branch hints are accepted for
        /// API compatibility but unused by the shim.
        fn prop_recursive<F, S>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            expand: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
            S: Strategy<Value = Self::Value> + 'static,
        {
            Recursive {
                base: self.boxed(),
                expand: Arc::new(move |inner| expand(inner).boxed()),
                depth,
            }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Arc::new(self))
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T>(Arc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Arc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            self.0.sample(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.source.sample(rng))
        }
    }

    /// See [`Strategy::prop_recursive`].
    pub struct Recursive<T> {
        base: BoxedStrategy<T>,
        #[allow(clippy::type_complexity)]
        expand: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
        depth: u32,
    }

    impl<T> Strategy for Recursive<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            // Bias towards shallow structures like upstream: each
            // extra level appears with probability 1/2.
            let mut levels = 0;
            while levels < self.depth && rng.gen_bool(0.5) {
                levels += 1;
            }
            let mut strategy = self.base.clone();
            for _ in 0..levels {
                strategy = (self.expand)(strategy);
            }
            strategy.sample(rng)
        }
    }

    /// Uniform choice between same-valued strategies; the engine
    /// behind [`crate::prop_oneof!`].
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `arms` (must be non-empty).
        #[must_use]
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            let arm = rng.gen_range(0..self.arms.len());
            self.arms[arm].sample(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Full-domain strategy for primitives; the engine behind
    /// [`crate::arbitrary::any`].
    #[derive(Debug, Clone, Default)]
    pub struct FullRange<T> {
        _marker: PhantomData<T>,
    }

    impl<T> FullRange<T> {
        /// Constructor.
        #[must_use]
        pub fn new() -> Self {
            FullRange {
                _marker: PhantomData,
            }
        }
    }

    macro_rules! impl_full_range {
        ($($t:ty),*) => {$(
            impl Strategy for FullRange<$t>
            {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }
    impl_full_range!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool, f64);

    /// Debug-print helper used by the runner to report failing inputs.
    pub fn describe<T: Debug>(value: &T) -> String {
        format!("{value:?}")
    }
}

pub mod arbitrary {
    //! `any::<T>()` support.

    use crate::strategy::{FullRange, Strategy};

    /// Types with a canonical strategy.
    pub trait Arbitrary: Sized {
        /// That canonical strategy's type.
        type Strategy: Strategy<Value = Self>;

        /// Builds the canonical strategy.
        fn arbitrary() -> Self::Strategy;
    }

    macro_rules! impl_arbitrary_prim {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;
                fn arbitrary() -> Self::Strategy {
                    FullRange::new()
                }
            }
        )*};
    }
    impl_arbitrary_prim!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool, f64);

    /// The canonical strategy for `A`.
    #[must_use]
    pub fn any<A: Arbitrary>() -> A::Strategy {
        A::arbitrary()
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_set`).

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl SizeRange {
        fn sample(self, rng: &mut StdRng) -> usize {
            rng.gen_range(self.min..=self.max)
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `Vec`s whose length falls in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
            let target = self.size.sample(rng);
            let mut set = BTreeSet::new();
            // Collisions shrink the set below `target`; bound the
            // retry budget so tiny element domains still terminate.
            let mut budget = target * 4 + 8;
            while set.len() < target && budget > 0 {
                set.insert(self.element.sample(rng));
                budget -= 1;
            }
            set
        }
    }

    /// Strategy for `BTreeSet`s with size in `size` (best-effort when
    /// the element domain is smaller than the requested size).
    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Sampling helpers (`select`, `Index`).

    use crate::arbitrary::Arbitrary;
    use crate::strategy::{FullRange, Strategy};
    use rand::rngs::StdRng;
    use rand::Rng;

    /// See [`select`].
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }

    /// Strategy drawing uniformly from an explicit list.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    /// An index "fraction" resolvable against any non-empty length.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Projects onto `0..len`.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`.
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "cannot index an empty collection");
            ((u128::from(self.0) * len as u128) >> 64) as usize
        }
    }

    /// Strategy producing [`Index`] values.
    #[derive(Debug, Clone, Default)]
    pub struct IndexStrategy;

    impl Strategy for IndexStrategy {
        type Value = Index;

        fn sample(&self, rng: &mut StdRng) -> Index {
            Index(rng.gen())
        }
    }

    impl Arbitrary for Index {
        type Strategy = IndexStrategy;

        fn arbitrary() -> Self::Strategy {
            IndexStrategy
        }
    }

    // Keep FullRange import alive for doc-linking parity.
    #[allow(dead_code)]
    type _Unused = FullRange<u8>;
}

pub mod string {
    //! Regex-subset string strategies.
    //!
    //! proptest treats `&str` as a regex-shaped strategy; the suites
    //! here only use sequences of literal characters and character
    //! classes with optional `{n}`/`{m,n}` repetition, so that is the
    //! grammar this parser accepts.

    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    #[derive(Debug, Clone)]
    struct Atom {
        choices: Vec<char>,
        min: usize,
        max: usize,
    }

    /// A compiled pattern.
    #[derive(Debug, Clone)]
    pub struct StringStrategy {
        atoms: Vec<Atom>,
    }

    fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
        let mut choices = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            let c = chars.next().expect("unterminated character class");
            match c {
                ']' => {
                    if let Some(p) = pending {
                        choices.push(p);
                    }
                    return choices;
                }
                '-' if pending.is_some() && chars.peek() != Some(&']') => {
                    let start = pending.take().expect("range start");
                    let end = chars.next().expect("range end");
                    assert!(start <= end, "descending class range");
                    choices.extend(start..=end);
                }
                _ => {
                    if let Some(p) = pending.replace(c) {
                        choices.push(p);
                    }
                }
            }
        }
    }

    fn parse_repeat(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
        if chars.peek() != Some(&'{') {
            return (1, 1);
        }
        chars.next();
        let mut spec = String::new();
        for c in chars.by_ref() {
            if c == '}' {
                break;
            }
            spec.push(c);
        }
        match spec.split_once(',') {
            Some((min, max)) => (
                min.parse().expect("repeat min"),
                max.parse().expect("repeat max"),
            ),
            None => {
                let n = spec.parse().expect("repeat count");
                (n, n)
            }
        }
    }

    /// Compiles `pattern` (panics on syntax outside the subset).
    #[must_use]
    pub fn compile(pattern: &str) -> StringStrategy {
        let mut atoms = Vec::new();
        let mut chars = pattern.chars().peekable();
        while let Some(c) = chars.next() {
            let choices = match c {
                '[' => parse_class(&mut chars),
                '\\' => vec![chars.next().expect("escaped char")],
                _ => vec![c],
            };
            let (min, max) = parse_repeat(&mut chars);
            atoms.push(Atom { choices, min, max });
        }
        StringStrategy { atoms }
    }

    impl Strategy for StringStrategy {
        type Value = String;

        fn sample(&self, rng: &mut StdRng) -> String {
            let mut out = String::new();
            for atom in &self.atoms {
                let reps = rng.gen_range(atom.min..=atom.max);
                for _ in 0..reps {
                    out.push(atom.choices[rng.gen_range(0..atom.choices.len())]);
                }
            }
            out
        }
    }

    impl Strategy for &str {
        type Value = String;

        fn sample(&self, rng: &mut StdRng) -> String {
            compile(self).sample(rng)
        }
    }

    impl Strategy for String {
        type Value = String;

        fn sample(&self, rng: &mut StdRng) -> String {
            compile(self).sample(rng)
        }
    }
}

#[doc(hidden)]
pub mod __rt {
    //! Runner internals reachable from macro expansions regardless of
    //! the caller's own dependency graph.
    pub use rand::rngs::StdRng;
    pub use rand::SeedableRng;

    /// Seeded RNG for one test function.
    #[must_use]
    pub fn rng_for(test_name: &str) -> StdRng {
        SeedableRng::seed_from_u64(crate::test_runner::seed_for(test_name))
    }
}

pub mod prelude {
    //! One-stop import for test files.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace mirror (`prop::collection::vec`, `prop::sample::…`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Asserts a boolean property inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` == `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Asserts inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Declares property tests. Mirrors proptest's surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in 0u64..100, v in prop::collection::vec(any::<u8>(), 0..8)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($config) $($rest)*);
    };
    (@munch ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng =
                $crate::__rt::rng_for(concat!(module_path!(), "::", stringify!($name)));
            $(let $arg = $crate::strategy::Strategy::boxed($strategy);)+
            let strategies = ($($arg,)+);
            let mut passed = 0u32;
            let mut rejected = 0u32;
            while passed < config.cases {
                let ($($arg,)+) = &strategies;
                $(let $arg = $crate::strategy::Strategy::sample($arg, &mut rng);)+
                let case = (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match case {
                    ::core::result::Result::Ok(()) => passed += 1,
                    ::core::result::Result::Err(e) if e.is_reject() => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "proptest '{}': too many prop_assume rejections ({rejected})",
                                stringify!($name),
                            );
                        }
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest '{}' failed after {passed} passing case(s): {msg}",
                            stringify!($name),
                        );
                    }
                    ::core::result::Result::Err(_) => unreachable!(),
                }
            }
        }
        $crate::proptest!(@munch ($config) $($rest)*);
    };
    (@munch ($config:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@munch ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use rand::SeedableRng;

    #[test]
    fn string_patterns_match_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let s = Strategy::sample(&"[a-z][a-z0-9]{0,6}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 7, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn union_and_recursive_compose() {
        #[derive(Debug, Clone)]
        #[allow(dead_code)]
        enum Tree {
            Leaf(u64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u64..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 8, 2, |inner| {
                prop_oneof![
                    (inner.clone(), inner.clone())
                        .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b))),
                    inner,
                ]
            });
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let mut max_depth = 0;
        for _ in 0..200 {
            max_depth = max_depth.max(depth(&Strategy::sample(&strat, &mut rng)));
        }
        assert!(max_depth >= 1, "recursion never fired");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn runner_drives_cases(x in 0u64..100, v in prop::collection::vec(any::<u8>(), 0..8)) {
            prop_assert!(x < 100);
            prop_assert!(v.len() < 8);
        }

        #[test]
        fn assume_rejects_and_recovers(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }

    proptest! {
        #[test]
        fn default_config_block_compiles(x in 0u8..=255) {
            let idx = x; // silence unused
            prop_assert!(u32::from(idx) < 256, "x was {}", idx);
        }
    }
}
