//! Workspace-local stand-in for the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace patches `bytes` to this shim. It implements exactly the
//! surface the DLA stack uses: a cheaply clonable immutable byte
//! buffer ([`Bytes`]) and an append-only builder ([`BytesMut`]).
//! Reference counting makes `clone()` O(1), matching the upstream
//! crate's behaviour where it matters for the simulator (duplicated
//! envelopes share one allocation).

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable contiguous slice of memory.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    #[must_use]
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Creates `Bytes` from a static slice.
    #[must_use]
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Creates `Bytes` by copying the given slice.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.data[..] == other.data[..]
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.data[..].cmp(&other.data[..])
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.data.hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.data[..] == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.data[..] == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.data[..] == other[..]
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.data[..] == other[..]
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self.data[..] == other[..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(v: &'static str) -> Self {
        Bytes::from_static(v.as_bytes())
    }
}

impl From<Bytes> for Vec<u8> {
    fn from(b: Bytes) -> Self {
        b.to_vec()
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

/// A growable byte buffer that freezes into an immutable [`Bytes`].
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with room for `capacity` bytes.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Appends a slice.
    pub fn extend_from_slice(&mut self, extend: &[u8]) {
        self.buf.extend_from_slice(extend);
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_equality() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b, [1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn builder_freezes() {
        let mut m = BytesMut::new();
        m.extend_from_slice(b"ab");
        m.put_u8(b'c');
        assert_eq!(m.freeze(), Bytes::from_static(b"abc"));
    }

    #[test]
    fn debug_escapes_non_printable() {
        let b = Bytes::from_static(b"a\x00");
        assert_eq!(format!("{b:?}"), "b\"a\\x00\"");
    }
}
