//! Workspace-local stand-in for `crossbeam`.
//!
//! Provides the two pieces the DLA stack uses:
//!
//! * [`channel`] — MPMC channels on a `Mutex<VecDeque>` + `Condvar`
//!   (the upstream lock-free queues matter for raw throughput, not for
//!   correctness; simulator traffic is far below where that shows).
//! * [`scope`] — scoped threads, layered over [`std::thread::scope`]
//!   with crossbeam's `thread::Result` return convention (a child
//!   panic surfaces as `Err`, not a propagated panic).

pub mod channel {
    //! MPMC channels with disconnect detection and timeouts.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};
    use std::time::{Duration, Instant};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    impl<T> Shared<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            self.queue.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived before the deadline.
        Timeout,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
                RecvTimeoutError::Disconnected => write!(f, "channel is empty and disconnected"),
            }
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The queue is momentarily empty.
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded MPMC channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `value`, failing if every receiver hung up.
        ///
        /// # Errors
        ///
        /// Returns the value back inside [`SendError`] on disconnect.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared.lock().push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they can
                // observe the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Sender").finish_non_exhaustive()
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues a message, blocking until one arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] once the channel is drained and every
        /// sender hung up.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.shared.lock();
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .shared
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Dequeues a message, blocking at most `timeout`.
        ///
        /// # Errors
        ///
        /// [`RecvTimeoutError::Timeout`] past the deadline,
        /// [`RecvTimeoutError::Disconnected`] when drained with no
        /// senders left.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut queue = self.shared.lock();
            loop {
                if let Some(value) = queue.pop_front() {
                    return Ok(value);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .shared
                    .ready
                    .wait_timeout(queue, deadline - now)
                    .unwrap_or_else(PoisonError::into_inner);
                queue = guard;
            }
        }

        /// Dequeues a message if one is immediately available.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when the queue is empty,
        /// [`TryRecvError::Disconnected`] when additionally no sender
        /// remains.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.shared.lock();
            if let Some(value) = queue.pop_front() {
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.debug_struct("Receiver").finish_non_exhaustive()
        }
    }
}

pub mod thread {
    //! Scoped threads with crossbeam's error-returning convention.

    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Mirror of `std::thread::Result`.
    pub type Result<T> = std::thread::Result<T>;

    /// Handle onto a scope; spawn threads through it.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread to finish.
        ///
        /// # Errors
        ///
        /// Returns the panic payload if the thread panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a thread scoped to borrow from the environment.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce() -> T + Send + 'scope,
            T: Send + 'scope,
        {
            ScopedJoinHandle {
                inner: self.inner.spawn(f),
            }
        }
    }

    /// Runs `f` with a scope handle; all spawned threads are joined
    /// before this returns. A panic in any unjoined child (or in `f`)
    /// surfaces as `Err`.
    ///
    /// # Errors
    ///
    /// Returns the panic payload of whichever thread panicked first.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

pub use thread::scope;

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_across_threads() {
        let (tx, rx) = unbounded();
        let producer = std::thread::spawn(move || {
            for i in 0..100u32 {
                tx.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv_timeout(Duration::from_secs(5)).unwrap());
        }
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn timeout_and_disconnect_are_distinguished() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_to_no_receiver_fails() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn scope_joins_and_borrows() {
        let data = [1u64, 2, 3, 4];
        let total = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|chunk| s.spawn(move || chunk.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn scope_reports_child_panics_as_err() {
        let result = super::scope(|s| {
            s.spawn(|| panic!("child dies"));
        });
        assert!(result.is_err());
    }
}
