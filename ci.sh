#!/usr/bin/env bash
# Full CI gate: release build, tests, lints, formatting.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> example smoke runs"
for example in quickstart integrity_audit fault_recovery; do
    cargo run --release --example "$example" >/dev/null
done

echo "==> exp_fault_recovery --quick"
cargo run --release -p dla-bench --bin exp_fault_recovery -- --quick >/dev/null

echo "CI OK"
