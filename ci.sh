#!/usr/bin/env bash
# Full CI gate: release build, tests, lints, formatting.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "CI OK"
