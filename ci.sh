#!/usr/bin/env bash
# Full CI gate: release build, tests, lints, formatting.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> telemetry tests"
cargo test -q -p dla-telemetry
cargo test -q -p dla-audit --test telemetry_equivalence
cargo test -q -p dla-net --test reliable_telemetry

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> example smoke runs"
for example in quickstart integrity_audit fault_recovery; do
    cargo run --release --example "$example" >/dev/null
done

echo "==> exp_fault_recovery --quick"
cargo run --release -p dla-bench --bin exp_fault_recovery -- --quick >/dev/null

echo "==> exp_cost_profile --quick (asserts fixed-base audit beats the refold ladder)"
cargo run --release -p dla-bench --bin exp_cost_profile -- --quick >/dev/null
if command -v jq >/dev/null 2>&1; then
    jq -e '
        .experiment == "cost_profile"
        and (.protocols | all(has("fixed_base_builds") and has("multi_exp_terms")))
        and (.fixed_base_vs_ladder.table_builds == 1)
        and (.fixed_base_vs_ladder.fixed_base_mont_mul_steps
             < .fixed_base_vs_ladder.ladder_mont_mul_steps)
    ' BENCH_cost_profile.json >/dev/null
else
    python3 - <<'PY'
import json
d = json.load(open("BENCH_cost_profile.json"))
assert d["experiment"] == "cost_profile"
for p in d["protocols"]:
    assert "fixed_base_builds" in p and "multi_exp_terms" in p
fb = d["fixed_base_vs_ladder"]
assert fb["table_builds"] == 1
assert fb["fixed_base_mont_mul_steps"] < fb["ladder_mont_mul_steps"], \
    "fixed-base audit must take fewer Montgomery steps than the refold ladder"
PY
fi

echo "==> exp_crypto_hotpath --quick (asserts windowed beats binary, accel >= 2x windowed)"
cargo run --release -p dla-bench --bin exp_crypto_hotpath -- --quick >/dev/null
if command -v jq >/dev/null 2>&1; then
    jq -e '
        .experiment == "crypto_hotpath"
        and (.cells | length == 16)
        and (.cells | all(has("elapsed_ms") and has("modexp")
                          and has("mont_mul_steps") and has("modexp_per_sec")))
        and ([.cells[] | select(.exp == "windowed" and .qr == "jacobi"
                                and .batch == "serial")][0].modexp_per_sec
             > [.cells[] | select(.exp == "binary" and .qr == "jacobi"
                                  and .batch == "serial")][0].modexp_per_sec)
        and (.speedup_accel_vs_windowed >= 2.0)
        and ([.cells[] | select(.exp == "accel" and .qr == "jacobi"
                                and .batch == "serial")][0].modexp_per_sec
             >= 2 * [.cells[] | select(.exp == "windowed" and .qr == "jacobi"
                                       and .batch == "serial")][0].modexp_per_sec)
    ' BENCH_crypto_hotpath.json >/dev/null
else
    python3 - <<'PY'
import json
d = json.load(open("BENCH_crypto_hotpath.json"))
assert d["experiment"] == "crypto_hotpath"
cells = d["cells"]
assert len(cells) == 16
for c in cells:
    for key in ("elapsed_ms", "modexp", "mont_mul_steps", "modexp_per_sec"):
        assert key in c, key
pick = lambda e, q, b: next(
    c for c in cells if (c["exp"], c["qr"], c["batch"]) == (e, q, b)
)
assert (
    pick("windowed", "jacobi", "serial")["modexp_per_sec"]
    > pick("binary", "jacobi", "serial")["modexp_per_sec"]
), "windowed modexp throughput must strictly beat binary"
assert d["speedup_accel_vs_windowed"] >= 2.0, "accel kernel below 2x over windowed"
assert (
    pick("accel", "jacobi", "serial")["modexp_per_sec"]
    >= 2 * pick("windowed", "jacobi", "serial")["modexp_per_sec"]
), "accel modexp throughput must be at least 2x windowed"
PY
fi

echo "==> exp_epoch_scaling --quick (asserts windowed folds beat full-trail)"
cargo run --release -p dla-bench --bin exp_epoch_scaling -- --quick >/dev/null
if command -v jq >/dev/null 2>&1; then
    jq -e '
        .experiment == "epoch_scaling"
        and (.rows | length >= 2)
        and (.rows | all(has("records") and has("windowed_folds")
                         and has("full_folds") and has("answers_identical")))
        and (.rows | all(.answers_identical))
        and ([.rows[] | select(.records >= 4 * .windowed_folds)] | length > 0)
        and ([.rows[] | select(.records >= 4 * .windowed_folds)]
             | all(.windowed_folds < .full_folds))
    ' BENCH_epoch_scaling.json >/dev/null
else
    python3 - <<'PY'
import json
d = json.load(open("BENCH_epoch_scaling.json"))
assert d["experiment"] == "epoch_scaling"
rows = d["rows"]
assert len(rows) >= 2
for r in rows:
    for key in ("records", "windowed_folds", "full_folds", "answers_identical"):
        assert key in r, key
    assert r["answers_identical"], "pruned answers must match unsharded"
gated = [r for r in rows if r["records"] >= 4 * r["windowed_folds"]]
assert gated, "at least one row must hit the 4x trail/window ratio"
for r in gated:
    assert r["windowed_folds"] < r["full_folds"], "windowed must fold fewer"
PY
fi

echo "==> exp_adversary --quick (asserts 100% detection, zero false alarms, zero leaks)"
cargo run --release -p dla-bench --bin exp_adversary -- --quick >/dev/null
if command -v jq >/dev/null 2>&1; then
    jq -e '
        .experiment == "adversary"
        and (.attacks | length == 4)
        and (.attacks | all(has("class") and has("detection_rate")
                            and has("mean_messages_to_detect")
                            and has("mean_virtual_ns_to_detect")
                            and has("detected_by")))
        and (.attacks | all(.detection_rate == 1.0))
        and ([.attacks[].class] | sort
             == ["checkpoint_equivocation", "fragment_tamper",
                 "malformed_ciphertext", "relay_round_lie"])
        and (.honest_baseline.false_alarms == 0)
        and (.collusion | length >= 3)
        and (.collusion | all(.foreign_plaintext_hits == 0))
        and (([.collusion[] | select(.size == 0)][0].c_store - .paper.c_store)
             | fabs < 1e-6)
        and (([.collusion[] | select(.size == 0)][0].c_dla - .paper.c_dla)
             | fabs < 1e-6)
    ' BENCH_adversary.json >/dev/null
else
    python3 - <<'PY'
import json
d = json.load(open("BENCH_adversary.json"))
assert d["experiment"] == "adversary"
attacks = d["attacks"]
assert sorted(a["class"] for a in attacks) == [
    "checkpoint_equivocation", "fragment_tamper",
    "malformed_ciphertext", "relay_round_lie",
]
for a in attacks:
    for key in ("detection_rate", "mean_messages_to_detect",
                "mean_virtual_ns_to_detect", "detected_by"):
        assert key in a, key
    assert a["detection_rate"] == 1.0, f"{a['class']} missed an attack"
assert d["honest_baseline"]["false_alarms"] == 0, "false alarm on honest run"
collusion = d["collusion"]
assert len(collusion) >= 3
for c in collusion:
    assert c["foreign_plaintext_hits"] == 0, f"coalition {c['coalition']} leaked"
base = next(c for c in collusion if c["size"] == 0)
assert abs(base["c_store"] - d["paper"]["c_store"]) < 1e-6
assert abs(base["c_dla"] - d["paper"]["c_dla"]) < 1e-6
PY
fi

echo "==> exp_federation --quick (asserts ring-sweep scaling, identical answers, tamper catch)"
cargo run --release -p dla-bench --bin exp_federation -- --quick >/dev/null
if command -v jq >/dev/null 2>&1; then
    jq -e '
        .experiment == "federation"
        and .digests_identical
        and .tamper_detected
        and (.speedup_4x_vs_1 >= 2.0)
        and (.rows | length >= 3)
        and ([.rows[].rings] | (contains([1]) and contains([4])))
        and (.rows | all(has("rings") and has("makespan_ns")
                         and has("deposits_per_sec") and has("broadcast_digest")
                         and has("routed_digest") and has("published")))
        and (.broadcast_digest | length == 64)
        and (.rows | all(.broadcast_digest == $top.broadcast_digest))
        and (.rows | all(.routed_digest == $top.routed_digest))
        and (.rows | all(.root_ok and .tamper_detected and .published > 0))
    ' --argjson top "$(jq '{broadcast_digest, routed_digest}' BENCH_federation.json)" \
        BENCH_federation.json >/dev/null
else
    python3 - <<'PY'
import json
d = json.load(open("BENCH_federation.json"))
assert d["experiment"] == "federation"
assert d["digests_identical"] and d["tamper_detected"]
assert d["speedup_4x_vs_1"] >= 2.0, "4-ring ingest speedup below 2x"
rows = d["rows"]
assert len(rows) >= 3
rings = [r["rings"] for r in rows]
assert 1 in rings and 4 in rings, "ring sweep must cover 1 and 4 rings"
assert len(d["broadcast_digest"]) == 64
for r in rows:
    for key in ("rings", "makespan_ns", "deposits_per_sec",
                "broadcast_digest", "routed_digest", "published"):
        assert key in r, key
    assert r["broadcast_digest"] == d["broadcast_digest"], "digest diverged"
    assert r["routed_digest"] == d["routed_digest"], "routed digest diverged"
    assert r["root_ok"] and r["tamper_detected"] and r["published"] > 0
PY
fi

echo "==> exp_standing_query --quick (asserts flat cached-window scans, identical answers)"
cargo run --release -p dla-bench --bin exp_standing_query -- --quick >/dev/null
if command -v jq >/dev/null 2>&1; then
    jq -e '
        .experiment == "standing_query"
        and .federated_identical
        and (.federated_published > 0)
        and (.rows | length >= 2)
        and (.rows | all(has("records") and has("cached_fragments")
                         and has("rescan_fragments") and has("epochs_cached")
                         and has("identical") and has("standing_identical")))
        and (.rows | all(.identical and .standing_identical))
        and (.rows | all(.epochs_cached > 0))
        and (.rows | all(.cached_fragments == $top.cached_fragments))
        and (.rows | all(.rescan_fragments == .records))
        and ((.rows | last).rescan_fragments > (.rows | last).cached_fragments)
    ' --argjson top "$(jq '{cached_fragments}' BENCH_standing_query.json)" \
        BENCH_standing_query.json >/dev/null
else
    python3 - <<'PY'
import json
d = json.load(open("BENCH_standing_query.json"))
assert d["experiment"] == "standing_query"
assert d["federated_identical"], "federated standing answers diverged"
assert d["federated_published"] > 0, "seals must push checkpoints unpolled"
rows = d["rows"]
assert len(rows) >= 2
for r in rows:
    for key in ("records", "cached_fragments", "rescan_fragments",
                "epochs_cached", "identical", "standing_identical"):
        assert key in r, key
    assert r["identical"], "cached aggregate diverged from rescan"
    assert r["standing_identical"], "standing deltas diverged from fresh query"
    assert r["epochs_cached"] > 0, "window must hit cached epochs"
    assert r["cached_fragments"] == d["cached_fragments"], \
        "cached-window scan work must stay flat as the trail grows"
    assert r["rescan_fragments"] == r["records"], "rescan touches every fragment"
assert rows[-1]["rescan_fragments"] > rows[-1]["cached_fragments"], \
    "rescan must do strictly more scan work at the longest trail"
PY
fi

echo "==> dla-cluster smoke run (4 app + 3 infrastructure node processes)"
cargo run --release -p dla-deploy --bin dla-cluster -- --nodes 4 --records 8 --seed 7 \
    | grep -q "CLUSTER OK"

echo "==> exp_socket_e2e --quick (asserts socket answers match in-process)"
cargo run --release -p dla-bench --bin exp_socket_e2e -- --quick >/dev/null
if command -v jq >/dev/null 2>&1; then
    jq -e '
        .experiment == "socket_e2e"
        and (.mode == "process" or .mode == "thread")
        and .answers_identical
        and (.digest | length == 64)
        and (.tcp_deposits_per_sec > 0)
        and (.channel_deposits_per_sec > 0)
        and (.rows | length == 5)
        and (.rows | all(has("protocol") and has("tcp_ms") and has("channel_ms")))
        and ([.rows[].protocol] | sort
             == ["equality", "ranking", "ssi", "sum", "union"])
    ' BENCH_socket_e2e.json >/dev/null
else
    python3 - <<'PY'
import json
d = json.load(open("BENCH_socket_e2e.json"))
assert d["experiment"] == "socket_e2e"
assert d["mode"] in ("process", "thread")
assert d["answers_identical"], "socket answers must match in-process"
assert len(d["digest"]) == 64
assert d["tcp_deposits_per_sec"] > 0 and d["channel_deposits_per_sec"] > 0
rows = d["rows"]
assert len(rows) == 5
for r in rows:
    for key in ("protocol", "tcp_ms", "channel_ms"):
        assert key in r, key
assert sorted(r["protocol"] for r in rows) == [
    "equality", "ranking", "ssi", "sum", "union"
]
PY
fi

echo "==> chrome-trace export validates as JSON"
cargo run --release --example telemetry_trace >/dev/null
if command -v jq >/dev/null 2>&1; then
    jq -e . telemetry_trace.json >/dev/null
else
    python3 -m json.tool telemetry_trace.json >/dev/null
fi

echo "CI OK"
