#!/usr/bin/env bash
# Full CI gate: release build, tests, lints, formatting.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> telemetry tests"
cargo test -q -p dla-telemetry
cargo test -q -p dla-audit --test telemetry_equivalence
cargo test -q -p dla-net --test reliable_telemetry

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> example smoke runs"
for example in quickstart integrity_audit fault_recovery; do
    cargo run --release --example "$example" >/dev/null
done

echo "==> exp_fault_recovery --quick"
cargo run --release -p dla-bench --bin exp_fault_recovery -- --quick >/dev/null

echo "==> exp_cost_profile --quick"
cargo run --release -p dla-bench --bin exp_cost_profile -- --quick >/dev/null

echo "==> chrome-trace export validates as JSON"
cargo run --release --example telemetry_trace >/dev/null
if command -v jq >/dev/null 2>&1; then
    jq -e . telemetry_trace.json >/dev/null
else
    python3 -m json.tool telemetry_trace.json >/dev/null
fi

echo "CI OK"
