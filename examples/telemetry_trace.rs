//! Telemetry: trace a confidential query and export it for
//! `chrome://tracing` / Perfetto.
//!
//! Installs a [`Recorder`], runs paper queries on the 4-node cluster,
//! and writes two artifacts:
//!
//! * `telemetry_trace.json` — Chrome trace-event format; open it in
//!   `chrome://tracing` or <https://ui.perfetto.dev> to see query,
//!   phase, subquery and protocol spans on the *virtual* timeline
//!   (microseconds of simulated network time, not wall time).
//! * a per-protocol cost breakdown printed to stdout.
//!
//! Run with: `cargo run --example telemetry_trace`

use confidential_audit::audit::cluster::{ClusterConfig, DlaCluster};
use confidential_audit::logstore::fragment::Partition;
use confidential_audit::logstore::gen::paper_table1;
use confidential_audit::logstore::schema::Schema;
use confidential_audit::net::latency::LatencyModel;
use confidential_audit::telemetry::{chrome_trace_json, Recorder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let mut cluster = DlaCluster::new(
        ClusterConfig::new(4, schema)
            .with_partition(partition)
            .with_seed(2002)
            .with_latency(LatencyModel::lan()),
    )?;
    let user = cluster.register_user("u0")?;

    // Capture everything from here on: logging traffic, the audit
    // queries, and the cluster's meta-audit events.
    let recorder = Recorder::new();
    let trace = {
        let _install = recorder.install();
        cluster.log_records(&user, &paper_table1())?;
        for query in ["protocol = 'UDP' AND c2 > 100.00", "c1 > 40 OR id = 'U2'"] {
            let result = cluster.query(query)?;
            println!("Q: {query} -> {} match(es)", result.glsns.len());
        }
        recorder.take()
    };

    println!(
        "\ncaptured {} spans, {} events, {} cost scopes",
        trace.spans.len(),
        trace.events.len(),
        trace.scopes.len()
    );
    println!("\nper-protocol cost attribution:");
    for (label, costs) in trace.cost_by_label() {
        println!("  {label}: {costs}");
    }
    let total = trace.total_cost();
    println!("\ntotal: {total}");

    let path = "telemetry_trace.json";
    std::fs::write(path, chrome_trace_json(&trace))?;
    println!("\nwrote {path} - load it in chrome://tracing or ui.perfetto.dev");
    Ok(())
}
