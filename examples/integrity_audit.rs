//! Distributed integrity checking with the one-way accumulator (§4.1).
//!
//! Users deposit `A(x₀, Log_0 … Log_{n−1})` at logging time; any node
//! can later circulate an accumulation around the ring and compare.
//! Order independence (Eq. 9) means any node can initiate; a single
//! tampered fragment anywhere flips the verdict, while fragment
//! *contents* never travel. Also runs the ticket/ACL consistency check
//! built on secure set intersection.
//!
//! Run with: `cargo run --example integrity_audit`

use confidential_audit::audit::cluster::{ClusterConfig, DlaCluster};
use confidential_audit::audit::integrity;
use confidential_audit::logstore::fragment::Partition;
use confidential_audit::logstore::gen::paper_table1;
use confidential_audit::logstore::model::AttrValue;
use confidential_audit::logstore::schema::Schema;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let mut cluster = DlaCluster::new(
        ClusterConfig::new(4, schema)
            .with_partition(partition)
            .with_seed(8),
    )?;
    let user = cluster.register_user("u0")?;
    let glsns = cluster.log_records(&user, &paper_table1())?;
    println!("logged {} records with accumulator deposits\n", glsns.len());

    // Clean sweep from every possible initiator.
    for initiator in 0..cluster.num_nodes() {
        let verdicts = integrity::check_all(&mut cluster, initiator)?;
        let ok = verdicts.iter().filter(|v| v.ok).count();
        println!(
            "initiator P{initiator}: {ok}/{} records verified ({} msgs per record)",
            verdicts.len(),
            verdicts[0].messages
        );
        assert_eq!(ok, verdicts.len());
    }

    // A compromised node silently rewrites a stored amount (the §4.1
    // threat: "its access control tables and log records could be
    // modified").
    println!(
        "\nP1 silently changes record {}'s c2 from 235.00 to 1.00 …",
        glsns[2]
    );
    cluster
        .node_mut(1)
        .store_mut()
        .tamper(glsns[2], &"c2".into(), AttrValue::Fixed2(100));

    let verdicts = integrity::check_all(&mut cluster, 0)?;
    for v in &verdicts {
        println!(
            "  record {}: {}",
            v.glsn,
            if v.ok {
                "OK"
            } else {
                "TAMPERED (accumulator mismatch)"
            }
        );
    }
    let bad: Vec<_> = verdicts.iter().filter(|v| !v.ok).collect();
    assert_eq!(bad.len(), 1);
    assert_eq!(bad[0].glsn, glsns[2]);

    // ACL consistency: a rogue node grants itself an extra glsn under
    // the user's ticket; the ∩_s-based check exposes the divergence.
    println!("\nACL consistency for ticket {} (clean):", user.ticket.id);
    let clean = integrity::check_acl_consistency(&mut cluster, &user.ticket.id)?;
    println!(
        "  sizes = {:?}, agreed = {}, consistent = {}",
        clean.sizes, clean.agreed, clean.consistent
    );
    assert!(clean.consistent);

    let ticket = user.ticket.clone();
    cluster
        .node_mut(3)
        .store_mut()
        .acl_mut_for_tests()
        .authorize(&ticket, confidential_audit::logstore::model::Glsn(0xBEEF));
    let dirty = integrity::check_acl_consistency(&mut cluster, &ticket.id)?;
    println!("after P3 grants itself glsn beef:");
    println!(
        "  sizes = {:?}, agreed = {}, consistent = {}",
        dirty.sizes, dirty.agreed, dirty.consistent
    );
    assert!(!dirty.consistent);
    Ok(())
}
