//! Fault tolerance & degraded-mode auditing: a DLA node dies
//! mid-service, and the cluster keeps answering queries correctly.
//!
//! Standby replication ships each fragment to its ring successor at
//! logging time. When the health monitor declares a node dead, the
//! successor promotes its standby copies, an accumulator circulation
//! over the survivor set proves the repaired copies match the
//! original deposits, and queries re-plan over the effective
//! partition — all behind a reliable (ARQ) session layer that also
//! absorbs plain message loss.
//!
//! Run with: `cargo run --example fault_recovery`

use confidential_audit::audit::cluster::{ClusterConfig, DlaCluster};
use confidential_audit::audit::exec::ResilientPolicy;
use confidential_audit::audit::health::{HealthConfig, HealthMonitor};
use confidential_audit::logstore::fragment::Partition;
use confidential_audit::logstore::gen::paper_table1;
use confidential_audit::logstore::schema::Schema;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let mut cluster = DlaCluster::new(
        ClusterConfig::new(4, schema)
            .with_partition(partition)
            .with_seed(21)
            .with_standby_replication(),
    )?;
    let user = cluster.register_user("u0")?;
    let glsns = cluster.log_records(&user, &paper_table1())?;
    println!(
        "logged {} records; each node also holds {} standby fragments for its ring predecessor\n",
        glsns.len(),
        cluster.node(0).store().standby_count()
    );

    // Baseline answer on a healthy cluster. The criteria touch `tid`
    // and `c3`, both stored on node P2.
    let query = "tid = 'T1100267' and c2 > 100.00";
    let reference = cluster.query(query)?;
    println!("healthy cluster: {query:?} -> {:?}", reference.glsns);

    // P2 crashes: from now on every message to or from it is lost.
    println!("\nP2 crashes …");
    cluster.net_mut().faults_mut().kill_node(2);

    // The heartbeat detector needs a few silent rounds before it moves
    // P2 from Suspected to Dead (no flapping on one lost ping).
    let mut monitor = HealthMonitor::new(&cluster, HealthConfig::default());
    monitor.settle(&cluster)?;
    println!(
        "health monitor after settling: survivors = {:?}, dead = {:?}",
        monitor.survivors(),
        monitor.dead()
    );
    assert_eq!(monitor.dead().into_iter().collect::<Vec<_>>(), vec![2]);

    // The same query now self-heals: the resilient executor times out,
    // probes the cluster, re-replicates P2's fragments from standbys
    // (verified against the §4.1 deposits) and re-plans over the
    // survivors.
    let outcome = cluster.query_resilient(query, &ResilientPolicy::default())?;
    println!(
        "\ndegraded-mode query: {:?} after {} attempts, {} re-plan(s), excluded {:?}",
        outcome.result.glsns, outcome.attempts, outcome.replans, outcome.excluded
    );
    for repair in &outcome.repairs {
        for adoption in &repair.adoptions {
            println!(
                "  P{} adopted {} fragments from dead P{}",
                adoption.adopter, adoption.promoted, adoption.dead
            );
        }
        println!(
            "  accumulator check over survivors: {}/{} records verified",
            repair.verified.len(),
            repair.verified.len() + repair.failed.len()
        );
        assert!(repair.is_fully_verified());
    }
    assert_eq!(outcome.result.glsns, reference.glsns);
    println!("\nanswer matches the healthy-cluster reference — no audit gap");
    Ok(())
}
