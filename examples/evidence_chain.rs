//! Anonymous DLA membership with undeniable evidence (Figures 6–7).
//!
//! Nodes join the cluster through the PP/SC/RE three-way handshake,
//! staying pseudonymous. Each member holds a one-time invite token;
//! the chain verifies end to end, and a member that invites *twice*
//! (after its authority passed on) is algebraically de-anonymized —
//! the e-coin double-spend deterrent the paper builds on.
//!
//! Run with: `cargo run --example evidence_chain`

use confidential_audit::audit::membership::{EvidenceChain, MembershipAuthority};
use confidential_audit::crypto::schnorr::SchnorrGroup;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(42);
    let group = SchnorrGroup::fixed_256();
    let mut authority = MembershipAuthority::new(&group, &mut rng);

    // Four organizations enroll with the credential authority. Their
    // true names never appear on the chain.
    let acme = authority.enroll("acme-payments.example", &mut rng);
    let globex = authority.enroll("globex-retail.example", &mut rng);
    let initech = authority.enroll("initech-billing.example", &mut rng);
    let hooli = authority.enroll("hooli-cloud.example", &mut rng);

    // Founding + two legitimate invites (each piece = one PP/SC/RE
    // handshake binding the negotiated service terms).
    let mut chain = EvidenceChain::found(
        &authority,
        &acme,
        "charter: store fragments, serve relaxed secure computations",
        &mut rng,
    );
    chain.invite(
        &acme,
        &globex,
        "PP: store time+id fragments; serve set-intersection queries",
        "SC: agreed, capacity 10k records",
        &mut rng,
    );
    chain.invite(
        &globex,
        &initech,
        "PP: store tid fragments; serve secure-sum aggregation",
        "SC: agreed, capacity 50k records",
        &mut rng,
    );

    println!("evidence chain after 3 honest joins:");
    for piece in chain.pieces() {
        println!(
            "  e{}: joiner token #{}, inviter token {}, terms: {:?}",
            piece.seq + 1,
            piece.joiner.token.serial,
            piece
                .inviter
                .as_ref()
                .map_or("-".to_owned(), |p| format!("#{}", p.token.serial)),
            piece.policy_proposal
        );
    }
    chain.verify()?;
    println!("chain verification: OK (digests, CA certifications, spends, signatures)");
    println!("double-use scan: {:?}", chain.detect_double_use());
    assert!(chain.detect_double_use().is_empty());

    // Globex misbehaves: having already passed its invite authority to
    // Initech, it invites Hooli anyway — its invite token is spent a
    // second time on a different context.
    println!("\nGlobex invites a second node after passing on its authority…");
    chain.invite(
        &globex,
        &hooli,
        "PP: back-channel deal",
        "SC: agreed",
        &mut rng,
    );
    chain.verify()?; // every piece is individually valid…
    let exposed = chain.detect_double_use();
    assert_eq!(exposed.len(), 1);
    println!("…but the double spend exposes the cheater:");
    for e in &exposed {
        println!(
            "  token #{} double-used; recovered identity scalar {}…",
            e.serial,
            &e.identity.to_hex()[..12]
        );
        println!(
            "  credential authority resolves it to: {}",
            authority.identify(&e.identity).unwrap_or("<unknown>")
        );
        assert_eq!(
            authority.identify(&e.identity),
            Some("globex-retail.example")
        );
    }
    Ok(())
}
