//! The Figure 4 walkthrough, hop by hop.
//!
//! Three DLA nodes hold private sets S1={c,d,e}, S2={d,e,f}, S3={e,f,g}.
//! Each set travels the ring collecting one commutative-encryption
//! layer per node; after two hops the triple-encrypted sets share
//! exactly one value — E132(e) = E321(e) = E213(e) — and the parties
//! decode the plaintext "e" by removing their layers.
//!
//! Run with: `cargo run --example secure_set_intersection`

use confidential_audit::crypto::pohlig_hellman::CommutativeDomain;
use confidential_audit::mpc::set_intersection::secure_set_intersection_traced;
use confidential_audit::net::topology::Ring;
use confidential_audit::net::{NetConfig, NodeId, SimNet};
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sets: [&[&str]; 3] = [&["c", "d", "e"], &["d", "e", "f"], &["e", "f", "g"]];
    println!("S1 = {{c, d, e}},  S2 = {{d, e, f}},  S3 = {{e, f, g}}\n");

    let mut net = SimNet::new(3, NetConfig::ideal());
    let ring = Ring::canonical(3);
    let domain = CommutativeDomain::fixed_256();
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);

    let inputs: Vec<Vec<Vec<u8>>> = sets
        .iter()
        .map(|s| s.iter().map(|e| e.as_bytes().to_vec()).collect())
        .collect();

    let (outcome, trace) = secure_set_intersection_traced(
        &mut net,
        &ring,
        &domain,
        &inputs,
        NodeId(0),
        true,
        &mut rng,
    )?;

    // Print the hop trace in the paper's E-layer notation.
    for hop in &trace {
        let layers: String = hop
            .layers
            .iter()
            .rev()
            .map(|l| (l + 1).to_string())
            .collect();
        let elements: Vec<String> = hop
            .elements
            .iter()
            .map(|e| {
                let hex = e.to_hex();
                format!("{}…", &hex[..8])
            })
            .collect();
        println!(
            "set S{} at P{}: {{E{}(·)}} = [{}]",
            hop.origin + 1,
            hop.holder + 1,
            layers,
            elements.join(", ")
        );
    }

    println!(
        "\nfully-encrypted common value (identical in all three sets): {}…",
        &outcome.common_encrypted[0].to_hex()[..16]
    );
    let items: Vec<String> = outcome
        .common_items
        .as_deref()
        .unwrap_or_default()
        .iter()
        .map(|b| String::from_utf8_lossy(b).into_owned())
        .collect();
    println!("decoded intersection: {{{}}}", items.join(", "));
    println!(
        "\ncost: {} messages, {} bytes, {} protocol rounds",
        outcome.report.messages, outcome.report.bytes, outcome.report.rounds
    );
    assert_eq!(items, ["e"]);
    Ok(())
}
