//! Quickstart: build the paper's Figure 2 system end to end.
//!
//! Spins up the 4-node DLA cluster over the Table 1 schema, registers
//! application users, logs the five Table 1 records (fragmented so no
//! node ever sees a whole record), runs confidential audit queries and
//! aggregates, and attests a result with a majority threshold
//! signature.
//!
//! Run with: `cargo run --example quickstart`

use confidential_audit::audit::aggregate;
use confidential_audit::audit::attest::{result_message, Attestor};
use confidential_audit::audit::cluster::{ClusterConfig, DlaCluster};
use confidential_audit::logstore::fragment::Partition;
use confidential_audit::logstore::gen::paper_table1;
use confidential_audit::logstore::schema::Schema;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The cluster: 4 DLA nodes, attributes split per Tables 2–5.
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let mut cluster = DlaCluster::new(
        ClusterConfig::new(4, schema)
            .with_partition(partition)
            .with_seed(2002),
    )?;
    println!("cluster: {} DLA nodes", cluster.num_nodes());
    for node in cluster.nodes() {
        let attrs: Vec<&str> = node
            .supported_attributes()
            .iter()
            .map(|a| a.as_str())
            .collect();
        println!("  P{} serves {{{}}}", node.id(), attrs.join(", "));
    }

    // 2. Users log the Table 1 events.
    let user = cluster.register_user("u0")?;
    let glsns = cluster.log_records(&user, &paper_table1())?;
    println!(
        "\nlogged {} records; every node holds exactly one fragment of each",
        glsns.len()
    );
    let (log_msgs, log_bytes) = {
        let net = cluster.net();
        (net.stats().messages_sent, net.stats().bytes_sent)
    };
    println!("logging traffic: {log_msgs} messages, {log_bytes} bytes");

    // 3. Confidential queries: the auditor engine receives only the
    //    satisfying glsns, computed by secure set intersection.
    for query in [
        "protocol = 'UDP' AND c2 > 100.00",
        "time > '20:20:00/05/12/2002'",
        "c1 > 40 OR id = 'U2'",
    ] {
        let result = cluster.query(query)?;
        let hex: Vec<String> = result.glsns.iter().map(|g| g.to_string()).collect();
        println!(
            "\nQ: {query}\n   -> {} match(es): [{}]  (C_auditing = {:.2}, {} msgs, {} bytes)",
            result.glsns.len(),
            hex.join(", "),
            result.auditing_confidentiality,
            result.messages,
            result.bytes
        );
    }

    // 4. Confidential aggregates — counts and volume totals without
    //    revealing which records matched.
    let count = aggregate::count_matching(&mut cluster, "protocol = 'UDP'")?;
    println!(
        "\nnumber of UDP transactions (count-only, no reveal): {}",
        count.count
    );
    let volume = aggregate::sum_matching(&mut cluster, "protocol = 'UDP'", &"c2".into())?;
    println!(
        "total UDP volume (secure sum over the cluster): {}.{:02}",
        volume.total / 100,
        volume.total % 100
    );

    // 5. Attestation: a majority of DLA nodes threshold-sign the result.
    let mut rng = rand::rngs::StdRng::seed_from_u64(9);
    let attestor = Attestor::deal(cluster.group(), cluster.num_nodes(), &mut rng)?;
    let result = cluster.query("c1 > 40")?;
    let message = result_message("c1 > 40", &result.glsns);
    let attestation = attestor.attest(&mut cluster, &message)?;
    println!(
        "\nresult attested by nodes {:?} ({}-of-{} threshold): verification = {}",
        attestation.signers,
        attestor.threshold(),
        cluster.num_nodes(),
        attestor.verify(&attestation)
    );

    // 6. The owner can still reassemble its own record via its ticket.
    let full = cluster.retrieve_record(&user, glsns[0])?;
    println!(
        "\nowner-retrieved record {}: {} attributes",
        glsns[0],
        full.len()
    );
    Ok(())
}
