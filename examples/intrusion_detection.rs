//! Distributed event correlation for intrusion detection (the paper's
//! §1/§4.2 motivation: "distributed security breaching is usually an
//! aggregated effect of distributed events, each of which alone may
//! appear to be harmless").
//!
//! Scenario: several independent organizations log authentication
//! events into a shared DLA cluster. A low-and-slow attacker probes a
//! few accounts at *each* organization — below any local alarm
//! threshold — but the cluster-wide confidential aggregate crosses the
//! global threshold, and a cross-node audit query pins down the
//! correlated time window without any organization exposing its raw
//! logs.
//!
//! Run with: `cargo run --example intrusion_detection`

use confidential_audit::audit::aggregate;
use confidential_audit::audit::cluster::{ClusterConfig, DlaCluster};
use confidential_audit::logstore::model::{epoch_from_civil, AttrType, AttrValue, Glsn, LogRecord};
use confidential_audit::logstore::schema::{AttrDef, Schema};
use rand::Rng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Auth-event schema: well-known time/host/user, undefined C1 =
    // failed-attempt count and C2 = bytes exfiltrated (only meaningful
    // to the application, which is what makes fragments uninformative).
    let schema = Schema::new(vec![
        AttrDef::known("time", AttrType::Time),
        AttrDef::known("id", AttrType::Text), // reporting organization
        AttrDef::known("tid", AttrType::Text), // targeted account
        AttrDef::undefined("c1", AttrType::Int), // failed logins in window
        AttrDef::undefined("c2", AttrType::Int), // suspicious bytes out
    ])?;
    let mut cluster = DlaCluster::new(
        ClusterConfig::new(5, schema)
            .with_seed(1337)
            .with_max_users(4),
    )?;

    let mut rng = rand::rngs::StdRng::seed_from_u64(99);
    let t0 = epoch_from_civil(2002, 5, 12, 2, 0, 0);

    // Three organizations log their (mostly benign) auth summaries.
    let orgs = ["OrgA", "OrgB", "OrgC"];
    let mut users = Vec::new();
    for org in orgs {
        users.push(cluster.register_user(org)?);
    }
    let mut total_events = 0;
    for (i, org) in orgs.iter().enumerate() {
        for w in 0..20u64 {
            // Benign background noise: 0–2 failed logins per window.
            let record = LogRecord::new(Glsn(0))
                .with("time", AttrValue::Time(t0 + w * 300))
                .with("id", AttrValue::text(org))
                .with(
                    "tid",
                    AttrValue::text(&format!("acct-{}", rng.gen_range(0..50))),
                )
                .with("c1", AttrValue::Int(rng.gen_range(0..3)))
                .with("c2", AttrValue::Int(rng.gen_range(0..100)));
            cluster.log_record(&users[i], &record)?;
            total_events += 1;
        }
        // The low-and-slow probe: 4 failed logins on the SAME account
        // in one specific window at every org — harmless locally.
        let record = LogRecord::new(Glsn(0))
            .with("time", AttrValue::Time(t0 + 7 * 300))
            .with("id", AttrValue::text(org))
            .with("tid", AttrValue::text("acct-13"))
            .with("c1", AttrValue::Int(4))
            .with("c2", AttrValue::Int(950));
        cluster.log_record(&users[i], &record)?;
        total_events += 1;
    }
    println!(
        "{total_events} auth summaries logged by {} organizations",
        orgs.len()
    );

    // Step 1: the confidential global indicator. No organization's raw
    // counts are exposed; the auditor learns one number.
    let window_lo = t0 + 7 * 300 - 60;
    let window_hi = t0 + 7 * 300 + 60;
    let in_window = format!("time > {window_lo} AND time < {window_hi} AND c1 >= 4");
    let global = aggregate::sum_matching(&mut cluster, &in_window, &"c1".into())?;
    println!(
        "\nwindow [{window_lo}, {window_hi}]: cluster-wide failed-login total = {} across {} reports",
        global.total, global.count
    );
    let per_org_alarm = 5;
    println!("per-organization alarm threshold: {per_org_alarm} (never crossed locally)");
    assert!(
        global.total >= 12,
        "the correlated probe must be visible globally"
    );

    // Step 2: drill down confidentially — which records correlate? The
    // auditor receives glsns only; fragment contents stay distributed.
    let result = cluster.query(&format!(
        "tid = 'acct-13' AND c1 >= 4 AND time > {window_lo} AND time < {window_hi}"
    ))?;
    println!(
        "\ncorrelated probe records (glsns only, fragments stay private): {:?}",
        result
            .glsns
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
    assert_eq!(result.glsns.len(), 3, "one probe record per organization");

    // Step 3: count distinct orgs reporting the targeted account —
    // a count-only aggregate (the auditor cannot see which orgs).
    let count = aggregate::count_matching(&mut cluster, "tid = 'acct-13' AND c1 >= 4")?;
    println!(
        "reports naming the targeted account with >= 4 failures: {} (threshold 2 => ALERT)",
        count.count
    );

    // Step 4: the same detection as a standing correlation rule — the
    // auditor sees per-window counts and distinct-source counts only.
    use confidential_audit::audit::correlate::{detect, CorrelationRule};
    let rule = CorrelationRule {
        name: "low-and-slow-probe".into(),
        event_criteria: "c1 >= 4".into(),
        window_seconds: 300,
        min_events: 3,
        min_sources: 3,
    };
    let alerts = detect(&mut cluster, &rule)?;
    println!(
        "\nstanding correlation rule '{}' fired {} alert(s):",
        rule.name,
        alerts.len()
    );
    for alert in &alerts {
        println!("  {alert}");
    }
    assert_eq!(alerts.len(), 1);

    let (total_msgs, total_bytes) = {
        let net = cluster.net();
        (net.stats().messages_sent, net.stats().bytes_sent)
    };
    println!("\ntotal audit traffic: {total_msgs} messages, {total_bytes} bytes");
    Ok(())
}
