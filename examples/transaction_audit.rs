//! Transaction conformance auditing (paper §2 `R_T` / §4.2): verify
//! that a distributed e-commerce transaction executed according to its
//! specification — atomicity, volume bound, timeliness, participation
//! and fairness — using only confidential primitives: the auditor sees
//! counts, totals and spans, never raw log records.
//!
//! Run with: `cargo run --example transaction_audit`

use confidential_audit::audit::cluster::{ClusterConfig, DlaCluster};
use confidential_audit::audit::query::CmpOp;
use confidential_audit::audit::transaction::{
    verify_transaction, Rule, TransactionReport, TransactionSpec,
};
use confidential_audit::logstore::fragment::Partition;
use confidential_audit::logstore::gen::paper_table1;
use confidential_audit::logstore::model::{
    epoch_from_civil, AttrValue, Glsn, LogRecord, TransactionId,
};
use confidential_audit::logstore::schema::Schema;

fn order_spec() -> TransactionSpec {
    TransactionSpec::new("purchase-order")
        .with_rule(Rule::EventCount {
            op: CmpOp::Eq,
            expected: 3,
        })
        .with_rule(Rule::TotalVolume {
            attr: "c2".into(),
            op: CmpOp::Le,
            limit: 50_000, // authorization ceiling: 500.00
        })
        .with_rule(Rule::MaxDuration { seconds: 600 })
        .with_rule(Rule::AllowedExecutors {
            ids: vec!["U1".into(), "U2".into()],
        })
        .with_rule(Rule::MinDistinctExecutors { count: 2 })
}

fn print_report(report: &TransactionReport) {
    print!("{report}");
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Schema::paper_example();
    let partition = Partition::paper_example(&schema);
    let mut cluster = DlaCluster::new(
        ClusterConfig::new(4, schema)
            .with_partition(partition)
            .with_seed(73),
    )?;
    let user = cluster.register_user("u0")?;
    cluster.log_records(&user, &paper_table1())?;

    // T1100265 (rows 1, 2, 4 of Table 1) against the purchase-order
    // spec: 3 events, 413.58 total, 303 s span, executors {U1, U2}.
    let spec = order_spec();
    println!("spec '{}': {} rules\n", spec.ttn, spec.rules.len());
    let report = verify_transaction(&mut cluster, &TransactionId::new("T1100265"), &spec)?;
    print_report(&report);
    assert!(report.conforms());

    // Now a rogue transaction: same type, but a fourth event by an
    // unauthorized executor pushes it over the volume ceiling, too.
    let rogue_event = LogRecord::new(Glsn(0))
        .with(
            "time",
            AttrValue::Time(epoch_from_civil(2002, 5, 12, 21, 30, 0)),
        )
        .with("id", AttrValue::text("U9"))
        .with("protocol", AttrValue::text("TCP"))
        .with("tid", AttrValue::text("T1100265"))
        .with("c1", AttrValue::Int(99))
        .with("c2", AttrValue::Fixed2(20_000))
        .with("c3", AttrValue::text("late-addendum"));
    cluster.log_record(&user, &rogue_event)?;

    println!("after a rogue fourth event by U9:\n");
    let report = verify_transaction(&mut cluster, &TransactionId::new("T1100265"), &spec)?;
    print_report(&report);
    assert!(!report.conforms());
    let failed: Vec<String> = report
        .verdicts
        .iter()
        .filter(|v| !v.ok)
        .map(|v| v.rule.to_string())
        .collect();
    println!("violated rules: {failed:?}");
    assert_eq!(
        failed.len(),
        4,
        "count, volume, duration and whitelist all trip"
    );

    println!(
        "\naudit traffic total: {} messages — and the auditor never saw a single record",
        cluster.net().stats().messages_sent
    );
    Ok(())
}
