//! The §5 confidentiality metrics, evaluated live on the paper's
//! running example: `C_store` (Eq. 10), `C_auditing` (Eq. 11),
//! `C_query` (Eq. 12) and `C_DLA` (Eq. 13).
//!
//! Run with: `cargo run --example confidentiality_metrics`

use confidential_audit::audit::metrics;
use confidential_audit::audit::normal::normalize;
use confidential_audit::audit::parser::parse;
use confidential_audit::audit::plan::plan;
use confidential_audit::logstore::fragment::Partition;
use confidential_audit::logstore::gen::paper_table1;
use confidential_audit::logstore::schema::Schema;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Schema::paper_example();
    let record = paper_table1().remove(0);

    // C_store across fragmentation widths: the same record, spread over
    // 1..=7 nodes.
    println!("C_store(Table 1 record) vs number of DLA nodes (Eq. 10):");
    println!("  w = {} attributes, v = {} undefined", record.len(), 3);
    for n in 1..=7 {
        let partition = Partition::round_robin(&schema, n)?;
        let c = metrics::store_confidentiality(&record, &schema, &partition);
        println!(
            "  n = {n}: u = {} covering nodes, C_store = {c:.3}",
            partition.covering_nodes(&record)
        );
    }

    // C_auditing across query shapes on the paper partition.
    let partition = Partition::paper_example(&schema);
    println!("\nC_auditing by query shape (Eq. 11) on the Tables 2-5 partition:");
    for (label, q) in [
        ("purely local", "c1 > 5"),
        ("local conjunction", "c1 > 5 AND c2 > 10.00"),
        ("one cross clause", "c1 > 5 OR id = 'U1'"),
        ("mixed", "(c1 > 5 OR id = 'U1') AND c2 < 9.00"),
        ("cross join", "id = c3"),
        (
            "wide cross",
            "(c1 > 5 OR id = 'U1' OR time > '20:00:00/05/12/2002') AND tid = 'T1100265'",
        ),
    ] {
        let planned = plan(&normalize(&parse(q, &schema)?), &partition)?;
        let c = metrics::auditing_confidentiality(&planned);
        println!(
            "  {label:<18} s={} t={} q={}  C_auditing = {c:.3}   [{q}]",
            planned.atom_count, planned.cross_atom_count, planned.conjunct_count
        );
    }

    // C_query and C_DLA over a mixed workload.
    println!("\nC_query = C_auditing x C_store (Eq. 12); C_DLA = mean (Eq. 13):");
    let queries = [
        "c1 > 5",
        "c1 > 5 OR id = 'U1'",
        "(c1 > 5 OR id = 'U1') AND c2 < 9.00",
        "id = c3",
    ];
    let mut workload = Vec::new();
    for q in queries {
        let planned = plan(&normalize(&parse(q, &schema)?), &partition)?;
        let cq = metrics::query_confidentiality(&planned, &record, &schema, &partition);
        println!("  C_query({q:<40}) = {cq:.3}");
        workload.push((planned, record.clone()));
    }
    let cdla = metrics::dla_confidentiality(&workload, &schema, &partition);
    println!("\n  C_DLA over the workload = {cdla:.3}");
    Ok(())
}
