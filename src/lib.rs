#![deny(rust_2018_idioms)]

//! # confidential-audit
//!
//! A full Rust reproduction of *On the Confidential Auditing of
//! Distributed Computing Systems* (Shen, Liu, Zhao — Texas A&M TR
//! 2003-8-2 / ICDCS 2004): a cluster-based trusted-third-party (TTP)
//! architecture for **distributed logging and auditing (DLA)** in which
//! no single node ever holds a complete log record, yet auditors can
//! evaluate aggregate queries through *relaxed secure multiparty
//! computation*.
//!
//! This facade crate re-exports the individual subsystem crates:
//!
//! * [`bigint`] — hand-rolled arbitrary-precision modular arithmetic.
//! * [`crypto`] — commutative (Pohlig–Hellman) encryption, one-way
//!   accumulators, Shamir secret sharing, Schnorr/threshold signatures,
//!   commitments and evidence chains.
//! * [`net`] — the simulated cluster message network.
//! * [`logstore`] — the event-log model, fragmentation and access control.
//! * [`mpc`] — relaxed secure multiparty primitives and classical
//!   baselines.
//! * [`audit`] — the DLA cluster core: query processing, integrity
//!   checking, membership and confidentiality metrics.
//! * [`telemetry`] — virtual-time span tracing, crypto/network cost
//!   accounting and the tamper-evident meta-audit journal.
//!
//! # Quickstart
//!
//! ```
//! use confidential_audit::audit::cluster::{ClusterConfig, DlaCluster};
//! use confidential_audit::logstore::schema::Schema;
//!
//! // Build a 4-node DLA cluster over the paper's Table 1 schema and
//! // verify that no node supports every attribute.
//! let schema = Schema::paper_example();
//! let cluster = DlaCluster::new(ClusterConfig::new(4, schema).with_seed(7))?;
//! for node in cluster.nodes() {
//!     assert!(node.supported_attributes().len() < cluster.schema().len());
//! }
//! # Ok::<(), confidential_audit::audit::AuditError>(())
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! experiment harness regenerating every table and figure of the paper.

pub use dla_audit as audit;
pub use dla_bigint as bigint;
pub use dla_crypto as crypto;
pub use dla_logstore as logstore;
pub use dla_mpc as mpc;
pub use dla_net as net;
pub use dla_telemetry as telemetry;
